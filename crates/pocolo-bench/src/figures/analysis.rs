//! Figures 5, 6, 8 and 9–11: the analytical characterization (§III, §V-C).

use pocolo::prelude::*;
use pocolo_core::curves::{expansion_path, indifference_curve, EdgeworthBox};
use pocolo_core::fit::{fit_indirect_utility, FitOptions};
use pocolo_workloads::profiler::{profile_be, profile_lc};

use crate::common::{f1, f3, row, save_json, section, Bench};

/// Fig. 5 data: sphinx indifference curves plus the least-power path.
#[derive(Debug, Clone)]
pub struct Fig05 {
    /// Per load level: `(load_frac, Vec<(cores, ways)>)` iso-load curves.
    pub curves: Vec<(f64, Vec<(f64, f64)>)>,
    /// The least-power allocation per load: `(load_frac, cores, ways, watts)`.
    pub path: Vec<(f64, f64, f64, f64)>,
}

pocolo_json::impl_to_json!(Fig05 { curves, path });

/// Fig. 5: indifference curves and the power-efficient expansion path.
pub fn fig05(bench: &Bench) -> Fig05 {
    section("Fig 5 — sphinx indifference curves + least-power path");
    let utility = bench.lc_fitted(LcApp::Sphinx);
    let peak = bench.lc_truth(LcApp::Sphinx).peak_load_rps();
    let base = utility.space().min_allocation();
    let mut curves = Vec::new();
    for level in [0.2, 0.4, 0.6, 0.8] {
        let target = level * peak;
        let curve = indifference_curve(utility.performance_model(), &base, 0, 1, target, 12)
            .expect("sphinx curve is well-defined");
        println!(
            "iso-load {:.0}%: {}",
            level * 100.0,
            curve
                .iter()
                .map(|(c, w)| format!("({c:.1},{w:.1})"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        curves.push((level, curve));
    }
    let targets: Vec<f64> = [0.2, 0.4, 0.6, 0.8].iter().map(|l| l * peak).collect();
    let path = expansion_path(utility, &targets).expect("targets are reachable");
    let mut path_rows = Vec::new();
    row("load", &["cores".into(), "ways".into(), "power W".into()]);
    for (level, p) in [0.2, 0.4, 0.6, 0.8].iter().zip(&path) {
        row(
            &format!("{:.0}%", level * 100.0),
            &[
                f1(p.allocation.amount(0)),
                f1(p.allocation.amount(1)),
                f1(p.power.0),
            ],
        );
        path_rows.push((
            *level,
            p.allocation.amount(0),
            p.allocation.amount(1),
            p.power.0,
        ));
    }
    let data = Fig05 {
        curves,
        path: path_rows,
    };
    save_json("fig05_indifference", &data);
    data
}

/// Fig. 6 data: spare capacity along sphinx's expansion path.
#[derive(Debug, Clone)]
pub struct Fig06 {
    /// `(load_frac, spare_cores, spare_ways, headroom_watts)`.
    pub spare: Vec<(f64, f64, f64, f64)>,
}

pocolo_json::impl_to_json!(Fig06 { spare });

/// Fig. 6: the Edgeworth box — what the co-runner gets at each load.
pub fn fig06(bench: &Bench) -> Fig06 {
    section("Fig 6 — Edgeworth box: spare capacity for the co-runner (sphinx)");
    let utility = bench.lc_fitted(LcApp::Sphinx);
    let truth = bench.lc_truth(LcApp::Sphinx);
    let boxy = EdgeworthBox::new(utility.space().clone(), truth.provisioned_power())
        .expect("cap is positive");
    let levels = [0.2, 0.4, 0.6, 0.8];
    let targets: Vec<f64> = levels.iter().map(|l| l * truth.peak_load_rps()).collect();
    let spares = boxy
        .spare_along_path(utility, &targets)
        .expect("targets reachable");
    let mut out = Vec::new();
    row(
        "load",
        &["spare c".into(), "spare w".into(), "headroom W".into()],
    );
    for (level, s) in levels.iter().zip(&spares) {
        row(
            &format!("{:.0}%", level * 100.0),
            &[
                f1(s.spare_amounts[0]),
                f1(s.spare_amounts[1]),
                f1(s.power_headroom.0),
            ],
        );
        out.push((
            *level,
            s.spare_amounts[0],
            s.spare_amounts[1],
            s.power_headroom.0,
        ));
    }
    let data = Fig06 { spare: out };
    save_json("fig06_edgeworth", &data);
    data
}

/// Fig. 8 data: goodness of fit per app.
#[derive(Debug, Clone)]
pub struct Fig08 {
    /// `(app, perf_r2, power_r2)` for all eight applications.
    pub rows: Vec<(String, f64, f64)>,
}

pocolo_json::impl_to_json!(Fig08 { rows });

/// Fig. 8: R² of the Cobb-Douglas fits (paper band: 0.8–0.95 perf,
/// 0.8–0.98 power).
pub fn fig08(bench: &Bench) -> Fig08 {
    section("Fig 8 — goodness of fit (R²)");
    let cfg = ProfilerConfig::default();
    let opts = FitOptions::default();
    let mut rows = Vec::new();
    row("app", &["perf R²".into(), "power R²".into()]);
    for app in LcApp::ALL {
        let samples = profile_lc(bench.lc_truth(app), &bench.power, &bench.space, &cfg);
        let fit = fit_indirect_utility(&bench.space, &samples, &opts).expect("grid fits");
        row(app.name(), &[f3(fit.performance_r2), f3(fit.power_r2)]);
        rows.push((app.name().to_string(), fit.performance_r2, fit.power_r2));
    }
    for app in BeApp::ALL {
        let samples = profile_be(bench.be_truth(app), &bench.power, &bench.space, &cfg);
        let fit = fit_indirect_utility(&bench.space, &samples, &opts).expect("grid fits");
        row(app.name(), &[f3(fit.performance_r2), f3(fit.power_r2)]);
        rows.push((app.name().to_string(), fit.performance_r2, fit.power_r2));
    }
    let data = Fig08 { rows };
    save_json("fig08_goodness_of_fit", &data);
    data
}

/// Figs. 9–11 data: direct utilities, power needs and indirect utilities.
#[derive(Debug, Clone)]
pub struct Fig0911 {
    /// `(app, direct_cores_share, p_cores, p_ways, indirect_cores_share)`.
    pub rows: Vec<(String, f64, f64, f64, f64)>,
}

pocolo_json::impl_to_json!(Fig0911 { rows });

/// Figs. 9–11: why placement changes once power is taken into account.
pub fn fig09_11(bench: &Bench) -> Fig0911 {
    section("Figs 9-11 — direct utilities, power needs, indirect utilities");
    let mut rows = Vec::new();
    row(
        "app",
        &[
            "α_c share".into(),
            "p_c W".into(),
            "p_w W".into(),
            "α/p c-share".into(),
        ],
    );
    let mut push = |name: &str, u: &IndirectUtility| {
        let direct = u.direct_preference_vector();
        let indirect = u.preference_vector();
        let p = u.power_model().p_dynamic();
        row(
            name,
            &[
                f3(direct.weight(0)),
                f3(p[0]),
                f3(p[1]),
                f3(indirect.weight(0)),
            ],
        );
        rows.push((
            name.to_string(),
            direct.weight(0),
            p[0],
            p[1],
            indirect.weight(0),
        ));
    };
    for app in LcApp::ALL {
        push(app.name(), bench.lc_fitted(app));
    }
    for app in BeApp::ALL {
        push(app.name(), bench.be_fitted(app));
    }
    let data = Fig0911 { rows };
    save_json("fig09_11_preferences", &data);
    data
}

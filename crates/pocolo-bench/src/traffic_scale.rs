//! Traffic-generation throughput baseline.
//!
//! The engine's systems claim: synthesizing the request stream of a
//! million-user population costs a fraction of a simulated second per
//! tick, i.e. generation sustains ≥ 10 M requests/s. This module measures
//! the sharded generator in isolation — no queues, no fitting — and lands
//! the numbers in `BENCH_traffic.json`, the crate's second standing perf
//! baseline next to `BENCH_assignment.json`.
//!
//! The `--smoke` entry point ([`smoke`]) stays timing-independent for CI:
//! it gates on the shard/merge contract (digests equal at 1, 3 and 8
//! shards, serial vs threaded) and on the analytic arrival rate, never on
//! wall-clock.

use std::hint::black_box;
use std::time::Instant;

use pocolo_sim::parallel::Parallelism;
use pocolo_traffic::{MixKind, TrafficGen, TrafficMix};

/// Request rate per simulated user, requests per second.
pub const RPS_PER_USER: f64 = 10.0;

/// LC slot peak loads mirroring the in-tree fleet (img-dnn, sphinx,
/// xapian, tpcc).
pub const PEAKS: [f64; 4] = [3500.0, 10.0, 4000.0, 8000.0];

/// User populations the standard report sweeps.
pub const STANDARD_USERS: [u64; 3] = [250_000, 1_000_000, 4_000_000];

/// Shard counts the standard report sweeps at each population.
pub const STANDARD_SHARDS: [usize; 3] = [1, 4, 8];

/// The throughput floor the standard report asserts: generated requests
/// per wall-clock second, best configuration per population.
pub const TARGET_REQUESTS_PER_S: f64 = 10_000_000.0;

/// A flash-crowd generator at `users`, deterministic in `seed`.
pub fn generator(users: u64, seed: u64) -> TrafficGen {
    let mix = TrafficMix::plan(MixKind::FlashCrowd, seed, 16.0);
    TrafficGen::new(mix, seed, users, RPS_PER_USER, 1.0, &PEAKS)
}

/// Median wall-clock nanoseconds of `iters` runs of `f`.
pub fn median_ns<T>(iters: usize, mut f: impl FnMut() -> T) -> u64 {
    let mut samples: Vec<u64> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// One `BENCH_traffic.json` row.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Simulated users.
    pub users: u64,
    /// Generator shards.
    pub shards: usize,
    /// Requests in the measured tick.
    pub requests: u64,
    /// Median wall-clock nanoseconds over [`ThroughputReport::iters`]
    /// runs.
    pub median_ns: u64,
    /// Generated requests per wall-clock second at the median.
    pub requests_per_s: f64,
}

pocolo_json::impl_to_json!(BenchRow {
    users,
    shards,
    requests,
    median_ns,
    requests_per_s,
});

/// The standing perf baseline written to `BENCH_traffic.json`.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Request rate per user.
    pub rps_per_user: f64,
    /// Samples per configuration; rows carry the median.
    pub iters: usize,
    /// One row per (users, shards).
    pub rows: Vec<BenchRow>,
}

pocolo_json::impl_to_json!(ThroughputReport {
    rps_per_user,
    iters,
    rows
});

/// Measures one (users, shards) configuration on the flash-crowd peak
/// tick (the heaviest tick of the mix).
pub fn run_case(users: u64, shards: usize, iters: usize) -> BenchRow {
    let gen = generator(users, 0xF1_0C5);
    // Tick 8 of 16 sits inside the flash-crowd hold: worst-case volume.
    let tick = 8u64;
    let requests = gen.tick(tick, shards, Parallelism::Auto).len() as u64;
    let ns = median_ns(iters, || gen.tick(tick, shards, Parallelism::Auto));
    BenchRow {
        users,
        shards,
        requests,
        median_ns: ns,
        requests_per_s: requests as f64 / (ns as f64 / 1e9),
    }
}

/// Runs the standard sweep and returns the baseline report.
///
/// # Panics
///
/// Panics (failing the bench run) if no sharding configuration at the
/// million-user population reaches [`TARGET_REQUESTS_PER_S`].
pub fn run_standard(iters: usize) -> ThroughputReport {
    let mut rows = Vec::new();
    for &users in &STANDARD_USERS {
        println!("traffic_scale: {users} users ({iters} samples per shard count)...");
        for &shards in &STANDARD_SHARDS {
            let row = run_case(users, shards, iters);
            println!(
                "  shards {:>2}: {:>9} requests, median {:>12} ns, {:>7.1}M req/s",
                row.shards,
                row.requests,
                row.median_ns,
                row.requests_per_s / 1e6
            );
            rows.push(row);
        }
    }
    let best_at_million = rows
        .iter()
        .filter(|r| r.users == 1_000_000)
        .map(|r| r.requests_per_s)
        .fold(0.0, f64::max);
    assert!(
        best_at_million >= TARGET_REQUESTS_PER_S,
        "million-user generation reached only {:.1}M req/s (target {:.0}M)",
        best_at_million / 1e6,
        TARGET_REQUESTS_PER_S / 1e6
    );
    ThroughputReport {
        rps_per_user: RPS_PER_USER,
        iters,
        rows,
    }
}

/// The CI gate, timing-independent: the shard/merge contract holds at
/// engine scale and the generated volume tracks the analytic rate.
///
/// # Panics
///
/// Panics (failing the CI step) if batches diverge across shard counts or
/// thread fan-outs, or the tick's volume strays outside a 6-sigma band of
/// the analytic expectation.
pub fn smoke() {
    let users = 1_000_000u64;
    let gen = generator(users, 0xF1_0C5);
    for tick in [0u64, 5, 8] {
        let one = gen.tick(tick, 1, Parallelism::Serial);
        let three = gen.tick(tick, 3, Parallelism::Fixed(2));
        let eight = gen.tick(tick, 8, Parallelism::Auto);
        assert_eq!(one.digest(), three.digest(), "tick {tick}: 1 vs 3 shards");
        assert_eq!(one.digest(), eight.digest(), "tick {tick}: 1 vs 8 shards");
        assert_eq!(&one, &eight, "tick {tick}: lane-level divergence");

        let expected = gen.expected_requests(tick);
        let got = one.len() as f64;
        let sigma = expected.sqrt();
        assert!(
            (got - expected).abs() < 6.0 * sigma + 64.0,
            "tick {tick}: generated {got} vs analytic {expected} (sigma {sigma})"
        );
        println!(
            "traffic smoke tick {tick}: {} requests, digest {:016x} (1 = 3 = 8 shards)",
            one.len(),
            one.digest()
        );
    }
    println!("traffic-scale smoke: PASS");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_gate_passes() {
        smoke();
    }

    #[test]
    fn run_case_is_internally_consistent() {
        let row = run_case(50_000, 4, 1);
        assert_eq!(row.users, 50_000);
        assert_eq!(row.shards, 4);
        assert!(row.requests > 0);
        assert!(row.median_ns > 0);
        let recomputed = row.requests as f64 / (row.median_ns as f64 / 1e9);
        assert!((row.requests_per_s - recomputed).abs() < 1e-6);
    }
}

//! # pocolo-bench
//!
//! The benchmark harness that regenerates **every table and figure** of the
//! Pocolo paper's evaluation (§V). Each generator is a library function
//! returning structured data (so integration tests can assert on shapes)
//! and printing the same rows/series the paper reports.
//!
//! Run everything:
//!
//! ```text
//! cargo bench -p pocolo-bench            # all figures + criterion micros
//! cargo run -p pocolo-bench --bin fig12_policy_throughput   # one figure
//! ```
//!
//! See `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! record produced from these generators.

#![warn(missing_docs)]

pub mod assignment_scale;
pub mod common;
pub mod figures;
pub mod net_scale;
pub mod traffic_scale;

//! Regression guard: the paper's shapes, asserted against the figure
//! generators. If a future change breaks "who wins / by roughly what
//! factor / where crossovers fall", these tests fail.

use pocolo_bench::common::Bench;
use pocolo_bench::figures::{analysis, evaluation, motivation, tables};

fn bench() -> Bench {
    Bench::new()
}

#[test]
fn table2_is_exact() {
    let b = bench();
    let t = tables::table2(&b);
    let expect = [
        ("img-dnn", 3500.0, 20.0, 133.0),
        ("sphinx", 10.0, 3030.0, 182.0),
        ("xapian", 4000.0, 4.02, 154.0),
        ("tpcc", 8000.0, 707.0, 133.0),
    ];
    for ((app, load, slo, power), row) in expect.iter().zip(&t.rows) {
        assert_eq!(&row.0, app);
        assert_eq!(row.1, *load);
        assert_eq!(row.2, *slo);
        assert!((row.3 - power).abs() < 1.0);
    }
}

#[test]
fn fig01_overshoots_off_peak() {
    let b = bench();
    let f = motivation::fig01(&b);
    assert!(
        (6..=16).contains(&f.overshoot_hours),
        "overshoot hours {} should be a substantial minority of the day",
        f.overshoot_hours
    );
    // Utilization never exceeds the machine.
    for &(_, _, cpu, _) in &f.hourly {
        assert!(cpu <= 1.0 + 1e-9);
    }
}

#[test]
fn fig02_every_corunner_overshoots() {
    let b = bench();
    let f = motivation::fig02(&b);
    assert!(f.solo < f.provisioned * 0.5, "solo off-peak draw is low");
    for (app, power) in &f.rows {
        assert!(
            *power > f.provisioned,
            "{app} at {power} W should exceed the {} W cap",
            f.provisioned
        );
    }
}

#[test]
fn fig03_drop_ordering_matches_paper() {
    let b = bench();
    let f = motivation::fig03(&b);
    let drop_of = |name: &str| {
        f.rows
            .iter()
            .find(|(n, ..)| n == name)
            .map(|&(_, _, _, d)| d)
            .expect("app present")
    };
    // Paper: lstm/rnn ~3%, graph ~20%, pbzip between.
    assert!(drop_of("lstm") < 0.08, "lstm {}", drop_of("lstm"));
    assert!(drop_of("rnn") < 0.08, "rnn {}", drop_of("rnn"));
    assert!(
        (0.15..0.30).contains(&drop_of("graph")),
        "graph {}",
        drop_of("graph")
    );
    assert!(
        drop_of("pbzip") > drop_of("rnn") && drop_of("pbzip") < drop_of("graph"),
        "pbzip lands between"
    );
    // Unconstrained throughputs are similar (paper: "same throughput").
    for (_, free, _, _) in &f.rows {
        assert!((free - 0.95).abs() < 0.05);
    }
}

#[test]
fn fig05_path_is_monotone() {
    let b = bench();
    let f = analysis::fig05(&b);
    for pair in f.path.windows(2) {
        assert!(pair[1].3 > pair[0].3, "power grows with load");
        assert!(pair[1].1 >= pair[0].1, "cores never shrink with load");
        assert!(pair[1].2 >= pair[0].2, "ways never shrink with load");
    }
    // Iso-load curves slope downward.
    for (_, curve) in &f.curves {
        for pair in curve.windows(2) {
            assert!(pair[1].1 < pair[0].1);
        }
    }
}

#[test]
fn fig06_spare_shrinks_with_load() {
    let b = bench();
    let f = analysis::fig06(&b);
    for pair in f.spare.windows(2) {
        assert!(pair[1].1 <= pair[0].1 + 1e-9, "spare cores shrink");
        assert!(pair[1].2 <= pair[0].2 + 1e-9, "spare ways shrink");
        assert!(pair[1].3 <= pair[0].3 + 1e-9, "headroom shrinks");
    }
}

#[test]
fn fig08_r2_bands() {
    let b = bench();
    let f = analysis::fig08(&b);
    assert_eq!(f.rows.len(), 8);
    for (app, perf_r2, power_r2) in &f.rows {
        assert!(
            (0.9..1.0).contains(perf_r2),
            "{app} perf R² {perf_r2} out of band"
        );
        assert!(
            (0.85..=1.0).contains(power_r2),
            "{app} power R² {power_r2} out of band"
        );
    }
}

#[test]
fn fig09_11_preference_targets() {
    let b = bench();
    let f = analysis::fig09_11(&b);
    let pref_of = |name: &str| {
        f.rows
            .iter()
            .find(|(n, ..)| n == name)
            .map(|&(_, _, _, _, p)| p)
            .expect("app present")
    };
    assert!((pref_of("sphinx") - 0.2).abs() < 0.1);
    assert!((pref_of("lstm") - 0.13).abs() < 0.1);
    assert!((pref_of("graph") - 0.8).abs() < 0.1);
    // The §V-C reversal: sphinx looks core-preferring *directly*...
    let direct_sphinx = f
        .rows
        .iter()
        .find(|(n, ..)| n == "sphinx")
        .map(|&(_, d, ..)| d)
        .unwrap();
    assert!(direct_sphinx > 0.5);
    // ...but ways-preferring per watt.
    assert!(pref_of("sphinx") < 0.3);
}

#[test]
fn fig14_pocolo_is_at_least_97_percent_of_optimal() {
    let b = bench();
    let f = evaluation::fig14(&b);
    assert!(
        f.pocolo_total >= 0.97 * f.best_total,
        "POColo {} vs optimum {}",
        f.pocolo_total,
        f.best_total
    );
    let placed: Vec<&str> = f.chosen.iter().map(|(be, _)| be.as_str()).collect();
    assert!(placed.contains(&"graph") && placed.contains(&"lstm"));
    let lc_of = |be: &str| {
        f.chosen
            .iter()
            .find(|(b, _)| b == be)
            .map(|(_, l)| l.clone())
            .expect("placed")
    };
    assert_eq!(lc_of("graph"), "sphinx");
    assert_eq!(lc_of("lstm"), "img-dnn");
}

mod ablation_shapes {
    use pocolo_bench::common::Bench;
    use pocolo_bench::figures::ablations;

    #[test]
    fn slack_filter_improves_fit() {
        let b = Bench::new();
        let a = ablations::slack_filter(&b);
        let r2_of = |slack: f64| {
            a.rows
                .iter()
                .find(|(s, ..)| (*s - slack).abs() < 1e-9)
                .map(|&(_, _, r2)| r2)
                .expect("threshold present")
        };
        assert!(
            r2_of(0.10) > r2_of(-10.0) + 0.01,
            "the 10% guard must improve the fit: {} vs {}",
            r2_of(0.10),
            r2_of(-10.0)
        );
    }

    #[test]
    fn range_aware_beats_myopic() {
        let b = Bench::new();
        let a = ablations::myopic_placement(&b);
        assert!(a.range_aware_total > a.myopic_total);
    }

    #[test]
    fn exact_solvers_tie_random_trails() {
        let b = Bench::new();
        let a = ablations::solver_choice(&b);
        let ratio_of = |name: &str| {
            a.rows
                .iter()
                .find(|(n, ..)| n == name)
                .map(|&(_, _, r)| r)
                .expect("solver present")
        };
        assert!((ratio_of("hungarian") - 1.0).abs() < 1e-9);
        assert!((ratio_of("lp-simplex") - 1.0).abs() < 1e-9);
        assert!(ratio_of("random(avg)") < 1.0);
    }

    #[test]
    fn fairness_never_hurts_the_bottleneck() {
        let b = Bench::new();
        let a = ablations::fairness(&b);
        assert!(a.fair_objective.1 >= a.total_objective.1 - 1e-9);
        assert!(a.fair_objective.0 <= a.total_objective.0 + 1e-9);
    }

    #[test]
    fn consolidation_numbers_tell_the_story() {
        let a = ablations::consolidation(0.66);
        let per_work = |name: &str| {
            a.rows
                .iter()
                .find(|(n, ..)| n == name)
                .map(|&(_, _, c)| c)
                .expect("strategy present")
        };
        assert!(per_work("consolidation") < per_work("always-on"));
        assert!(per_work("colocation") < 0.6 * per_work("consolidation"));
    }
}

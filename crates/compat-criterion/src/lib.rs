//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot download crates, so this crate provides the
//! subset of criterion's API that Pocolo's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`/`iter_with_setup`, `BenchmarkId`, and
//! the `criterion_group!`/`criterion_main!` macros — backed by a simple
//! adaptive wall-clock timer.
//!
//! Output format is one line per benchmark:
//!
//! ```text
//! demand_solver/analytic  time: [1.21 µs 1.23 µs 1.30 µs]  (min median max)
//! ```
//!
//! Environment knobs:
//!
//! - `BENCH_TARGET_MS` — measurement time per benchmark in milliseconds
//!   (default 250).
//! - `BENCH_FILTER` — substring filter; benchmarks not matching are skipped.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver: runs and reports individual benchmarks.
#[derive(Debug)]
pub struct Criterion {
    target: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let target_ms = std::env::var("BENCH_TARGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(250u64);
        // `cargo bench -- <filter>` passes the filter as a free argument;
        // `--bench`/`--test` style flags are ignored.
        let filter = std::env::var("BENCH_FILTER")
            .ok()
            .or_else(|| std::env::args().skip(1).find(|a| !a.starts_with('-')));
        Criterion {
            target: Duration::from_millis(target_ms),
            filter,
        }
    }
}

impl Criterion {
    /// Compatibility hook; configuration comes from the environment.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn enabled(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.enabled(id) {
            let mut b = Bencher::new(self.target);
            f(&mut b);
            b.report(id);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks (`group/bench_id` naming).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.enabled(&full) {
            let mut b = Bencher::new(self.criterion.target);
            f(&mut b);
            b.report(&full);
        }
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.enabled(&full) {
            let mut b = Bencher::new(self.criterion.target);
            f(&mut b, input);
            b.report(&full);
        }
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Times the closure handed to it by the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    target: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher {
            target,
            samples: Vec::new(),
        }
    }

    /// Benchmarks `routine`, calling it repeatedly in timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in ~1/20 of the target?
        let calib_start = Instant::now();
        black_box(routine());
        let once = calib_start.elapsed().as_secs_f64().max(1e-9);
        let batch = ((self.target.as_secs_f64() / 20.0 / once).ceil() as u64).clamp(1, 1_000_000);

        let deadline = Instant::now() + self.target;
        while Instant::now() < deadline || self.samples.len() < 5 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let per_iter = start.elapsed().as_secs_f64() / batch as f64;
            self.samples.push(per_iter);
            if self.samples.len() >= 500 {
                break;
            }
        }
    }

    /// Benchmarks `routine` with untimed per-iteration `setup`.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        let deadline = Instant::now() + self.target;
        while Instant::now() < deadline || self.samples.len() < 5 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64());
            if self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    fn report(mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<44} time: [no samples]");
            return;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let max = *self.samples.last().expect("non-empty");
        println!(
            "{id:<44} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(median),
            fmt_time(max)
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            target: Duration::from_millis(5),
            filter: None,
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion {
            target: Duration::from_millis(5),
            filter: None,
        };
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &n| b.iter(|| n * 2));
        group.finish();
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut c = Criterion {
            target: Duration::from_millis(5),
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran);
    }

    #[test]
    fn iter_with_setup_excludes_setup() {
        let mut c = Criterion {
            target: Duration::from_millis(5),
            filter: None,
        };
        c.bench_function("setup", |b| {
            b.iter_with_setup(|| vec![1u8; 16], |v| v.len())
        });
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(5.0).contains(" s"));
    }
}

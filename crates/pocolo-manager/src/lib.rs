//! # pocolo-manager
//!
//! Server-level resource management (§IV-C of the Pocolo paper):
//!
//! - [`policy::LcPolicy`] — how the primary's (cores, ways) allocation is
//!   chosen for a target load: the paper's **power-optimized** analytic
//!   Cobb-Douglas demand (POM), or **Heracles-style** power-oblivious
//!   baselines that pick any feasible point on the indifference curve.
//! - [`server_manager::ServerManager`] — the 1-second control loop that
//!   watches load and p99 slack, re-sizes the primary, hands the remainder
//!   to the best-effort tenant, and fine-tunes with latency feedback.
//! - [`capper::PowerCapper`] — the 100 ms loop that throttles the
//!   *secondary* tenant (per-core DVFS first, then CPU-time quota) to keep
//!   the server inside its provisioned power capacity.
//! - [`control::ServerController`] — the control plane: a trait turning
//!   [`control::ControlInput`] snapshots into [`control::ControlDecision`]s,
//!   with the brownout/degraded mode arbitration made explicit in
//!   [`modes::ModeMachine`]. Backends (discrete-event sim, spatial server,
//!   a future real-host agent) actuate decisions; they no longer make them.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod capper;
pub mod control;
pub mod modes;
pub mod partition;
pub mod policy;
pub mod queue;
pub mod server_manager;
pub mod spatial;

pub use capper::{CapAction, PowerCapper};
pub use control::{
    BeGuard, BeIntent, ControlDecision, ControlInput, DecisionRecord, HeraclesController,
    PocoloController, PrimaryDirective, ResilienceParams, ServerController,
};
pub use modes::{ControlMode, GovernorConfig, ModeMachine};
pub use partition::partition;
pub use policy::LcPolicy;
pub use queue::{BeJob, BeQueue, QueueDiscipline};
pub use server_manager::{ManagerConfig, ServerManager};

//! Allocation policies for the primary latency-critical application.
//!
//! All policies answer the same question — *how many cores and ways does
//! the primary need to serve a target load?* — but differ in which point of
//! the indifference curve they pick:
//!
//! - [`LcPolicy::PowerOptimized`] (the paper's proposal) picks the
//!   **least-power** point via the analytic Cobb-Douglas demand solution.
//! - [`LcPolicy::HeraclesProportional`] and [`LcPolicy::HeraclesRandom`]
//!   are Heracles-style \[6\] power-oblivious baselines: any feasible point
//!   on the curve is as good as any other, because without a power model
//!   "resources are not differentiated by their power use" (§V-D).

use pocolo_core::error::CoreError;
use pocolo_core::utility::IndirectUtility;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A primary-allocation policy. See the [module docs](self) for the
/// variants' semantics.
#[derive(Debug, Clone)]
pub enum LcPolicy {
    /// Least-power allocation from the Cobb-Douglas indirect utility
    /// (the POM / POColo server component).
    PowerOptimized,
    /// Power-oblivious: the feasible indifference-curve point with the most
    /// balanced normalized core/way shares.
    HeraclesProportional,
    /// Power-oblivious: a uniformly random feasible indifference-curve
    /// point, re-drawn on every decision (seeded).
    HeraclesRandom {
        /// RNG seed; the policy keeps an internal counter so successive
        /// decisions differ while runs stay reproducible.
        seed: u64,
        /// Internal decision counter (serialized so runs can resume).
        draws: u64,
    },
}

impl LcPolicy {
    /// A seeded random-Heracles policy.
    pub fn heracles_random(seed: u64) -> Self {
        LcPolicy::HeraclesRandom { seed, draws: 0 }
    }

    /// Chooses the primary's (cores, ways) for `target_perf` (the max load,
    /// in the app's own units, the allocation must sustain within SLO),
    /// using the *fitted* utility model.
    ///
    /// Falls back to the full machine when the target is unreachable —
    /// the latency-critical application has absolute priority.
    ///
    /// # Errors
    ///
    /// Propagates model-evaluation errors other than unreachable targets.
    pub fn allocate(
        &mut self,
        utility: &IndirectUtility,
        target_perf: f64,
    ) -> Result<(u32, u32), CoreError> {
        let space = utility.space();
        let max_c = space.descriptor(0).max() as u32;
        let max_w = space.descriptor(1).max() as u32;
        let full = (max_c, max_w);
        if target_perf.is_nan() || target_perf <= 0.0 {
            return Ok((1, 1));
        }
        match self {
            LcPolicy::PowerOptimized => {
                let budget = match utility.min_power_for(target_perf) {
                    Ok(p) => p,
                    Err(CoreError::UnreachableTarget { .. }) => return Ok(full),
                    Err(e) => return Err(e),
                };
                // Integral demand may round below the target; nudge the
                // budget up until the rounded allocation suffices.
                let mut budget = budget;
                for _ in 0..32 {
                    let alloc = utility.demand_integral(budget)?;
                    let perf = utility.performance_model().evaluate(&alloc)?;
                    if perf >= target_perf || budget >= utility.max_power() {
                        return Ok((
                            alloc.amount(0).round() as u32,
                            alloc.amount(1).round() as u32,
                        ));
                    }
                    budget = (budget * 1.03).min(utility.max_power());
                }
                Ok(full)
            }
            LcPolicy::HeraclesProportional => {
                let feasible =
                    corunner_friendly(feasible_curve_points(utility, target_perf)?, max_c, max_w);
                Ok(feasible
                    .into_iter()
                    .min_by(|&(c1, w1), &(c2, w2)| {
                        let bal = |c: u32, w: u32| {
                            (c as f64 / max_c as f64 - w as f64 / max_w as f64).abs()
                        };
                        bal(c1, w1)
                            .partial_cmp(&bal(c2, w2))
                            .expect("balance metric is finite")
                    })
                    .unwrap_or(full))
            }
            LcPolicy::HeraclesRandom { seed, draws } => {
                let feasible =
                    corunner_friendly(feasible_curve_points(utility, target_perf)?, max_c, max_w);
                if feasible.is_empty() {
                    return Ok(full);
                }
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(*draws));
                *draws += 1;
                Ok(feasible[rng.gen_range(0..feasible.len())])
            }
        }
    }
}

/// Prefers curve points that leave a minimal share (2 cores, 2 ways) for
/// the best-effort co-runner, falling back to the unrestricted list when the
/// primary genuinely needs near-everything (it has absolute priority).
fn corunner_friendly(points: Vec<(u32, u32)>, max_c: u32, max_w: u32) -> Vec<(u32, u32)> {
    let friendly: Vec<(u32, u32)> = points
        .iter()
        .copied()
        .filter(|&(c, w)| c + 2 <= max_c && w + 2 <= max_w)
        .collect();
    if friendly.is_empty() {
        points
    } else {
        friendly
    }
}

/// All integral (cores, ways) points at or just above the iso-performance
/// curve for `target`: for each core count, the smallest way count that
/// reaches the target (if any).
fn feasible_curve_points(
    utility: &IndirectUtility,
    target: f64,
) -> Result<Vec<(u32, u32)>, CoreError> {
    let space = utility.space();
    let max_c = space.descriptor(0).max() as u32;
    let max_w = space.descriptor(1).max() as u32;
    let perf = utility.performance_model();
    let mut out = Vec::new();
    for c in 1..=max_c {
        let w = perf.solve_for_resource(&[c as f64, 0.0], 1, target)?;
        if !w.is_finite() {
            continue;
        }
        let w = w.ceil().max(1.0) as u32;
        if w <= max_w {
            out.push((c, w));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_core::testing::xeon_space;
    use pocolo_core::units::Watts;
    use pocolo_core::utility::{CobbDouglas, PowerModel};

    fn utility() -> IndirectUtility {
        let space = xeon_space();
        let perf = CobbDouglas::new(100.0, vec![0.6, 0.4]).unwrap();
        let power = PowerModel::new(Watts(50.0), vec![6.0, 1.5]).unwrap();
        IndirectUtility::new(space, perf, power).unwrap()
    }

    fn perf_of(u: &IndirectUtility, c: u32, w: u32) -> f64 {
        u.performance_model()
            .evaluate_amounts(&[c as f64, w as f64])
            .unwrap()
    }

    #[test]
    fn power_optimized_meets_target_at_least_power() {
        let u = utility();
        let target = perf_of(&u, 5, 9);
        let mut p = LcPolicy::PowerOptimized;
        let (c, w) = p.allocate(&u, target).unwrap();
        assert!(perf_of(&u, c, w) >= target * (1.0 - 1e-9), "({c},{w})");
        // The chosen point should be within a couple of watts of the best
        // integer point (continuous demand + greedy rounding is near- but
        // not exactly integer-optimal).
        let chosen_power = u
            .power_model()
            .power_of_amounts(&[c as f64, w as f64])
            .unwrap();
        let mut best = f64::MAX;
        for cc in 1..=12u32 {
            for ww in 1..=20u32 {
                if perf_of(&u, cc, ww) >= target {
                    let p2 = u
                        .power_model()
                        .power_of_amounts(&[cc as f64, ww as f64])
                        .unwrap();
                    best = best.min(p2.0);
                }
            }
        }
        assert!(
            chosen_power.0 <= best + 3.0,
            "chosen {chosen_power} too far above best integer point {best} W"
        );
    }

    #[test]
    fn power_optimized_unreachable_falls_back_to_full() {
        let u = utility();
        let mut p = LcPolicy::PowerOptimized;
        let (c, w) = p.allocate(&u, 1e12).unwrap();
        assert_eq!((c, w), (12, 20));
    }

    #[test]
    fn zero_target_gets_minimum() {
        let u = utility();
        for mut p in [
            LcPolicy::PowerOptimized,
            LcPolicy::HeraclesProportional,
            LcPolicy::heracles_random(1),
        ] {
            assert_eq!(p.allocate(&u, 0.0).unwrap(), (1, 1));
        }
    }

    #[test]
    fn heracles_proportional_meets_target() {
        let u = utility();
        let target = perf_of(&u, 6, 10);
        let mut p = LcPolicy::HeraclesProportional;
        let (c, w) = p.allocate(&u, target).unwrap();
        assert!(perf_of(&u, c, w) >= target * (1.0 - 1e-9));
        // Roughly balanced shares.
        assert!(
            (c as f64 / 12.0 - w as f64 / 20.0).abs() < 0.25,
            "({c},{w})"
        );
    }

    #[test]
    fn heracles_random_meets_target_and_varies() {
        let u = utility();
        let target = perf_of(&u, 5, 8);
        let mut p = LcPolicy::heracles_random(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20 {
            let (c, w) = p.allocate(&u, target).unwrap();
            assert!(perf_of(&u, c, w) >= target * (1.0 - 1e-9));
            seen.insert((c, w));
        }
        assert!(seen.len() > 1, "random policy should explore the curve");
    }

    #[test]
    fn heracles_random_is_reproducible() {
        let u = utility();
        let target = perf_of(&u, 5, 8);
        let mut p1 = LcPolicy::heracles_random(7);
        let mut p2 = LcPolicy::heracles_random(7);
        for _ in 0..10 {
            assert_eq!(
                p1.allocate(&u, target).unwrap(),
                p2.allocate(&u, target).unwrap()
            );
        }
    }

    #[test]
    fn heracles_random_draws_more_power_on_average_than_pom() {
        let u = utility();
        let target = perf_of(&u, 5, 9);
        let mut pom = LcPolicy::PowerOptimized;
        let (c, w) = pom.allocate(&u, target).unwrap();
        let pom_power = u
            .power_model()
            .power_of_amounts(&[c as f64, w as f64])
            .unwrap();
        let mut rnd = LcPolicy::heracles_random(3);
        let mut total = 0.0;
        let n = 50;
        for _ in 0..n {
            let (c, w) = rnd.allocate(&u, target).unwrap();
            total += u
                .power_model()
                .power_of_amounts(&[c as f64, w as f64])
                .unwrap()
                .0;
        }
        let avg = total / n as f64;
        assert!(
            avg > pom_power.0 + 1.0,
            "random average {avg} should exceed POM {pom_power}"
        );
    }

    #[test]
    fn unreachable_target_full_machine_for_all_policies() {
        let u = utility();
        for mut p in [LcPolicy::HeraclesProportional, LcPolicy::heracles_random(0)] {
            assert_eq!(p.allocate(&u, 1e12).unwrap(), (12, 20));
        }
    }
}

//! The per-server control loop (§IV-C).
//!
//! Every control window (1 s in the paper) the manager:
//!
//! 1. reads the primary's current load and observed p99 latency slack,
//! 2. adjusts a multiplicative sizing **margin** by feedback — grow when
//!    slack dips under 10 %, shrink when there is ample headroom (this
//!    absorbs model misfit and load noise),
//! 3. asks its [`LcPolicy`] for the primary's (cores, ways),
//! 4. re-partitions the server: primary first, every spare resource to the
//!    best-effort secondary (whose DVFS/quota state the capper owns and is
//!    preserved across re-partitions).

use std::error::Error as StdError;
use std::fmt;

use pocolo_core::error::CoreError;
use pocolo_core::units::{Frequency, Watts};
use pocolo_core::utility::IndirectUtility;
use pocolo_simserver::{SimError, SimServer, TenantRole};

use crate::partition::partition;
use crate::policy::LcPolicy;

/// Errors from the server manager.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ManagerError {
    /// The economics model failed (fit mismatch, unreachable target, …).
    Model(CoreError),
    /// The simulated server rejected a knob setting.
    Server(SimError),
}

impl fmt::Display for ManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerError::Model(e) => write!(f, "model error: {e}"),
            ManagerError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl StdError for ManagerError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ManagerError::Model(e) => Some(e),
            ManagerError::Server(e) => Some(e),
        }
    }
}

impl From<CoreError> for ManagerError {
    fn from(e: CoreError) -> Self {
        ManagerError::Model(e)
    }
}

impl From<SimError> for ManagerError {
    fn from(e: SimError) -> Self {
        ManagerError::Server(e)
    }
}

/// Tuning of the feedback loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManagerConfig {
    /// Grow the margin when observed slack falls below this (paper: 10 %).
    pub min_slack: f64,
    /// Shrink the margin when observed slack exceeds this.
    pub high_slack: f64,
    /// Initial sizing margin (target = load × margin).
    pub initial_margin: f64,
    /// Multiplier applied to the margin on low slack.
    pub margin_up: f64,
    /// Multiplier applied on ample slack.
    pub margin_down: f64,
    /// Margin clamp range.
    pub margin_bounds: (f64, f64),
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            min_slack: 0.10,
            high_slack: 0.50,
            initial_margin: 1.10,
            margin_up: 1.12,
            margin_down: 0.985,
            margin_bounds: (1.02, 1.8),
        }
    }
}

/// The per-server manager: fitted model + policy + feedback state.
#[derive(Debug, Clone)]
pub struct ServerManager {
    utility: IndirectUtility,
    policy: LcPolicy,
    config: ManagerConfig,
    margin: f64,
    last_counts: Option<(u32, u32)>,
}

impl ServerManager {
    /// Creates a manager from the primary's *fitted* indirect utility and
    /// an allocation policy.
    pub fn new(utility: IndirectUtility, policy: LcPolicy, config: ManagerConfig) -> Self {
        let margin = config.initial_margin;
        ServerManager {
            utility,
            policy,
            config,
            margin,
            last_counts: None,
        }
    }

    /// The fitted model the manager plans with.
    pub fn utility(&self) -> &IndirectUtility {
        &self.utility
    }

    /// Current feedback margin (target = load × margin).
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// The primary counts chosen on the last step.
    pub fn last_counts(&self) -> Option<(u32, u32)> {
        self.last_counts
    }

    /// Runs one control step: updates the feedback margin from
    /// `observed_slack` (if any), sizes the primary for `load_rps`, and
    /// re-partitions `server`. Returns the primary's (cores, ways).
    ///
    /// The secondary's DVFS frequency and quota (owned by the power capper)
    /// are carried over across re-partitions.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError`] on model or knob failures.
    pub fn control_step(
        &mut self,
        server: &mut SimServer,
        load_rps: f64,
        observed_slack: Option<f64>,
    ) -> Result<(u32, u32), ManagerError> {
        let (c, w) = self.plan_analytic(load_rps, observed_slack)?;
        self.apply(server, c, w)
    }

    /// The planning half of [`ServerManager::control_step`]: updates the
    /// feedback margin and sizes the primary, without touching a server.
    /// Controllers plan; backends [`ServerManager::apply`].
    ///
    /// The margin update happens *before* the allocation can fail, so a
    /// failed plan still consumes the slack observation — exactly like
    /// the fused step.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError`] on model failures.
    pub fn plan_analytic(
        &mut self,
        load_rps: f64,
        observed_slack: Option<f64>,
    ) -> Result<(u32, u32), ManagerError> {
        self.update_margin(observed_slack);
        let target = load_rps * self.margin;
        let (c, w) = self.policy.allocate(&self.utility, target)?;
        Ok((c, w))
    }

    /// Budget-capped control step for a power emergency (brownout): sizes
    /// the primary analytically like [`ServerManager::control_step`], but
    /// if the chosen allocation's modeled draw exceeds `budget`, falls
    /// back to the Cobb-Douglas *demand at budget* — the best allocation
    /// the shrunk envelope can buy at full frequency. Growing cores past
    /// the budget only trips the RAPL emergency throttle, and a
    /// frequency-floored machine serves less than a budget-sized one.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError`] on model or knob failures.
    pub fn budgeted_step(
        &mut self,
        server: &mut SimServer,
        load_rps: f64,
        observed_slack: Option<f64>,
        budget: Watts,
    ) -> Result<(u32, u32), ManagerError> {
        let (c, w) = self.plan_budgeted(load_rps, observed_slack, budget)?;
        self.apply(server, c, w)
    }

    /// The planning half of [`ServerManager::budgeted_step`].
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError`] on model failures.
    pub fn plan_budgeted(
        &mut self,
        load_rps: f64,
        observed_slack: Option<f64>,
        budget: Watts,
    ) -> Result<(u32, u32), ManagerError> {
        self.update_margin(observed_slack);
        let target = load_rps * self.margin;
        let (mut c, mut w) = self.policy.allocate(&self.utility, target)?;
        let draw = self
            .utility
            .power_model()
            .power_of_amounts(&[c as f64, w as f64])?;
        if draw > budget {
            match self.utility.demand_integral(budget) {
                Ok(alloc) => {
                    c = (alloc.amount(0).round() as u32).max(1);
                    w = (alloc.amount(1).round() as u32).max(1);
                }
                // Budget below even the static floor: minimal footprint.
                Err(_) => {
                    c = 1;
                    w = 1;
                }
            }
        }
        Ok((c, w))
    }

    fn update_margin(&mut self, observed_slack: Option<f64>) {
        if let Some(slack) = observed_slack {
            if slack < self.config.min_slack {
                self.margin *= self.config.margin_up;
            } else if slack > self.config.high_slack {
                self.margin *= self.config.margin_down;
            }
            let (lo, hi) = self.config.margin_bounds;
            self.margin = self.margin.clamp(lo, hi);
        }
    }

    /// Degraded-mode control step: pure Heracles-style incremental latency
    /// feedback, with no analytic model in the loop. Used when telemetry
    /// is stale or the fitted model can no longer be trusted — growing the
    /// primary by one core and one way on low (or *unknown*) slack, and
    /// trimming one of each only on verified ample headroom. When blind,
    /// protect the SLO.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError`] on knob failures.
    pub fn degraded_step(
        &mut self,
        server: &mut SimServer,
        observed_slack: Option<f64>,
    ) -> Result<(u32, u32), ManagerError> {
        let machine = server.machine();
        let max_counts = (machine.cores(), machine.llc_ways());
        let (c, w) = self.plan_incremental(max_counts, observed_slack);
        self.apply(server, c, w)
    }

    /// The planning half of [`ServerManager::degraded_step`] — and the
    /// entirety of the Heracles-style baseline's policy. Infallible: no
    /// model is consulted.
    pub fn plan_incremental(
        &self,
        max_counts: (u32, u32),
        observed_slack: Option<f64>,
    ) -> (u32, u32) {
        let (max_c, max_w) = max_counts;
        let (mut c, mut w) = self.last_counts.unwrap_or((max_c, max_w));
        match observed_slack {
            Some(s) if s > self.config.high_slack => {
                c = c.saturating_sub(1).max(1);
                w = w.saturating_sub(1).max(1);
            }
            Some(s) if s >= self.config.min_slack => {}
            // Low slack — or no reading at all. Grow conservatively.
            _ => {
                c = (c + 1).min(max_c);
                w = (w + 1).min(max_w);
            }
        }
        (c, w)
    }

    /// Replaces the manager's fitted model mid-run (model drift injection
    /// or a re-fit), keeping the feedback state.
    pub fn replace_utility(&mut self, utility: IndirectUtility) {
        self.utility = utility;
    }

    /// Installs a `(c, w)` primary and gives every spare resource to the
    /// secondary, preserving the capper's DVFS/quota state on it. This is
    /// the actuation half of every `*_step`: backends call it with the
    /// counts a [`crate::control::ControlDecision`] carries.
    ///
    /// # Errors
    ///
    /// Returns [`ManagerError`] on knob failures; `last_counts` is only
    /// updated on success.
    pub fn apply(
        &mut self,
        server: &mut SimServer,
        c: u32,
        w: u32,
    ) -> Result<(u32, u32), ManagerError> {
        // Preserve the capper's state on the secondary.
        let (be_freq, be_quota) = server
            .allocation(TenantRole::Secondary)
            .map(|s| (s.frequency, s.cpu_quota))
            .unwrap_or((server.machine().freq_max(), 1.0));

        let machine = server.machine().clone();
        let (primary, secondary) = partition(&machine, c, w, machine.freq_max(), be_freq);

        // Evict the secondary first so a growing primary never collides.
        server.evict(TenantRole::Secondary);
        server.install(TenantRole::Primary, primary)?;
        if let Some(mut sec) = secondary {
            sec.cpu_quota = be_quota;
            sec.frequency = Frequency(be_freq.0);
            server.install(TenantRole::Secondary, sec)?;
        }
        self.last_counts = Some((c, w));
        Ok((c, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use pocolo_simserver::power::PowerDrawModel;
    use pocolo_simserver::MachineSpec;
    use pocolo_workloads::profiler::{profile_lc, ProfilerConfig};
    use pocolo_workloads::{LcApp, LcModel};

    fn fitted(app: LcApp) -> (LcModel, IndirectUtility) {
        let machine = MachineSpec::xeon_e5_2650();
        let truth = LcModel::for_app(app, machine.clone());
        let power = PowerDrawModel::new(machine.clone());
        let space = machine.resource_space();
        let samples = profile_lc(&truth, &power, &space, &ProfilerConfig::default());
        let fit = pocolo_core::fit::fit_indirect_utility(
            &space,
            &samples,
            &pocolo_core::fit::FitOptions::default(),
        )
        .unwrap();
        (truth, fit.utility)
    }

    fn run_loop(
        app: LcApp,
        policy: LcPolicy,
        load_frac: f64,
        steps: usize,
    ) -> (LcModel, SimServer, ServerManager) {
        let (truth, utility) = fitted(app);
        let mut server = SimServer::new(truth.machine().clone(), truth.provisioned_power());
        let mut mgr = ServerManager::new(utility, policy, ManagerConfig::default());
        let load = load_frac * truth.peak_load_rps();
        let mut slack = None;
        for _ in 0..steps {
            mgr.control_step(&mut server, load, slack).unwrap();
            let alloc = *server.allocation(TenantRole::Primary).unwrap();
            slack = Some(truth.latency_slack(load, &alloc));
        }
        (truth, server, mgr)
    }

    #[test]
    fn converges_to_slo_with_slack_across_loads_and_apps() {
        for app in [LcApp::Xapian, LcApp::Sphinx, LcApp::ImgDnn, LcApp::TpcC] {
            for load_frac in [0.1, 0.3, 0.5, 0.7, 0.9] {
                let (truth, server, _) = run_loop(app, LcPolicy::PowerOptimized, load_frac, 12);
                let alloc = server.allocation(TenantRole::Primary).unwrap();
                let load = load_frac * truth.peak_load_rps();
                let slack = truth.latency_slack(load, alloc);
                assert!(
                    slack >= 0.0,
                    "{app} at {load_frac}: SLO violated, slack {slack} with {alloc}"
                );
            }
        }
    }

    #[test]
    fn low_load_leaves_spare_resources() {
        let (_, server, _) = run_loop(LcApp::Xapian, LcPolicy::PowerOptimized, 0.1, 12);
        let sec = server.allocation(TenantRole::Secondary).unwrap();
        assert!(
            sec.cores.count() >= 8,
            "10% load should leave most cores spare, got {}",
            sec.cores.count()
        );
    }

    #[test]
    fn high_load_reclaims_resources() {
        let (_, server_low, _) = run_loop(LcApp::Xapian, LcPolicy::PowerOptimized, 0.2, 12);
        let (_, server_high, _) = run_loop(LcApp::Xapian, LcPolicy::PowerOptimized, 0.9, 12);
        let low = server_low.allocation(TenantRole::Primary).unwrap();
        let high = server_high.allocation(TenantRole::Primary).unwrap();
        assert!(high.cores.count() > low.cores.count());
    }

    #[test]
    fn margin_grows_on_low_slack() {
        let (truth, utility) = fitted(LcApp::Sphinx);
        let mut server = SimServer::new(truth.machine().clone(), truth.provisioned_power());
        let mut mgr =
            ServerManager::new(utility, LcPolicy::PowerOptimized, ManagerConfig::default());
        let m0 = mgr.margin();
        mgr.control_step(&mut server, 5.0, Some(0.02)).unwrap();
        assert!(mgr.margin() > m0);
        // And shrinks on ample slack.
        let m1 = mgr.margin();
        mgr.control_step(&mut server, 5.0, Some(0.9)).unwrap();
        assert!(mgr.margin() < m1);
    }

    #[test]
    fn pom_draws_less_power_than_random_heracles() {
        let power = PowerDrawModel::new(MachineSpec::xeon_e5_2650());
        let mut pom_total = 0.0;
        let mut rnd_total = 0.0;
        for load_frac in [0.2, 0.4, 0.6, 0.8] {
            let (truth, server, _) =
                run_loop(LcApp::Sphinx, LcPolicy::PowerOptimized, load_frac, 12);
            let alloc = server.allocation(TenantRole::Primary).unwrap();
            pom_total += truth
                .power_draw(load_frac * truth.peak_load_rps(), alloc, &power)
                .0;
            let (truth, server, _) =
                run_loop(LcApp::Sphinx, LcPolicy::heracles_random(5), load_frac, 12);
            let alloc = server.allocation(TenantRole::Primary).unwrap();
            rnd_total += truth
                .power_draw(load_frac * truth.peak_load_rps(), alloc, &power)
                .0;
        }
        assert!(
            pom_total < rnd_total,
            "POM total {pom_total} should be below random Heracles {rnd_total}"
        );
    }

    #[test]
    fn secondary_capper_state_survives_repartition() {
        let (truth, utility) = fitted(LcApp::Xapian);
        let mut server = SimServer::new(truth.machine().clone(), truth.provisioned_power());
        let mut mgr =
            ServerManager::new(utility, LcPolicy::PowerOptimized, ManagerConfig::default());
        mgr.control_step(&mut server, 0.2 * truth.peak_load_rps(), None)
            .unwrap();
        // The capper throttles the secondary...
        server
            .set_frequency(TenantRole::Secondary, Frequency(1.5))
            .unwrap();
        server.set_quota(TenantRole::Secondary, 0.6).unwrap();
        // ...and a re-partition keeps that state.
        mgr.control_step(&mut server, 0.3 * truth.peak_load_rps(), Some(0.4))
            .unwrap();
        let sec = server.allocation(TenantRole::Secondary).unwrap();
        assert_eq!(sec.frequency, Frequency(1.5));
        assert!((sec.cpu_quota - 0.6).abs() < 1e-9);
    }

    #[test]
    fn degraded_step_grows_when_blind() {
        // No slack reading at all: the degraded loop must grow the
        // primary toward the full machine, one core/way per epoch.
        let (truth, utility) = fitted(LcApp::Xapian);
        let machine = truth.machine().clone();
        let mut server = SimServer::new(machine.clone(), truth.provisioned_power());
        let mut mgr =
            ServerManager::new(utility, LcPolicy::PowerOptimized, ManagerConfig::default());
        // Start from a small analytic allocation...
        mgr.control_step(&mut server, 0.1 * truth.peak_load_rps(), None)
            .unwrap();
        let (c0, w0) = mgr.last_counts().unwrap();
        // ...then go blind for enough epochs to reach the full machine.
        for _ in 0..(machine.cores() + machine.llc_ways()) {
            mgr.degraded_step(&mut server, None).unwrap();
        }
        let (c, w) = mgr.last_counts().unwrap();
        assert!(c > c0 && w > w0);
        assert_eq!((c, w), (machine.cores(), machine.llc_ways()));
    }

    #[test]
    fn degraded_step_trims_on_verified_headroom_and_holds_in_band() {
        let (truth, utility) = fitted(LcApp::Sphinx);
        let mut server = SimServer::new(truth.machine().clone(), truth.provisioned_power());
        let mut mgr =
            ServerManager::new(utility, LcPolicy::PowerOptimized, ManagerConfig::default());
        mgr.degraded_step(&mut server, None).unwrap(); // full machine
        let (c0, w0) = mgr.last_counts().unwrap();
        mgr.degraded_step(&mut server, Some(0.9)).unwrap(); // ample slack
        let (c1, w1) = mgr.last_counts().unwrap();
        assert_eq!((c1, w1), (c0 - 1, w0 - 1));
        mgr.degraded_step(&mut server, Some(0.3)).unwrap(); // in band: hold
        assert_eq!(mgr.last_counts().unwrap(), (c1, w1));
        mgr.degraded_step(&mut server, Some(0.01)).unwrap(); // low: grow
        assert_eq!(mgr.last_counts().unwrap(), (c1 + 1, w1 + 1));
    }

    #[test]
    fn degraded_step_never_starves_the_primary() {
        let (truth, utility) = fitted(LcApp::TpcC);
        let mut server = SimServer::new(truth.machine().clone(), truth.provisioned_power());
        let mut mgr =
            ServerManager::new(utility, LcPolicy::PowerOptimized, ManagerConfig::default());
        mgr.control_step(&mut server, 0.1 * truth.peak_load_rps(), None)
            .unwrap();
        for _ in 0..64 {
            mgr.degraded_step(&mut server, Some(0.99)).unwrap();
        }
        let (c, w) = mgr.last_counts().unwrap();
        assert_eq!((c, w), (1, 1));
        assert!(server.allocation(TenantRole::Primary).is_some());
    }

    #[test]
    fn degraded_step_preserves_secondary_capper_state() {
        let (truth, utility) = fitted(LcApp::Xapian);
        let mut server = SimServer::new(truth.machine().clone(), truth.provisioned_power());
        let mut mgr =
            ServerManager::new(utility, LcPolicy::PowerOptimized, ManagerConfig::default());
        mgr.control_step(&mut server, 0.2 * truth.peak_load_rps(), None)
            .unwrap();
        server
            .set_frequency(TenantRole::Secondary, Frequency(1.4))
            .unwrap();
        server.set_quota(TenantRole::Secondary, 0.5).unwrap();
        mgr.degraded_step(&mut server, None).unwrap();
        let sec = server.allocation(TenantRole::Secondary).unwrap();
        assert_eq!(sec.frequency, Frequency(1.4));
        assert!((sec.cpu_quota - 0.5).abs() < 1e-9);
    }

    #[test]
    fn replace_utility_swaps_the_model() {
        let (_, utility) = fitted(LcApp::Xapian);
        let (_, other) = fitted(LcApp::Sphinx);
        let mut mgr =
            ServerManager::new(utility, LcPolicy::PowerOptimized, ManagerConfig::default());
        let before = mgr.utility().performance_model().alphas().to_vec();
        mgr.replace_utility(other);
        assert_ne!(mgr.utility().performance_model().alphas(), &before[..]);
    }

    #[test]
    fn last_counts_reported() {
        let (_, _, mgr) = run_loop(LcApp::TpcC, LcPolicy::PowerOptimized, 0.5, 3);
        let (c, w) = mgr.last_counts().unwrap();
        assert!(c >= 1 && w >= 1);
    }

    #[test]
    fn error_types_display() {
        let e = ManagerError::Model(CoreError::SingularSystem);
        assert!(e.to_string().contains("model error"));
        assert!(StdError::source(&e).is_some());
        let e = ManagerError::Server(SimError::NoSuchTenant("secondary"));
        assert!(e.to_string().contains("server error"));
    }
}

//! Time-sharing a server's best-effort slot among multiple jobs — the
//! paper's §V-G extension ("if there are more than one best-effort
//! application, they can be scheduled to time-share the server (e.g.
//! first-come first-served, shortest job first)").
//!
//! A [`BeQueue`] holds pending [`BeJob`]s, each with a fixed amount of
//! *work* (throughput-seconds). At any instant exactly one job occupies the
//! secondary slot; it accumulates progress at the server's current
//! normalized BE throughput. The queue discipline decides who runs next.

use std::collections::VecDeque;
use std::fmt;

/// One best-effort job: an identifier and its remaining work, measured in
/// normalized throughput-seconds (1.0 throughput for 10 s = 10 units).
#[derive(Debug, Clone, PartialEq)]
pub struct BeJob {
    /// Caller-assigned identifier.
    pub id: u64,
    /// Human-readable name (e.g. the BE app).
    pub name: String,
    /// Remaining work units.
    pub remaining: f64,
    /// Time the job entered the queue (simulation seconds).
    pub arrived_at: f64,
}

impl BeJob {
    /// Creates a job with `work` units arriving at `now`.
    ///
    /// # Panics
    ///
    /// Panics unless `work` is positive and finite.
    pub fn new(id: u64, name: impl Into<String>, work: f64, now: f64) -> Self {
        assert!(work.is_finite() && work > 0.0, "job work must be positive");
        BeJob {
            id,
            name: name.into(),
            remaining: work,
            arrived_at: now,
        }
    }
}

impl fmt::Display for BeJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{} ({:.1} left)", self.name, self.id, self.remaining)
    }
}

/// Queue discipline for the secondary slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// First-come, first-served.
    Fcfs,
    /// Shortest (remaining) job first — preemptive at job boundaries.
    Sjf,
}

/// A completed job with its queueing statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedJob {
    /// The finished job (remaining = 0).
    pub job: BeJob,
    /// Completion time (simulation seconds).
    pub finished_at: f64,
    /// Turnaround: completion − arrival.
    pub turnaround_s: f64,
}

/// A time-shared best-effort queue for one server's secondary slot.
///
/// ```
/// use pocolo_manager::queue::{BeQueue, BeJob, QueueDiscipline};
///
/// let mut q = BeQueue::new(QueueDiscipline::Sjf);
/// q.submit(BeJob::new(1, "graph", 10.0, 0.0));
/// q.submit(BeJob::new(2, "pbzip", 2.0, 0.0));
/// // SJF runs the short pbzip job first.
/// assert_eq!(q.current().unwrap().id, 2);
/// // 4 seconds at throughput 0.6 = 2.4 work units: pbzip (2.0) finishes.
/// let done = q.advance(0.6, 4.0, 4.0);
/// assert_eq!(done.len(), 1);
/// assert_eq!(q.current().unwrap().id, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BeQueue {
    discipline: QueueDiscipline,
    pending: VecDeque<BeJob>,
    current: Option<BeJob>,
    completed: Vec<CompletedJob>,
}

impl BeQueue {
    /// An empty queue with the given discipline.
    pub fn new(discipline: QueueDiscipline) -> Self {
        BeQueue {
            discipline,
            pending: VecDeque::new(),
            current: None,
            completed: Vec::new(),
        }
    }

    /// The discipline in force.
    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// Submits a job; it may immediately become current if the slot is free
    /// (or preempt under SJF if strictly shorter).
    pub fn submit(&mut self, job: BeJob) {
        self.pending.push_back(job);
        self.schedule();
    }

    /// The job currently occupying the secondary slot.
    pub fn current(&self) -> Option<&BeJob> {
        self.current.as_ref()
    }

    /// Jobs waiting behind the current one.
    pub fn pending(&self) -> impl Iterator<Item = &BeJob> {
        self.pending.iter()
    }

    /// Number of unfinished jobs (current + pending).
    pub fn len(&self) -> usize {
        self.pending.len() + usize::from(self.current.is_some())
    }

    /// True when no work remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All completions so far, in finish order.
    pub fn completed(&self) -> &[CompletedJob] {
        &self.completed
    }

    /// Advances the current job by `throughput × dt` work units, finishing
    /// and rotating jobs as needed. `now` is the simulation time at the end
    /// of the interval. Returns jobs completed during this interval.
    ///
    /// Within one interval several short jobs may finish back-to-back; the
    /// leftover time flows into the next job (completion times interpolate
    /// within the interval).
    pub fn advance(&mut self, throughput: f64, dt: f64, now: f64) -> Vec<CompletedJob> {
        let mut finished = Vec::new();
        if throughput <= 0.0 || dt <= 0.0 {
            return finished;
        }
        let mut budget = throughput * dt;
        let interval_start = now - dt;
        while budget > 0.0 {
            self.schedule();
            let Some(job) = self.current.as_mut() else {
                break;
            };
            if job.remaining <= budget {
                budget -= job.remaining;
                let consumed_frac = (throughput * dt - budget) / (throughput * dt);
                let mut done = self.current.take().expect("current exists");
                done.remaining = 0.0;
                let finished_at = interval_start + consumed_frac * dt;
                let completed = CompletedJob {
                    turnaround_s: finished_at - done.arrived_at,
                    finished_at,
                    job: done,
                };
                self.completed.push(completed.clone());
                finished.push(completed);
            } else {
                job.remaining -= budget;
                budget = 0.0;
            }
        }
        finished
    }

    /// Picks the next current job per the discipline. Under SJF a pending
    /// job strictly shorter than the current one preempts it (the current
    /// job returns to the pending pool with its progress kept).
    fn schedule(&mut self) {
        match self.discipline {
            QueueDiscipline::Fcfs => {
                if self.current.is_none() {
                    self.current = self.pending.pop_front();
                }
            }
            QueueDiscipline::Sjf => {
                let shortest_pending = self
                    .pending
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        a.1.remaining
                            .partial_cmp(&b.1.remaining)
                            .expect("work is finite")
                    })
                    .map(|(i, j)| (i, j.remaining));
                match (&self.current, shortest_pending) {
                    (None, Some((i, _))) => {
                        self.current = self.pending.remove(i);
                    }
                    (Some(cur), Some((i, rem))) if rem < cur.remaining => {
                        let preempted = self.current.take().expect("matched Some");
                        self.current = self.pending.remove(i);
                        self.pending.push_back(preempted);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Mean turnaround of completed jobs, if any.
    pub fn mean_turnaround(&self) -> Option<f64> {
        if self.completed.is_empty() {
            None
        } else {
            Some(
                self.completed.iter().map(|c| c.turnaround_s).sum::<f64>()
                    / self.completed.len() as f64,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs() -> Vec<BeJob> {
        vec![
            BeJob::new(1, "graph", 10.0, 0.0),
            BeJob::new(2, "pbzip", 2.0, 0.0),
            BeJob::new(3, "lstm", 5.0, 0.0),
        ]
    }

    #[test]
    fn fcfs_runs_in_arrival_order() {
        let mut q = BeQueue::new(QueueDiscipline::Fcfs);
        for j in jobs() {
            q.submit(j);
        }
        assert_eq!(q.current().unwrap().id, 1);
        assert_eq!(q.len(), 3);
        // throughput 1.0: graph (10) then pbzip (2) then lstm (5).
        let done = q.advance(1.0, 17.0, 17.0);
        assert_eq!(
            done.iter().map(|c| c.job.id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn sjf_runs_shortest_first() {
        let mut q = BeQueue::new(QueueDiscipline::Sjf);
        for j in jobs() {
            q.submit(j);
        }
        assert_eq!(q.current().unwrap().id, 2, "pbzip (2.0) is shortest");
        let done = q.advance(1.0, 17.0, 17.0);
        assert_eq!(
            done.iter().map(|c| c.job.id).collect::<Vec<_>>(),
            vec![2, 3, 1]
        );
    }

    #[test]
    fn sjf_minimizes_mean_turnaround() {
        let run = |d: QueueDiscipline| {
            let mut q = BeQueue::new(d);
            for j in jobs() {
                q.submit(j);
            }
            q.advance(1.0, 17.0, 17.0);
            q.mean_turnaround().unwrap()
        };
        let fcfs = run(QueueDiscipline::Fcfs);
        let sjf = run(QueueDiscipline::Sjf);
        assert!(sjf < fcfs, "SJF {sjf} should beat FCFS {fcfs}");
        // Closed form: FCFS (10 + 12 + 17)/3 = 13, SJF (2 + 7 + 17)/3 = 8.67.
        assert!((fcfs - 13.0).abs() < 1e-9);
        assert!((sjf - 26.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn completion_times_interpolate_within_interval() {
        let mut q = BeQueue::new(QueueDiscipline::Fcfs);
        q.submit(BeJob::new(1, "a", 1.0, 0.0));
        q.submit(BeJob::new(2, "b", 1.0, 0.0));
        // 4 s at throughput 0.5 = 2.0 units: both finish, at t=2 and t=4.
        let done = q.advance(0.5, 4.0, 4.0);
        assert_eq!(done.len(), 2);
        assert!((done[0].finished_at - 2.0).abs() < 1e-9);
        assert!((done[1].finished_at - 4.0).abs() < 1e-9);
    }

    #[test]
    fn partial_progress_is_retained() {
        let mut q = BeQueue::new(QueueDiscipline::Fcfs);
        q.submit(BeJob::new(1, "a", 10.0, 0.0));
        q.advance(1.0, 4.0, 4.0);
        assert!((q.current().unwrap().remaining - 6.0).abs() < 1e-9);
        q.advance(0.5, 4.0, 8.0);
        assert!((q.current().unwrap().remaining - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sjf_preempts_longer_current_job() {
        let mut q = BeQueue::new(QueueDiscipline::Sjf);
        q.submit(BeJob::new(1, "long", 20.0, 0.0));
        q.advance(1.0, 5.0, 5.0); // long has 15 left
        q.submit(BeJob::new(2, "short", 1.0, 5.0));
        assert_eq!(q.current().unwrap().id, 2, "short job preempts");
        let done = q.advance(1.0, 2.0, 7.0);
        assert_eq!(done[0].job.id, 2);
        // Long job resumes with progress intact.
        assert!((q.current().unwrap().remaining - 14.0).abs() < 1e-9);
    }

    #[test]
    fn fcfs_never_preempts() {
        let mut q = BeQueue::new(QueueDiscipline::Fcfs);
        q.submit(BeJob::new(1, "long", 20.0, 0.0));
        q.submit(BeJob::new(2, "short", 1.0, 0.0));
        assert_eq!(q.current().unwrap().id, 1);
    }

    #[test]
    fn zero_throughput_makes_no_progress() {
        let mut q = BeQueue::new(QueueDiscipline::Fcfs);
        q.submit(BeJob::new(1, "a", 5.0, 0.0));
        let done = q.advance(0.0, 10.0, 10.0);
        assert!(done.is_empty());
        assert!((q.current().unwrap().remaining - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_queue_is_quiet() {
        let mut q = BeQueue::new(QueueDiscipline::Sjf);
        assert!(q.is_empty());
        assert!(q.advance(1.0, 10.0, 10.0).is_empty());
        assert!(q.mean_turnaround().is_none());
        assert_eq!(q.current(), None);
    }

    #[test]
    #[should_panic(expected = "work must be positive")]
    fn zero_work_job_panics() {
        let _ = BeJob::new(1, "a", 0.0, 0.0);
    }

    #[test]
    fn display_format() {
        let j = BeJob::new(7, "graph", 3.25, 0.0);
        assert_eq!(format!("{j}"), "graph#7 (3.2 left)");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Work is conserved: whatever throughput×time is delivered equals
        /// completed work plus progress on unfinished jobs.
        #[test]
        fn work_conservation(
            works in proptest::collection::vec(0.5f64..20.0, 1..10),
            thpt in 0.1f64..1.0,
            steps in 1usize..40,
        ) {
            let total_submitted: f64 = works.iter().sum();
            let mut q = BeQueue::new(QueueDiscipline::Fcfs);
            for (i, &w) in works.iter().enumerate() {
                q.submit(BeJob::new(i as u64, "j", w, 0.0));
            }
            let mut t = 0.0;
            for _ in 0..steps {
                t += 1.0;
                q.advance(thpt, 1.0, t);
            }
            let completed: f64 = works
                .iter()
                .enumerate()
                .filter(|(i, _)| q.completed().iter().any(|c| c.job.id == *i as u64))
                .map(|(_, &w)| w)
                .sum();
            let remaining: f64 = q
                .pending()
                .map(|j| j.remaining)
                .chain(q.current().map(|j| j.remaining))
                .sum();
            let delivered = (thpt * steps as f64).min(total_submitted);
            prop_assert!(
                (completed + (total_submitted - completed - remaining) - delivered).abs()
                    < 1e-6,
                "conservation: completed {completed}, remaining {remaining}, delivered {delivered}"
            );
        }

        /// SJF's mean turnaround never exceeds FCFS's when all jobs arrive
        /// together (the classic scheduling theorem).
        #[test]
        fn sjf_at_least_as_good_as_fcfs(
            works in proptest::collection::vec(0.5f64..20.0, 2..8),
        ) {
            let run = |d: QueueDiscipline| {
                let mut q = BeQueue::new(d);
                for (i, &w) in works.iter().enumerate() {
                    q.submit(BeJob::new(i as u64, "j", w, 0.0));
                }
                let horizon = works.iter().sum::<f64>() + 1.0;
                q.advance(1.0, horizon, horizon);
                q.mean_turnaround().expect("all jobs completed")
            };
            let fcfs = run(QueueDiscipline::Fcfs);
            let sjf = run(QueueDiscipline::Sjf);
            prop_assert!(sjf <= fcfs + 1e-9, "SJF {sjf} must not exceed FCFS {fcfs}");
        }
    }
}

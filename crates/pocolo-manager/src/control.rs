//! The control plane: what a server's management loop *decides*,
//! separated from what the hosting backend (discrete-event sim, spatial
//! multi-tenant server, a future real-host agent) *actuates*.
//!
//! A backend builds a [`ControlInput`] snapshot each manager epoch, asks
//! its [`ServerController`] to [`ServerController::decide`], and actuates
//! the returned [`ControlDecision`] — installing the primary resize via
//! [`crate::ServerManager::apply`], parking or re-admitting the
//! best-effort co-runner on a [`BeIntent`], and (optionally) appending
//! the carried [`DecisionRecord`] to a decision trace.
//!
//! Two controllers ship:
//!
//! - [`PocoloController`] — the paper's analytic demand solve with
//!   latency feedback, plus the brownout power governor and the
//!   frozen-telemetry fallback (armed by
//!   [`ServerController::arm_resilience`]).
//! - [`HeraclesController`] — a power-oblivious incremental-growth
//!   baseline: grow a core and a way on low (or unknown) slack, trim on
//!   verified headroom, never consult the power model.
//!
//! This boundary is what makes the distributed runtime (`pocolo-net`)
//! possible without a second control implementation: a remote POM agent
//! is just another backend. It builds the same [`ControlInput`]
//! snapshots from its local simulation, runs the same controller, and
//! actuates the same [`ControlDecision`]s — only telemetry summaries
//! and final metrics cross the wire, never control policy. The
//! degraded-slot takeover after a lease expiry likewise reuses
//! [`HeraclesController`] as the blind fallback, so the failure path
//! exercises a controller this module already unit-tests.

use std::fmt;

use pocolo_core::units::Watts;
use pocolo_faults::ReadmissionBackoff;

use crate::modes::{ControlMode, GovernorConfig, ModeMachine};
use crate::server_manager::ServerManager;

/// Everything a controller may consult for one decision — a pure
/// snapshot, so decisions are replayable and backends stay free of
/// control policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlInput {
    /// Absolute simulation/wall time, seconds.
    pub now_s: f64,
    /// The load the management plane *observes* (frozen under a
    /// telemetry dropout).
    pub observed_load_rps: f64,
    /// The p99 latency slack the management plane observes, if any.
    pub observed_slack: Option<f64>,
    /// Last power-meter reading, if any.
    pub measured_power: Option<Watts>,
    /// The effective cap right now (provisioned × brownout factor).
    pub effective_cap: Watts,
    /// True while a brownout holds the effective cap under provisioned.
    pub brownout: bool,
    /// True while the RAPL emergency ceiling is depressed.
    pub rapl_throttled: bool,
    /// True while the load/slack telemetry is frozen.
    pub telemetry_frozen: bool,
    /// True while a best-effort co-runner is placed.
    pub be_present: bool,
    /// The co-runner's estimated draw (fitted model at its current
    /// allocation and DVFS point).
    pub be_draw_estimate: Watts,
    /// The machine's full (cores, ways) capacity.
    pub max_counts: (u32, u32),
}

/// What happens to the primary's allocation this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimaryDirective {
    /// Leave the current partition in place (the plan failed; a manager
    /// is resilient, not fatal).
    Hold,
    /// Re-partition: this (cores, ways) primary, every spare resource to
    /// the secondary.
    Resize {
        /// Primary core count.
        cores: u32,
        /// Primary LLC way count.
        ways: u32,
    },
}

/// What happens to the best-effort co-runner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BeIntent {
    /// Nothing.
    Hold,
    /// Evict and park the co-runner (re-admission backoff scheduled).
    Evict,
    /// Re-admit the parked co-runner, paying a warm-up pause.
    Readmit {
        /// Warm-up pause the re-admitted app pays, seconds.
        pause_s: f64,
    },
}

/// A structured trace of one control decision, emitted per manager epoch
/// (the CLI's `--decision-log` dumps these as JSON lines).
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Decision time, seconds.
    pub now_s: f64,
    /// The control mode the decision was taken in.
    pub mode: ControlMode,
    /// Observed load, requests/s.
    pub load_rps: f64,
    /// Observed slack consumed by the decision (`None` when blind).
    pub slack: Option<f64>,
    /// Meter reading, watts.
    pub measured_w: Option<f64>,
    /// Effective cap, watts.
    pub effective_cap_w: f64,
    /// The governed watt budget handed to the planner, if any.
    pub budget_w: Option<f64>,
    /// Planned primary cores (`None` on a hold).
    pub cores: Option<u32>,
    /// Planned primary ways (`None` on a hold).
    pub ways: Option<u32>,
    /// Governor latch state after the decision.
    pub governor_armed: bool,
    /// Distress latch state after the decision.
    pub escalated: bool,
    /// True if the budget target ducked under the release band.
    pub ducked: bool,
}

/// One epoch's outcome: the mode, the primary directive, and the record.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlDecision {
    /// The control mode the decision was taken in.
    pub mode: ControlMode,
    /// What to do with the primary's allocation.
    pub primary: PrimaryDirective,
    /// Structured trace entry for this decision.
    pub record: DecisionRecord,
}

/// Degraded-mode tuning handed to [`ServerController::arm_resilience`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceParams {
    /// Brownout governor targets.
    pub governor: GovernorConfig,
    /// Consecutive distressed capper ticks tolerated before the
    /// co-runner is evicted (rank scaling already folded in).
    pub eviction_patience_ticks: usize,
    /// Exponential re-admission backoff schedule.
    pub backoff: ReadmissionBackoff,
    /// Warm-up pause a re-admitted co-runner pays, seconds.
    pub readmit_pause_s: f64,
}

/// The best-effort co-runner guard: eviction patience and re-admission
/// backoff, shared by every resilient controller.
#[derive(Debug, Clone, PartialEq)]
pub struct BeGuard {
    patience_ticks: usize,
    backoff: ReadmissionBackoff,
    readmit_pause_s: f64,
    saturated_ticks: usize,
    readmit_at_s: Option<f64>,
}

impl BeGuard {
    /// A guard with the given patience, backoff schedule, and warm-up
    /// pause.
    pub fn new(patience_ticks: usize, backoff: ReadmissionBackoff, readmit_pause_s: f64) -> Self {
        BeGuard {
            patience_ticks,
            backoff,
            readmit_pause_s,
            saturated_ticks: 0,
            readmit_at_s: None,
        }
    }

    /// One capper-tick distress update: count consecutive distressed
    /// ticks, and once patience is exceeded with a co-runner present,
    /// order an eviction and schedule the re-admission attempt.
    pub fn distress_tick(&mut self, distressed: bool, be_present: bool, now_s: f64) -> BeIntent {
        if distressed {
            self.saturated_ticks += 1;
        } else {
            self.saturated_ticks = 0;
        }
        if !be_present {
            return BeIntent::Hold;
        }
        if self.saturated_ticks <= self.patience_ticks {
            return BeIntent::Hold;
        }
        self.saturated_ticks = 0;
        self.readmit_at_s = Some(now_s + self.backoff.next_delay());
        BeIntent::Evict
    }

    /// One manager-tick re-admission check: once the scheduled attempt
    /// is due, re-admit — unless the server is still distressed or
    /// faulted, in which case the wait doubles (exponential backoff).
    pub fn readmit_tick(&mut self, now_s: f64, fault_active: bool) -> BeIntent {
        let Some(at) = self.readmit_at_s else {
            return BeIntent::Hold;
        };
        if now_s < at {
            return BeIntent::Hold;
        }
        if self.saturated_ticks > 0 || fault_active {
            self.readmit_at_s = Some(now_s + self.backoff.next_delay());
            return BeIntent::Hold;
        }
        self.readmit_at_s = None;
        BeIntent::Readmit {
            pause_s: self.readmit_pause_s,
        }
    }

    /// A crash recovered with the co-runner parked: schedule its
    /// re-admission attempt after the current backoff.
    pub fn on_recover(&mut self, now_s: f64, be_parked: bool) {
        if be_parked {
            self.readmit_at_s = Some(now_s + self.backoff.next_delay());
        }
    }

    /// The scheduled re-admission attempt, if one is pending.
    pub fn readmit_at_s(&self) -> Option<f64> {
        self.readmit_at_s
    }

    /// Consecutive distressed ticks counted so far.
    pub fn saturated_ticks(&self) -> usize {
        self.saturated_ticks
    }
}

/// A server's control policy: consumes [`ControlInput`] snapshots,
/// produces [`ControlDecision`]s, and owns every piece of mode state the
/// backend used to hand-arbitrate.
pub trait ServerController: fmt::Debug + Send {
    /// One manager epoch: decide what the primary should become.
    fn decide(&mut self, input: &ControlInput) -> ControlDecision;

    /// One capper tick under distress accounting: should the co-runner
    /// be shed?
    fn distress_tick(&mut self, distressed: bool, be_present: bool, now_s: f64) -> BeIntent;

    /// Should a parked co-runner come back this epoch?
    fn readmit_tick(&mut self, now_s: f64, fault_active: bool) -> BeIntent;

    /// A crash recovered. Resilient controllers schedule a backed-off
    /// re-admission and return [`BeIntent::Hold`]; naive ones order an
    /// immediate restart.
    fn on_recover(&mut self, now_s: f64, be_parked: bool) -> BeIntent;

    /// The brownout lifted: disarm the governor latches.
    fn on_brownout_lift(&mut self);

    /// Arms the degraded-mode response (governor, frozen-telemetry
    /// fallback, eviction/re-admission guard).
    fn arm_resilience(&mut self, params: ResilienceParams);

    /// The wrapped per-server manager (fitted model + feedback state).
    fn manager(&self) -> &ServerManager;

    /// Mutable access to the wrapped manager (drift injection, refits,
    /// actuation).
    fn manager_mut(&mut self) -> &mut ServerManager;

    /// The mode of the last decision.
    fn mode(&self) -> ControlMode;
}

fn record_of(
    input: &ControlInput,
    mode: ControlMode,
    slack: Option<f64>,
    budget_w: Option<f64>,
    planned: Option<(u32, u32)>,
    modes: &ModeMachine,
) -> DecisionRecord {
    DecisionRecord {
        now_s: input.now_s,
        mode,
        load_rps: input.observed_load_rps,
        slack,
        measured_w: input.measured_power.map(|m| m.0),
        effective_cap_w: input.effective_cap.0,
        budget_w,
        cores: planned.map(|(c, _)| c),
        ways: planned.map(|(_, w)| w),
        governor_armed: modes.armed(),
        escalated: modes.escalated(),
        ducked: modes.ducked(),
    }
}

fn decision_of(
    input: &ControlInput,
    mode: ControlMode,
    slack: Option<f64>,
    budget_w: Option<f64>,
    planned: Option<(u32, u32)>,
    modes: &ModeMachine,
) -> ControlDecision {
    let primary = match planned {
        Some((cores, ways)) => PrimaryDirective::Resize { cores, ways },
        None => PrimaryDirective::Hold,
    };
    ControlDecision {
        mode,
        primary,
        record: record_of(input, mode, slack, budget_w, planned, modes),
    }
}

/// The paper's power-optimized controller: analytic Cobb-Douglas demand
/// with latency feedback, and — once resilience is armed — the brownout
/// power governor and the frozen-telemetry incremental fallback.
#[derive(Debug, Clone)]
pub struct PocoloController {
    manager: ServerManager,
    modes: ModeMachine,
    governor: Option<GovernorConfig>,
    guard: Option<BeGuard>,
    last_mode: ControlMode,
}

impl PocoloController {
    /// Wraps a manager. Resilience is off until
    /// [`ServerController::arm_resilience`].
    pub fn new(manager: ServerManager) -> Self {
        PocoloController {
            manager,
            modes: ModeMachine::new(),
            governor: None,
            guard: None,
            last_mode: ControlMode::Normal,
        }
    }

    /// The governor latch state (for tests and diagnostics).
    pub fn modes(&self) -> &ModeMachine {
        &self.modes
    }

    /// The co-runner guard, if resilience is armed.
    pub fn guard(&self) -> Option<&BeGuard> {
        self.guard.as_ref()
    }

    fn resilient(&self) -> bool {
        self.governor.is_some()
    }
}

impl ServerController for PocoloController {
    fn decide(&mut self, input: &ControlInput) -> ControlDecision {
        let mut budget_w = None;
        let mut slack = input.observed_slack;
        let planned = if self.resilient() && input.telemetry_frozen {
            // Degraded: telemetry cannot be trusted, so neither can the
            // analytic solve that consumes it. When blind, protect the
            // SLO with incremental growth.
            slack = None;
            Ok(self.manager.plan_incremental(input.max_counts, None))
        } else if let (Some(gov), true) = (self.governor, input.brownout) {
            // Brownout: a measured overdraw arms the power governor,
            // which re-sizes the primary to the Cobb-Douglas demand at a
            // budget *calibrated by the observed model-to-meter ratio* —
            // instead of growing it into the RAPL throttle. A
            // frequency-floored full machine serves less than a
            // budget-sized allocation at full clock.
            let frac = self.modes.brownout_step(
                &gov,
                input.be_present,
                input.observed_slack,
                input.rapl_throttled,
                input.measured_power,
                input.effective_cap,
            );
            let target_total = input.effective_cap * frac;
            match input.measured_power {
                Some(m) if self.modes.armed() && m.0 > 0.0 => {
                    let (c, w) = self.manager.last_counts().unwrap_or((1, 1));
                    let modeled = self
                        .manager
                        .utility()
                        .power_model()
                        .power_of_amounts(&[c as f64, w as f64])
                        .unwrap_or(target_total);
                    // The meter reads the whole server; the budget
                    // governs only the primary. The co-runner's fitted
                    // draw estimate is subtracted from *both* the target
                    // and the reading, so estimate error cancels in
                    // steady state instead of starving (or overfeeding)
                    // the primary.
                    let primary_budget = (target_total.0 - input.be_draw_estimate.0).max(1.0);
                    let m_primary = (m.0 - input.be_draw_estimate.0).max(1.0);
                    // The fitted model prices allocations at full
                    // utilization; the meter reads the actual draw.
                    // Their ratio converts the watt budget into model
                    // space, so the clamp neither starves (model
                    // overestimates) nor overshoots (model
                    // underestimates).
                    let ratio = (primary_budget / m_primary).clamp(0.5, 1.5);
                    let budget = Watts(modeled.0 * ratio);
                    budget_w = Some(budget.0);
                    self.manager.plan_budgeted(
                        input.observed_load_rps,
                        input.observed_slack,
                        budget,
                    )
                }
                _ => self
                    .manager
                    .plan_analytic(input.observed_load_rps, input.observed_slack),
            }
        } else {
            self.manager
                .plan_analytic(input.observed_load_rps, input.observed_slack)
        };
        let mode = if self.resilient() {
            self.modes.mode(input.brownout, input.telemetry_frozen)
        } else {
            ControlMode::Normal
        };
        self.last_mode = mode;
        decision_of(input, mode, slack, budget_w, planned.ok(), &self.modes)
    }

    fn distress_tick(&mut self, distressed: bool, be_present: bool, now_s: f64) -> BeIntent {
        match &mut self.guard {
            Some(guard) => guard.distress_tick(distressed, be_present, now_s),
            None => BeIntent::Hold,
        }
    }

    fn readmit_tick(&mut self, now_s: f64, fault_active: bool) -> BeIntent {
        match &mut self.guard {
            Some(guard) => guard.readmit_tick(now_s, fault_active),
            None => BeIntent::Hold,
        }
    }

    fn on_recover(&mut self, now_s: f64, be_parked: bool) -> BeIntent {
        match &mut self.guard {
            Some(guard) => {
                guard.on_recover(now_s, be_parked);
                BeIntent::Hold
            }
            // Naive path: the co-runner is restarted immediately,
            // whatever the post-crash conditions.
            None => BeIntent::Readmit { pause_s: 0.0 },
        }
    }

    fn on_brownout_lift(&mut self) {
        self.modes.disarm();
    }

    fn arm_resilience(&mut self, params: ResilienceParams) {
        self.governor = Some(params.governor);
        self.guard = Some(BeGuard::new(
            params.eviction_patience_ticks,
            params.backoff,
            params.readmit_pause_s,
        ));
    }

    fn manager(&self) -> &ServerManager {
        &self.manager
    }

    fn manager_mut(&mut self) -> &mut ServerManager {
        &mut self.manager
    }

    fn mode(&self) -> ControlMode {
        self.last_mode
    }
}

/// The Heracles-style incremental-growth baseline as a full controller:
/// grow a core and a way on low (or unknown) slack, trim one of each on
/// verified ample headroom, never consult the power model. Power
/// emergencies are left entirely to the reactive capper — the point of
/// the baseline.
#[derive(Debug, Clone)]
pub struct HeraclesController {
    manager: ServerManager,
    guard: Option<BeGuard>,
    resilient: bool,
    last_mode: ControlMode,
}

impl HeraclesController {
    /// Wraps a manager (only its feedback bounds and `last_counts` state
    /// are consulted; the policy and fitted power model are unused).
    pub fn new(manager: ServerManager) -> Self {
        HeraclesController {
            manager,
            guard: None,
            resilient: false,
            last_mode: ControlMode::Normal,
        }
    }
}

impl ServerController for HeraclesController {
    fn decide(&mut self, input: &ControlInput) -> ControlDecision {
        // A resilient Heracles distrusts frozen slack just like the
        // analytic controller; the naive one consumes the stale reading.
        let slack = if self.resilient && input.telemetry_frozen {
            None
        } else {
            input.observed_slack
        };
        let planned = self.manager.plan_incremental(input.max_counts, slack);
        let mode = if self.resilient && input.telemetry_frozen {
            ControlMode::Degraded
        } else {
            ControlMode::Normal
        };
        self.last_mode = mode;
        decision_of(input, mode, slack, None, Some(planned), &ModeMachine::new())
    }

    fn distress_tick(&mut self, distressed: bool, be_present: bool, now_s: f64) -> BeIntent {
        match &mut self.guard {
            Some(guard) => guard.distress_tick(distressed, be_present, now_s),
            None => BeIntent::Hold,
        }
    }

    fn readmit_tick(&mut self, now_s: f64, fault_active: bool) -> BeIntent {
        match &mut self.guard {
            Some(guard) => guard.readmit_tick(now_s, fault_active),
            None => BeIntent::Hold,
        }
    }

    fn on_recover(&mut self, now_s: f64, be_parked: bool) -> BeIntent {
        match &mut self.guard {
            Some(guard) => {
                guard.on_recover(now_s, be_parked);
                BeIntent::Hold
            }
            None => BeIntent::Readmit { pause_s: 0.0 },
        }
    }

    fn on_brownout_lift(&mut self) {}

    fn arm_resilience(&mut self, params: ResilienceParams) {
        // Power-oblivious: the governor targets are ignored; only the
        // eviction/re-admission guard and the frozen-slack distrust arm.
        self.resilient = true;
        self.guard = Some(BeGuard::new(
            params.eviction_patience_ticks,
            params.backoff,
            params.readmit_pause_s,
        ));
    }

    fn manager(&self) -> &ServerManager {
        &self.manager
    }

    fn manager_mut(&mut self) -> &mut ServerManager {
        &mut self.manager
    }

    fn mode(&self) -> ControlMode {
        self.last_mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> BeGuard {
        BeGuard::new(2, ReadmissionBackoff::new(4.0, 2.0, 64.0), 2.0)
    }

    #[test]
    fn guard_evicts_past_patience_and_schedules_backoff() {
        let mut g = guard();
        assert_eq!(g.distress_tick(true, true, 0.0), BeIntent::Hold);
        assert_eq!(g.distress_tick(true, true, 0.1), BeIntent::Hold);
        assert_eq!(g.distress_tick(true, true, 0.2), BeIntent::Evict);
        assert_eq!(g.readmit_at_s(), Some(0.2 + 4.0));
        assert_eq!(g.saturated_ticks(), 0, "eviction resets the counter");
    }

    #[test]
    fn guard_calm_tick_resets_patience() {
        let mut g = guard();
        g.distress_tick(true, true, 0.0);
        g.distress_tick(true, true, 0.1);
        assert_eq!(g.distress_tick(false, true, 0.2), BeIntent::Hold);
        assert_eq!(g.saturated_ticks(), 0);
        // The full patience is owed again.
        assert_eq!(g.distress_tick(true, true, 0.3), BeIntent::Hold);
        assert_eq!(g.distress_tick(true, true, 0.4), BeIntent::Hold);
        assert_eq!(g.distress_tick(true, true, 0.5), BeIntent::Evict);
    }

    #[test]
    fn guard_counts_distress_with_no_co_runner_but_never_evicts() {
        let mut g = guard();
        for i in 0..10 {
            assert_eq!(g.distress_tick(true, false, i as f64), BeIntent::Hold);
        }
        assert!(g.readmit_at_s().is_none());
    }

    /// The satellite regression: the backoff keeps doubling while the
    /// server is saturated or a fault is active, and re-admission pays
    /// `readmit_pause_s`.
    #[test]
    fn guard_backoff_doubles_while_faulted_and_readmit_honors_pause() {
        let mut g = guard();
        g.distress_tick(true, true, 0.0);
        g.distress_tick(true, true, 0.1);
        assert_eq!(g.distress_tick(true, true, 0.2), BeIntent::Evict);
        // First attempt at 4.2: fault still active — wait doubles to 8 s.
        assert_eq!(g.readmit_tick(4.2, true), BeIntent::Hold);
        assert_eq!(g.readmit_at_s(), Some(4.2 + 8.0));
        // Second attempt: healthy but still saturated — doubles to 16 s.
        g.distress_tick(true, true, 12.0);
        assert_eq!(g.readmit_tick(12.2, false), BeIntent::Hold);
        assert_eq!(g.readmit_at_s(), Some(12.2 + 16.0));
        // Not yet due: nothing happens, the schedule stands.
        assert_eq!(g.readmit_tick(20.0, false), BeIntent::Hold);
        assert_eq!(g.readmit_at_s(), Some(28.2));
        // Due, calm, healthy: re-admitted with the warm-up pause.
        g.distress_tick(false, false, 28.0);
        assert_eq!(
            g.readmit_tick(28.2, false),
            BeIntent::Readmit { pause_s: 2.0 }
        );
        assert!(g.readmit_at_s().is_none());
    }

    #[test]
    fn guard_recover_schedules_only_when_parked() {
        let mut g = guard();
        g.on_recover(10.0, false);
        assert!(g.readmit_at_s().is_none());
        g.on_recover(10.0, true);
        assert_eq!(g.readmit_at_s(), Some(14.0));
    }
}

//! The power-capping actuator (§IV-C): a 100 ms loop that keeps the server
//! under its provisioned power capacity by throttling the *secondary*
//! tenant — first with per-core DVFS, then with CPU-time quota.
//!
//! The primary latency-critical tenant is never touched: it has absolute
//! priority, and the server manager already sizes it within the cap.

use pocolo_core::units::{Frequency, Watts};
use pocolo_simserver::{SimError, SimServer, TenantRole};

/// What the capper did on a control step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapAction {
    /// Power within band; nothing changed.
    None,
    /// Lowered the secondary's frequency one step.
    LoweredFrequency,
    /// Secondary already at minimum frequency; lowered its quota.
    LoweredQuota,
    /// Power comfortably below cap; raised the secondary's quota.
    RaisedQuota,
    /// Quota already full; raised the secondary's frequency.
    RaisedFrequency,
    /// Over cap but the secondary is already at both floors (or absent) —
    /// nothing left to throttle.
    Saturated,
}

/// Hysteretic power-capping controller for one server.
///
/// ```
/// use pocolo_manager::{PowerCapper, CapAction};
/// use pocolo_simserver::{SimServer, MachineSpec, TenantAllocation,
///                        TenantRole, CoreSet, WayMask};
/// use pocolo_core::units::{Frequency, Watts};
///
/// # fn main() -> Result<(), pocolo_simserver::SimError> {
/// let mut server = SimServer::new(MachineSpec::xeon_e5_2650(), Watts(132.0));
/// server.install(TenantRole::Secondary, TenantAllocation::new(
///     CoreSet::first_n(4), WayMask::first_n(4), Frequency(2.2)))?;
/// let capper = PowerCapper::default();
/// // Measured power over the cap: the secondary's frequency drops.
/// let action = capper.step(&mut server, Watts(150.0))?;
/// assert_eq!(action, CapAction::LoweredFrequency);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCapper {
    /// Throttle when measured power exceeds `cap × guard`.
    pub guard: f64,
    /// Un-throttle when measured power falls below `cap × release`.
    pub release: f64,
    /// DVFS step size in GHz.
    pub freq_step: f64,
    /// Quota step size (additive, in `(0, 1)`).
    pub quota_step: f64,
    /// Quota floor — the secondary is never starved below this.
    pub quota_floor: f64,
}

impl Default for PowerCapper {
    fn default() -> Self {
        PowerCapper {
            guard: 1.0,
            release: 0.94,
            freq_step: 0.1,
            quota_step: 0.10,
            quota_floor: 0.05,
        }
    }
}

impl PowerCapper {
    /// Runs one control step against a measured server power reading,
    /// enforcing the server's own provisioned cap.
    ///
    /// # Errors
    ///
    /// Propagates knob errors from the server (none occur with in-range
    /// steps; surfaced for completeness).
    pub fn step(&self, server: &mut SimServer, measured: Watts) -> Result<CapAction, SimError> {
        self.step_with_cap(server, measured, server.power_cap())
    }

    /// Runs one control step against an explicit cap — used when enforcing
    /// a *budget* on the secondary alone (e.g. the paper's fixed 70 W BE
    /// budget experiment, Fig. 3) rather than the server cap.
    ///
    /// # Errors
    ///
    /// Propagates knob errors from the server.
    pub fn step_with_cap(
        &self,
        server: &mut SimServer,
        measured: Watts,
        cap: Watts,
    ) -> Result<CapAction, SimError> {
        let Some(sec) = server.allocation(TenantRole::Secondary).copied() else {
            return Ok(if measured > cap * self.guard {
                CapAction::Saturated
            } else {
                CapAction::None
            });
        };
        let fmin = server.machine().freq_min();
        let fmax = server.machine().freq_max();

        if measured > cap * self.guard {
            // Throttle: frequency first (fine-grained), then quota.
            if sec.frequency > fmin + Frequency(1e-9) {
                server.set_frequency(
                    TenantRole::Secondary,
                    Frequency(sec.frequency.0 - self.freq_step),
                )?;
                Ok(CapAction::LoweredFrequency)
            } else if sec.cpu_quota > self.quota_floor + 1e-9 {
                server.set_quota(
                    TenantRole::Secondary,
                    (sec.cpu_quota - self.quota_step).max(self.quota_floor),
                )?;
                Ok(CapAction::LoweredQuota)
            } else {
                Ok(CapAction::Saturated)
            }
        } else if measured < cap * self.release {
            // Recover: quota first (it hurts throughput linearly), then
            // frequency.
            if sec.cpu_quota < 1.0 - 1e-9 {
                server.set_quota(
                    TenantRole::Secondary,
                    (sec.cpu_quota + self.quota_step).min(1.0),
                )?;
                Ok(CapAction::RaisedQuota)
            } else if sec.frequency < fmax - Frequency(1e-9) {
                server.set_frequency(
                    TenantRole::Secondary,
                    Frequency(sec.frequency.0 + self.freq_step),
                )?;
                Ok(CapAction::RaisedFrequency)
            } else {
                Ok(CapAction::None)
            }
        } else {
            Ok(CapAction::None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_simserver::{CoreSet, MachineSpec, TenantAllocation, WayMask};

    fn server_with_secondary() -> SimServer {
        let mut s = SimServer::new(MachineSpec::xeon_e5_2650(), Watts(132.0));
        s.install(
            TenantRole::Secondary,
            TenantAllocation::new(CoreSet::range(4, 8), WayMask::range(8, 12), Frequency(2.2)),
        )
        .unwrap();
        s
    }

    #[test]
    fn over_cap_lowers_frequency_first() {
        let mut s = server_with_secondary();
        let c = PowerCapper::default();
        let a = c.step(&mut s, Watts(140.0)).unwrap();
        assert_eq!(a, CapAction::LoweredFrequency);
        let f = s.allocation(TenantRole::Secondary).unwrap().frequency;
        assert!((f.0 - 2.1).abs() < 1e-9);
    }

    #[test]
    fn quota_drops_once_frequency_floors() {
        let mut s = server_with_secondary();
        let c = PowerCapper::default();
        // Drive frequency to the floor.
        for _ in 0..20 {
            let _ = c.step(&mut s, Watts(150.0)).unwrap();
        }
        let sec = s.allocation(TenantRole::Secondary).unwrap();
        assert!((sec.frequency.0 - 1.2).abs() < 1e-9);
        assert!(sec.cpu_quota < 1.0, "quota should have started dropping");
    }

    #[test]
    fn saturates_at_floors() {
        let mut s = server_with_secondary();
        let c = PowerCapper::default();
        for _ in 0..40 {
            let _ = c.step(&mut s, Watts(200.0)).unwrap();
        }
        let a = c.step(&mut s, Watts(200.0)).unwrap();
        assert_eq!(a, CapAction::Saturated);
        let sec = s.allocation(TenantRole::Secondary).unwrap();
        assert!((sec.cpu_quota - c.quota_floor).abs() < 1e-9);
    }

    #[test]
    fn recovers_quota_then_frequency() {
        let mut s = server_with_secondary();
        let c = PowerCapper::default();
        for _ in 0..40 {
            let _ = c.step(&mut s, Watts(200.0)).unwrap();
        }
        // Now well under cap: quota recovers first (0.05 → 1.0 in ten
        // 0.1-steps), and only then frequency.
        let a = c.step(&mut s, Watts(80.0)).unwrap();
        assert_eq!(a, CapAction::RaisedQuota);
        for _ in 0..9 {
            let _ = c.step(&mut s, Watts(80.0)).unwrap();
        }
        let sec = s.allocation(TenantRole::Secondary).unwrap();
        assert!(
            (sec.cpu_quota - 1.0).abs() < 1e-9,
            "quota {}",
            sec.cpu_quota
        );
        let a = c.step(&mut s, Watts(80.0)).unwrap();
        assert_eq!(a, CapAction::RaisedFrequency);
    }

    #[test]
    fn in_band_is_a_no_op() {
        let mut s = server_with_secondary();
        let c = PowerCapper::default();
        // Between release (124) and guard (132).
        let a = c.step(&mut s, Watts(128.0)).unwrap();
        assert_eq!(a, CapAction::None);
        let sec = s.allocation(TenantRole::Secondary).unwrap();
        assert_eq!(sec.cpu_quota, 1.0);
        assert_eq!(sec.frequency, Frequency(2.2));
    }

    #[test]
    fn no_secondary_reports_saturated_when_over() {
        let mut s = SimServer::new(MachineSpec::xeon_e5_2650(), Watts(132.0));
        let c = PowerCapper::default();
        assert_eq!(c.step(&mut s, Watts(150.0)).unwrap(), CapAction::Saturated);
        assert_eq!(c.step(&mut s, Watts(100.0)).unwrap(), CapAction::None);
    }

    #[test]
    fn explicit_cap_enforces_be_budget() {
        // Fig. 3 setup: throttle the secondary to a fixed 70 W budget.
        let mut s = server_with_secondary();
        let c = PowerCapper::default();
        let a = c.step_with_cap(&mut s, Watts(95.0), Watts(70.0)).unwrap();
        assert_eq!(a, CapAction::LoweredFrequency);
    }

    #[test]
    fn fully_recovered_is_a_no_op() {
        let mut s = server_with_secondary();
        let c = PowerCapper::default();
        assert_eq!(c.step(&mut s, Watts(80.0)).unwrap(), CapAction::None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pocolo_simserver::{CoreSet, MachineSpec, TenantAllocation, WayMask};
    use proptest::prelude::*;

    proptest! {
        /// Under arbitrary measured-power sequences the capper keeps every
        /// knob inside its hardware bounds and never errors.
        #[test]
        fn knobs_stay_in_bounds(
            readings in proptest::collection::vec(40.0f64..260.0, 1..120),
        ) {
            let machine = MachineSpec::xeon_e5_2650();
            let mut server = SimServer::new(machine.clone(), Watts(154.0));
            server
                .install(
                    TenantRole::Secondary,
                    TenantAllocation::new(
                        CoreSet::range(2, 8),
                        WayMask::range(4, 12),
                        Frequency(2.2),
                    ),
                )
                .unwrap();
            let capper = PowerCapper::default();
            for r in readings {
                capper.step(&mut server, Watts(r)).unwrap();
                let sec = server.allocation(TenantRole::Secondary).unwrap();
                prop_assert!(sec.frequency >= machine.freq_min() - Frequency(1e-9));
                prop_assert!(sec.frequency <= machine.freq_max() + Frequency(1e-9));
                prop_assert!(sec.cpu_quota >= capper.quota_floor - 1e-9);
                prop_assert!(sec.cpu_quota <= 1.0 + 1e-9);
                prop_assert!(sec.validate(&machine).is_ok());
            }
        }
    }
}

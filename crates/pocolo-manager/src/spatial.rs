//! Spatial sharing of the spare box among several best-effort apps — the
//! paper's §V-G open problem ("spatial sharing would entail further
//! partitioning of direct resources and power, which we intend to explore
//! as future work").
//!
//! The natural extension of the economics framework: partition the spare
//! cores/ways among k secondaries **in proportion to their indirect
//! preference vectors**, so each app receives more of the resource it
//! converts to performance-per-watt best, and split the power headroom by
//! weight. A planning helper compares the resulting total against temporal
//! (time-sliced) sharing.

use pocolo_core::error::CoreError;
use pocolo_core::preference::PreferenceVector;
use pocolo_core::resources::{ResourceDescriptor, ResourceSpace};
use pocolo_core::units::{Frequency, Watts};
use pocolo_core::utility::IndirectUtility;
use pocolo_simserver::{CoreSet, MachineSpec, TenantAllocation, WayMask};

/// Splits `total` whole units among claimants proportional to `weights`,
/// guaranteeing each claimant at least one unit when `total >= weights.len()`
/// (largest-remainder apportionment).
fn apportion(total: u32, weights: &[f64]) -> Vec<u32> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let sum: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    let quota: Vec<f64> = if sum > 0.0 {
        weights
            .iter()
            .map(|w| total as f64 * w.max(0.0) / sum)
            .collect()
    } else {
        vec![total as f64 / n as f64; n]
    };
    let mut floor: Vec<u32> = quota.iter().map(|q| q.floor() as u32).collect();
    // Guarantee one unit each where possible.
    if total as usize >= n {
        for f in floor.iter_mut() {
            if *f == 0 {
                *f = 1;
            }
        }
    }
    // Largest remainder on whatever is left (or trim overshoot from the
    // largest holders).
    let mut assigned: u32 = floor.iter().sum();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ra = quota[a] - quota[a].floor();
        let rb = quota[b] - quota[b].floor();
        rb.partial_cmp(&ra).expect("finite remainders")
    });
    let mut idx = 0;
    while assigned < total {
        floor[order[idx % n]] += 1;
        assigned += 1;
        idx += 1;
    }
    let mut order_desc: Vec<usize> = (0..n).collect();
    order_desc.sort_by(|&a, &b| floor[b].cmp(&floor[a]));
    let mut i = 0;
    while assigned > total {
        let j = order_desc[i % n];
        if (floor[j] > 1 || (total as usize) < n) && floor[j] > 0 {
            floor[j] -= 1;
            assigned -= 1;
        }
        i += 1;
    }
    floor
}

/// Partitions the spare box (everything the primary does not hold) among
/// `k` secondaries in proportion to their preference vectors: app `i`'s
/// share of spare cores follows its cores-preference weight, and likewise
/// for ways. Returns one disjoint [`TenantAllocation`] per app, laid out
/// contiguously after the primary's block, or an empty vector when there is
/// no spare capacity to split.
///
/// # Panics
///
/// Panics if any preference vector is not two-dimensional.
pub fn split_spare(
    machine: &MachineSpec,
    lc_cores: u32,
    lc_ways: u32,
    frequency: Frequency,
    preferences: &[PreferenceVector],
) -> Vec<TenantAllocation> {
    let k = preferences.len();
    let spare_c = machine.cores().saturating_sub(lc_cores);
    let spare_w = machine.llc_ways().saturating_sub(lc_ways);
    if k == 0 || spare_c < k as u32 || spare_w < k as u32 {
        return Vec::new(); // not enough for every app to hold >= 1 of each
    }
    for p in preferences {
        assert_eq!(p.len(), 2, "two-resource preference vectors expected");
    }
    let core_weights: Vec<f64> = preferences.iter().map(|p| p.weight(0)).collect();
    let way_weights: Vec<f64> = preferences.iter().map(|p| p.weight(1)).collect();
    let cores = apportion(spare_c, &core_weights);
    let ways = apportion(spare_w, &way_weights);

    let mut out = Vec::with_capacity(k);
    let mut c_start = lc_cores;
    let mut w_start = lc_ways;
    for i in 0..k {
        out.push(TenantAllocation::new(
            CoreSet::range(c_start, cores[i]),
            WayMask::range(w_start, ways[i]),
            machine.clamp_frequency(frequency),
        ));
        c_start += cores[i];
        w_start += ways[i];
    }
    out
}

/// Splits the power headroom among the secondaries proportional to
/// `weights` (e.g. priorities, or uniform).
pub fn split_headroom(headroom: Watts, weights: &[f64]) -> Vec<Watts> {
    let sum: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    if weights.is_empty() {
        return Vec::new();
    }
    if sum <= 0.0 {
        return vec![headroom / weights.len() as f64; weights.len()];
    }
    weights
        .iter()
        .map(|w| headroom * (w.max(0.0) / sum))
        .collect()
}

/// Expected total throughput when `apps` **time-share** the spare box
/// (each runs alone for an equal slice with the whole box and headroom).
///
/// # Errors
///
/// Propagates model-evaluation errors.
pub fn temporal_sharing_total(
    apps: &[IndirectUtility],
    spare_c: u32,
    spare_w: u32,
    headroom: Watts,
) -> Result<f64, CoreError> {
    let mut total = 0.0;
    for app in apps {
        total += best_value_in_box(app, spare_c, spare_w, headroom)?;
    }
    Ok(total / apps.len().max(1) as f64)
}

/// Expected total throughput when `apps` **spatially share**: the box is
/// split by preference, the headroom by equal weight, and all run
/// concurrently.
///
/// # Errors
///
/// Propagates model-evaluation errors.
pub fn spatial_sharing_total(
    machine: &MachineSpec,
    apps: &[IndirectUtility],
    lc_cores: u32,
    lc_ways: u32,
    headroom: Watts,
) -> Result<f64, CoreError> {
    let prefs: Vec<PreferenceVector> = apps.iter().map(|a| a.preference_vector()).collect();
    let allocations = split_spare(machine, lc_cores, lc_ways, machine.freq_max(), &prefs);
    if allocations.is_empty() {
        return Ok(0.0);
    }
    let budgets = split_headroom(headroom, &vec![1.0; apps.len()]);
    let mut total = 0.0;
    for ((app, alloc), budget) in apps.iter().zip(&allocations).zip(budgets) {
        total += best_value_in_box(app, alloc.cores.count(), alloc.ways.count(), budget)?;
    }
    Ok(total)
}

/// Best achievable performance inside a (cores, ways) box under a budget.
fn best_value_in_box(
    app: &IndirectUtility,
    cores: u32,
    ways: u32,
    budget: Watts,
) -> Result<f64, CoreError> {
    if cores == 0 || ways == 0 {
        return Ok(0.0);
    }
    let sub = ResourceSpace::builder()
        .resource(ResourceDescriptor::integral("cores", 1.0, cores as f64))
        .resource(ResourceDescriptor::integral("llc_ways", 1.0, ways as f64))
        .build()?;
    let boxed = IndirectUtility::new(
        sub,
        app.performance_model().clone(),
        app.power_model().clone(),
    )?;
    match boxed.demand_solution(budget) {
        Ok(sol) => Ok(sol.utility),
        Err(CoreError::InfeasibleBudget { .. }) => Ok(0.0),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_core::testing::xeon_space;
    use pocolo_core::utility::{CobbDouglas, PowerModel};

    fn machine() -> MachineSpec {
        MachineSpec::xeon_e5_2650()
    }

    fn utility(ac: f64, aw: f64, pc: f64, pw: f64) -> IndirectUtility {
        IndirectUtility::new(
            xeon_space(),
            CobbDouglas::new(0.2, vec![ac, aw]).unwrap(),
            PowerModel::new(Watts(6.0), vec![pc, pw]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn apportion_respects_totals_and_minimums() {
        assert_eq!(apportion(10, &[0.8, 0.2]), vec![8, 2]);
        assert_eq!(apportion(10, &[1.0, 0.0]), vec![9, 1]); // min 1 each
        assert_eq!(apportion(3, &[0.5, 0.5, 0.0]), vec![1, 1, 1]);
        let parts = apportion(20, &[0.45, 0.35, 0.20]);
        assert_eq!(parts.iter().sum::<u32>(), 20);
        assert!(parts.iter().all(|&p| p >= 1));
        assert_eq!(apportion(7, &[]), Vec::<u32>::new());
    }

    #[test]
    fn apportion_uniform_when_weights_zero() {
        assert_eq!(apportion(6, &[0.0, 0.0, 0.0]), vec![2, 2, 2]);
    }

    #[test]
    fn split_is_disjoint_and_exhaustive() {
        let m = machine();
        let prefs = vec![
            PreferenceVector::from_raw(vec![0.8, 0.2]),
            PreferenceVector::from_raw(vec![0.1, 0.9]),
        ];
        let parts = split_spare(&m, 4, 8, Frequency(2.2), &prefs);
        assert_eq!(parts.len(), 2);
        assert!(parts[0].is_disjoint_from(&parts[1]));
        assert_eq!(parts[0].cores.count() + parts[1].cores.count(), 8);
        assert_eq!(parts[0].ways.count() + parts[1].ways.count(), 12);
        for p in &parts {
            assert!(p.validate(&m).is_ok());
        }
        // Preference-proportional: the core-hungry app got most cores; the
        // ways-hungry app most ways.
        assert!(parts[0].cores.count() > parts[1].cores.count());
        assert!(parts[1].ways.count() > parts[0].ways.count());
    }

    #[test]
    fn no_split_when_spare_too_small() {
        let m = machine();
        let prefs = vec![
            PreferenceVector::from_raw(vec![0.5, 0.5]),
            PreferenceVector::from_raw(vec![0.5, 0.5]),
            PreferenceVector::from_raw(vec![0.5, 0.5]),
        ];
        // Only 2 spare cores for 3 apps.
        assert!(split_spare(&m, 10, 8, Frequency(2.2), &prefs).is_empty());
        assert!(split_spare(&m, 1, 1, Frequency(2.2), &[]).is_empty());
    }

    #[test]
    fn headroom_split_proportional() {
        let parts = split_headroom(Watts(60.0), &[2.0, 1.0]);
        assert_eq!(parts, vec![Watts(40.0), Watts(20.0)]);
        let uniform = split_headroom(Watts(60.0), &[0.0, 0.0]);
        assert_eq!(uniform, vec![Watts(30.0), Watts(30.0)]);
        assert!(split_headroom(Watts(60.0), &[]).is_empty());
    }

    #[test]
    fn spatial_beats_temporal_for_complementary_apps() {
        // Core-hungry + ways-hungry: the split lets each take what it
        // needs full-time; time-slicing wastes half of each one's
        // preferred resource.
        let m = machine();
        let core_hungry = utility(0.7, 0.05, 6.0, 1.5);
        let ways_hungry = utility(0.05, 0.7, 6.0, 1.5);
        let apps = vec![core_hungry, ways_hungry];
        let spatial = spatial_sharing_total(&m, &apps, 2, 4, Watts(80.0)).unwrap();
        let temporal = temporal_sharing_total(&apps, 10, 16, Watts(80.0)).unwrap();
        assert!(
            spatial > temporal,
            "spatial {spatial} should beat temporal {temporal} for complements"
        );
    }

    #[test]
    fn complementary_pairs_gain_more_from_spatial_sharing() {
        let m = machine();
        let core_hungry = utility(0.7, 0.05, 6.0, 1.5);
        let ways_hungry = utility(0.05, 0.7, 6.0, 1.5);
        let core_hungry2 = utility(0.65, 0.08, 6.0, 1.5);
        let gain = |apps: &[IndirectUtility]| {
            let s = spatial_sharing_total(&m, apps, 2, 4, Watts(80.0)).unwrap();
            let t = temporal_sharing_total(apps, 10, 16, Watts(80.0)).unwrap();
            s / t
        };
        let complementary = gain(&[core_hungry.clone(), ways_hungry]);
        let similar = gain(&[core_hungry, core_hungry2]);
        assert!(
            complementary > similar,
            "complementary gain {complementary} should exceed similar-pair gain {similar}"
        );
    }

    #[test]
    fn three_way_split_works() {
        let m = machine();
        let prefs = vec![
            PreferenceVector::from_raw(vec![0.6, 0.4]),
            PreferenceVector::from_raw(vec![0.3, 0.7]),
            PreferenceVector::from_raw(vec![0.5, 0.5]),
        ];
        let parts = split_spare(&m, 3, 5, Frequency(2.2), &prefs);
        assert_eq!(parts.len(), 3);
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(parts[i].is_disjoint_from(&parts[j]));
            }
        }
        let total_c: u32 = parts.iter().map(|p| p.cores.count()).sum();
        let total_w: u32 = parts.iter().map(|p| p.ways.count()).sum();
        assert_eq!(total_c, 9);
        assert_eq!(total_w, 15);
    }
}

//! Partitioning a machine between the primary and secondary tenant.

use pocolo_core::units::Frequency;
use pocolo_simserver::{CoreSet, MachineSpec, TenantAllocation, WayMask};

/// Splits the machine: the primary receives the first `lc_cores` cores and
/// `lc_ways` LLC ways; the secondary receives everything left, or `None`
/// if fewer than one core or one way remains.
///
/// The counts are clamped to `[1, capacity]` for the primary (the
/// latency-critical application always keeps at least one core and one
/// way, and never more than the machine has).
///
/// ```
/// use pocolo_manager::partition;
/// use pocolo_simserver::MachineSpec;
/// use pocolo_core::units::Frequency;
///
/// let m = MachineSpec::xeon_e5_2650();
/// let (lc, be) = partition(&m, 4, 8, Frequency(2.2), Frequency(2.2));
/// assert_eq!(lc.cores.count(), 4);
/// let be = be.unwrap();
/// assert_eq!(be.cores.count(), 8);
/// assert_eq!(be.ways.count(), 12);
/// assert!(lc.is_disjoint_from(&be));
/// ```
pub fn partition(
    machine: &MachineSpec,
    lc_cores: u32,
    lc_ways: u32,
    lc_freq: Frequency,
    be_freq: Frequency,
) -> (TenantAllocation, Option<TenantAllocation>) {
    let lc_cores = lc_cores.clamp(1, machine.cores());
    let lc_ways = lc_ways.clamp(1, machine.llc_ways());
    let primary = TenantAllocation::new(
        CoreSet::range(0, lc_cores),
        WayMask::range(0, lc_ways),
        machine.clamp_frequency(lc_freq),
    );
    let spare_cores = machine.cores() - lc_cores;
    let spare_ways = machine.llc_ways() - lc_ways;
    let secondary = if spare_cores >= 1 && spare_ways >= 1 {
        Some(TenantAllocation::new(
            CoreSet::range(lc_cores, spare_cores),
            WayMask::range(lc_ways, spare_ways),
            machine.clamp_frequency(be_freq),
        ))
    } else {
        None
    };
    (primary, secondary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineSpec {
        MachineSpec::xeon_e5_2650()
    }

    #[test]
    fn split_is_disjoint_and_exhaustive() {
        let m = machine();
        for c in 1..=11 {
            for w in 1..=19 {
                let (lc, be) = partition(&m, c, w, Frequency(2.2), Frequency(2.2));
                let be = be.expect("spare exists");
                assert!(lc.is_disjoint_from(&be));
                assert_eq!(lc.cores.count() + be.cores.count(), 12);
                assert_eq!(lc.ways.count() + be.ways.count(), 20);
            }
        }
    }

    #[test]
    fn full_primary_leaves_no_secondary() {
        let m = machine();
        let (lc, be) = partition(&m, 12, 10, Frequency(2.2), Frequency(2.2));
        assert_eq!(lc.cores.count(), 12);
        assert!(be.is_none(), "no spare cores -> no secondary");
        let (_, be) = partition(&m, 10, 20, Frequency(2.2), Frequency(2.2));
        assert!(be.is_none(), "no spare ways -> no secondary");
    }

    #[test]
    fn counts_are_clamped() {
        let m = machine();
        let (lc, _) = partition(&m, 0, 0, Frequency(2.2), Frequency(2.2));
        assert_eq!(lc.cores.count(), 1);
        assert_eq!(lc.ways.count(), 1);
        let (lc, be) = partition(&m, 99, 99, Frequency(2.2), Frequency(2.2));
        assert_eq!(lc.cores.count(), 12);
        assert_eq!(lc.ways.count(), 20);
        assert!(be.is_none());
    }

    #[test]
    fn frequencies_are_clamped_per_tenant() {
        let m = machine();
        let (lc, be) = partition(&m, 4, 8, Frequency(9.0), Frequency(0.3));
        assert_eq!(lc.frequency, Frequency(2.2));
        assert_eq!(be.unwrap().frequency, Frequency(1.2));
    }

    #[test]
    fn allocations_validate_against_machine() {
        let m = machine();
        let (lc, be) = partition(&m, 6, 10, Frequency(2.2), Frequency(1.8));
        assert!(lc.validate(&m).is_ok());
        assert!(be.unwrap().validate(&m).is_ok());
    }
}

//! The explicit control-mode state machine behind the brownout power
//! governor (§6.6/§6.7 of DESIGN.md).
//!
//! The governor's behaviour is two independent *sticky latches* plus one
//! per-step flag:
//!
//! - **armed** — latched when the meter reads above the budget target
//!   during a brownout: the manager then sizes the primary inside the
//!   shrunk envelope instead of growing it into the RAPL throttle.
//!   Cleared only when the brownout lifts.
//! - **escalated** — latched when the governed primary is caught
//!   violating its SLO: the budget target escalates from the comfort
//!   fraction to just under the cap. Sticky until the brownout lifts, so
//!   the target doesn't oscillate around the violation boundary.
//! - **ducked** — per-step: while the RAPL ceiling is depressed the
//!   target is pulled below the capper's release band so the clock
//!   recovers first — capacity at full clock beats watts at a floored
//!   one.
//!
//! [`ControlMode`] is the externally-visible projection of those latches
//! (plus the frozen-telemetry fallback), reported on every
//! [`crate::control::DecisionRecord`]:
//!
//! ```text
//!              telemetry frozen
//!   Normal ────────────────────────▶ Degraded
//!     │ ▲                               │ thaw
//!     │ └───────── disarm ◀─────────────┘
//!     │       (brownout lifts)
//!     │ arm (measured > cap × frac)
//!     ▼
//!   Governed ──── escalate (slack < 0) ───▶ Distress
//!     ▲                                       │
//!     └────────────── disarm ◀────────────────┘
//! ```

use pocolo_core::units::Watts;

/// The externally-visible control regime of one server's manager loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMode {
    /// Healthy analytic control: track load, solve the demand function.
    Normal,
    /// Brownout with the power governor armed: the primary is sized to a
    /// meter-calibrated watt budget inside the shrunk envelope.
    Governed,
    /// The governed primary was caught violating its SLO: the budget
    /// target escalates to just under the cap (sticky until the brownout
    /// lifts).
    Distress,
    /// Telemetry is frozen: the analytic solve that consumes it can't be
    /// trusted, so the manager falls back to blind incremental growth.
    Degraded,
}

impl ControlMode {
    /// Lower-case display name (used in decision traces).
    pub fn name(&self) -> &'static str {
        match self {
            ControlMode::Normal => "normal",
            ControlMode::Governed => "governed",
            ControlMode::Distress => "distress",
            ControlMode::Degraded => "degraded",
        }
    }
}

/// Tuning of the brownout power governor's budget targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// Whole-server budget fraction of the effective cap while a BE
    /// co-runner is placed. Must sit below the capper's release band, or
    /// the emergency throttle never disarms while the governor holds the
    /// server at its budget.
    pub comfort_frac: f64,
    /// Budget fraction once the primary runs alone. Same release-band
    /// constraint.
    pub comfort_frac_solo: f64,
    /// Budget fraction once the primary is caught violating its SLO:
    /// spend right up to the cap. Sits *above* the release band by design
    /// — a violating primary trades the RAPL safety margin for capacity.
    pub distress_frac: f64,
    /// The capper's un-throttle band (fraction of the cap).
    pub release: f64,
    /// How far below the release band the target ducks while the RAPL
    /// ceiling is depressed.
    pub duck_margin: f64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            comfort_frac: 0.88,
            comfort_frac_solo: 0.92,
            distress_frac: 0.98,
            release: 0.94,
            duck_margin: 0.02,
        }
    }
}

/// The governor's latch state, with every transition an explicit,
/// unit-testable edge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModeMachine {
    armed: bool,
    escalated: bool,
    ducked: bool,
}

impl ModeMachine {
    /// A machine with every latch clear.
    pub fn new() -> Self {
        ModeMachine::default()
    }

    /// True once the power governor has been armed this brownout.
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// True once distress escalation has latched this brownout.
    pub fn escalated(&self) -> bool {
        self.escalated
    }

    /// True if the last [`ModeMachine::brownout_step`] pulled the target
    /// under the release band because the RAPL ceiling was depressed.
    pub fn ducked(&self) -> bool {
        self.ducked
    }

    /// One brownout control step: latch escalation on an observed SLO
    /// violation, pick the budget fraction, duck it under the release
    /// band while throttled, and arm the governor on a measured
    /// overdraw. Returns the whole-server target fraction of the
    /// effective cap.
    pub fn brownout_step(
        &mut self,
        cfg: &GovernorConfig,
        be_present: bool,
        observed_slack: Option<f64>,
        throttled: bool,
        measured: Option<Watts>,
        effective_cap: Watts,
    ) -> f64 {
        // Escalate: a violating primary trades comfort margin for
        // capacity, sticky until the brownout lifts.
        if observed_slack.is_some_and(|s| s < 0.0) {
            self.escalated = true;
        }
        let mut frac = if self.escalated {
            cfg.distress_frac
        } else if be_present {
            cfg.comfort_frac
        } else {
            cfg.comfort_frac_solo
        };
        // Duck: an escalated target above the release band would pin a
        // dropped RAPL ceiling down forever. While throttled, stay below
        // the band so the clock recovers first.
        let duck_target = cfg.release - cfg.duck_margin;
        self.ducked = throttled && frac > duck_target;
        if throttled {
            frac = frac.min(duck_target);
        }
        // Arm: a measured overdraw means the analytic plan is growing the
        // primary into the RAPL throttle — switch to budgeted sizing.
        if measured.is_some_and(|m| m > effective_cap * frac) {
            self.armed = true;
        }
        frac
    }

    /// The brownout lifted: both latches clear.
    pub fn disarm(&mut self) {
        self.armed = false;
        self.escalated = false;
        self.ducked = false;
    }

    /// The mode these latches project to, given the fault context.
    pub fn mode(&self, brownout: bool, telemetry_frozen: bool) -> ControlMode {
        if telemetry_frozen {
            ControlMode::Degraded
        } else if brownout && self.escalated {
            ControlMode::Distress
        } else if brownout && self.armed {
            ControlMode::Governed
        } else {
            ControlMode::Normal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GovernorConfig {
        GovernorConfig::default()
    }

    #[test]
    fn arm_edge_latches_on_measured_overdraw() {
        let mut m = ModeMachine::new();
        let cap = Watts(100.0);
        // Below the comfort target: stays disarmed.
        let frac = m.brownout_step(&cfg(), true, Some(0.3), false, Some(Watts(80.0)), cap);
        assert_eq!(frac, 0.88);
        assert!(!m.armed());
        assert_eq!(m.mode(true, false), ControlMode::Normal);
        // Over the target: arms, and stays armed on a later calm reading.
        m.brownout_step(&cfg(), true, Some(0.3), false, Some(Watts(90.0)), cap);
        assert!(m.armed());
        assert_eq!(m.mode(true, false), ControlMode::Governed);
        m.brownout_step(&cfg(), true, Some(0.3), false, Some(Watts(50.0)), cap);
        assert!(m.armed(), "armed is a latch, not a level");
    }

    #[test]
    fn solo_primary_gets_the_solo_target() {
        let mut m = ModeMachine::new();
        let frac = m.brownout_step(&cfg(), false, None, false, None, Watts(100.0));
        assert_eq!(frac, 0.92);
    }

    #[test]
    fn escalate_edge_latches_on_slo_violation() {
        let mut m = ModeMachine::new();
        let cap = Watts(100.0);
        let frac = m.brownout_step(&cfg(), true, Some(-0.1), false, Some(Watts(95.0)), cap);
        assert!(m.escalated());
        assert_eq!(frac, 0.98, "distress spends right up to the cap");
        assert_eq!(m.mode(true, false), ControlMode::Distress);
        // Sticky: recovered slack does not de-escalate.
        let frac = m.brownout_step(&cfg(), true, Some(0.5), false, Some(Watts(50.0)), cap);
        assert!(m.escalated());
        assert_eq!(frac, 0.98);
    }

    #[test]
    fn duck_edge_pulls_under_the_release_band_while_throttled() {
        let mut m = ModeMachine::new();
        let cap = Watts(100.0);
        m.brownout_step(&cfg(), true, Some(-0.1), false, Some(Watts(99.0)), cap);
        assert!(m.escalated() && m.armed());
        // RAPL ceiling depressed: the 0.98 distress target ducks to 0.92.
        let frac = m.brownout_step(&cfg(), true, Some(-0.1), true, Some(Watts(99.0)), cap);
        assert!((frac - 0.92).abs() < 1e-12);
        assert!(m.ducked());
        // Throttle released: the full distress target returns.
        let frac = m.brownout_step(&cfg(), true, Some(-0.1), false, Some(Watts(99.0)), cap);
        assert_eq!(frac, 0.98);
        assert!(!m.ducked());
    }

    #[test]
    fn duck_is_a_no_op_below_the_band() {
        let mut m = ModeMachine::new();
        // Comfort 0.88 already sits under release − margin = 0.92.
        let frac = m.brownout_step(&cfg(), true, Some(0.3), true, None, Watts(100.0));
        assert_eq!(frac, 0.88);
        assert!(!m.ducked());
    }

    #[test]
    fn disarm_edge_clears_both_latches() {
        let mut m = ModeMachine::new();
        let cap = Watts(100.0);
        m.brownout_step(&cfg(), true, Some(-0.1), false, Some(Watts(99.0)), cap);
        assert!(m.armed() && m.escalated());
        m.disarm();
        assert!(!m.armed() && !m.escalated() && !m.ducked());
        assert_eq!(m.mode(true, false), ControlMode::Normal);
    }

    #[test]
    fn frozen_telemetry_projects_degraded_over_everything() {
        let mut m = ModeMachine::new();
        m.brownout_step(
            &cfg(),
            true,
            Some(-0.1),
            false,
            Some(Watts(99.0)),
            Watts(100.0),
        );
        assert_eq!(m.mode(true, true), ControlMode::Degraded);
        assert_eq!(m.mode(false, true), ControlMode::Degraded);
    }

    #[test]
    fn mode_names_are_stable() {
        assert_eq!(ControlMode::Normal.name(), "normal");
        assert_eq!(ControlMode::Governed.name(), "governed");
        assert_eq!(ControlMode::Distress.name(), "distress");
        assert_eq!(ControlMode::Degraded.name(), "degraded");
    }
}

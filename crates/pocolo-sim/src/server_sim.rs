//! Simulation of a single colocated server: ground truth + control loops.

use pocolo_core::units::{Frequency, Watts};
use pocolo_core::utility::IndirectUtility;
use pocolo_manager::{CapAction, LcPolicy, ManagerConfig, PowerCapper, ServerManager};
use pocolo_simserver::power::{PowerDrawModel, PowerMeter};
use pocolo_simserver::{SimServer, TenantRole};
use pocolo_workloads::{BeModel, LcModel, LoadTrace};

use crate::metrics::ServerMetrics;

/// One server under simulation: the ground-truth workload models, the
/// simulated hardware, and the two control loops.
#[derive(Debug)]
pub struct ServerSim {
    lc_truth: LcModel,
    be_truth: Option<BeModel>,
    server: SimServer,
    manager: ServerManager,
    capper: PowerCapper,
    meter: PowerMeter,
    power_model: PowerDrawModel,
    trace: LoadTrace,
    metrics: ServerMetrics,
    last_slack: Option<f64>,
    current_load_rps: f64,
    /// Fitted BE utility for proactive (model-guided) secondary planning.
    be_fitted: Option<IndirectUtility>,
    /// Frequency ceiling planned for the secondary this epoch.
    freq_ceiling: Option<Frequency>,
    /// Remaining migration pause: the BE app produces no throughput while
    /// its state moves in (§I: "dynamically moving applications across
    /// servers incurs high overheads").
    pause_remaining_s: f64,
}

impl ServerSim {
    /// Assembles a server simulation.
    ///
    /// `lc_fitted` is the *fitted* model the manager plans with (fit it from
    /// profiles of `lc_truth`); `be_truth` is the co-runner's ground truth
    /// (or `None` for a solo primary).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        lc_truth: LcModel,
        lc_fitted: IndirectUtility,
        be_truth: Option<BeModel>,
        policy: LcPolicy,
        trace: LoadTrace,
        power_cap: Watts,
        meter_noise: f64,
        seed: u64,
    ) -> Self {
        let machine = lc_truth.machine().clone();
        let server = SimServer::new(machine.clone(), power_cap);
        let manager = ServerManager::new(lc_fitted, policy, ManagerConfig::default());
        ServerSim {
            power_model: PowerDrawModel::new(machine),
            lc_truth,
            be_truth,
            server,
            manager,
            capper: PowerCapper::default(),
            meter: PowerMeter::new(meter_noise, seed),
            trace,
            metrics: ServerMetrics::new(power_cap),
            last_slack: None,
            current_load_rps: 0.0,
            be_fitted: None,
            freq_ceiling: None,
            pause_remaining_s: 0.0,
        }
    }

    /// Swaps the best-effort co-runner (a cluster-level migration). The new
    /// app pays `pause_s` seconds of zero throughput while it warms up;
    /// the secondary slot's DVFS/quota state resets.
    pub fn replace_be(
        &mut self,
        be_truth: Option<BeModel>,
        be_fitted: Option<IndirectUtility>,
        pause_s: f64,
    ) {
        self.be_truth = be_truth;
        self.be_fitted = be_fitted;
        self.pause_remaining_s = pause_s.max(0.0);
        self.server.evict(TenantRole::Secondary);
    }

    /// The name of the current co-runner's remaining migration pause.
    pub fn pause_remaining_s(&self) -> f64 {
        self.pause_remaining_s
    }

    /// Enables proactive, model-guided management of the secondary (the
    /// power-optimized policies): every manager epoch, the secondary's DVFS
    /// frequency is *planned* from the fitted models so its predicted draw
    /// fits the predicted power headroom — instead of running hot and being
    /// reactively throttled. The reactive capper stays as a backstop.
    #[must_use]
    pub fn with_proactive_be(mut self, be_fitted: IndirectUtility) -> Self {
        self.be_fitted = Some(be_fitted);
        self
    }

    /// The ground-truth LC model.
    pub fn lc_truth(&self) -> &LcModel {
        &self.lc_truth
    }

    /// The co-runner's ground truth, if placed.
    pub fn be_truth(&self) -> Option<&BeModel> {
        self.be_truth.as_ref()
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The underlying simulated server (for inspection in tests/benches).
    pub fn server(&self) -> &SimServer {
        &self.server
    }

    /// The manager tick (1 s in the paper): read the load trace, feed back
    /// the observed slack, re-size the primary.
    pub fn on_manager_tick(&mut self, now_s: f64) {
        self.current_load_rps = self.trace.load_at(now_s) * self.lc_truth.peak_load_rps();
        // Managers are resilient: a failed step leaves the previous
        // allocation in place rather than killing the simulation.
        let _ = self
            .manager
            .control_step(&mut self.server, self.current_load_rps, self.last_slack);
        self.plan_secondary_frequency();
    }

    /// Model-guided secondary planning (see [`ServerSim::with_proactive_be`]).
    fn plan_secondary_frequency(&mut self) {
        self.freq_ceiling = None;
        let Some(be_fit) = &self.be_fitted else {
            return;
        };
        let Some(sec) = self.server.allocation(TenantRole::Secondary).copied() else {
            return;
        };
        let Some((c, w)) = self.manager.last_counts() else {
            return;
        };
        let lc_pred = self
            .manager
            .utility()
            .power_model()
            .power_of_amounts(&[c as f64, w as f64])
            .unwrap_or(Watts::ZERO);
        // Plan against a small guard band under the cap — the "reduces the
        // need to throttle by design" behaviour of §V-D.
        let headroom = (self.server.power_cap() - lc_pred) * 0.88;
        let amounts = [sec.cores.count() as f64, sec.ways.count() as f64];
        let p_static = be_fit.power_model().p_static();
        let dynamic_at_fmax = match be_fit.power_model().power_of_amounts(&amounts) {
            Ok(p) => p - p_static,
            Err(_) => return,
        };
        // DVFS physics: dynamic power scales ~(f/f_max)^2.4.
        let machine = self.lc_truth.machine();
        let fmax = machine.freq_max();
        let mut planned = machine.freq_min();
        let mut f = fmax.0;
        while f >= machine.freq_min().0 - 1e-9 {
            let frac = (f / fmax.0).powf(2.4);
            if p_static + dynamic_at_fmax * frac <= headroom {
                planned = Frequency(f);
                break;
            }
            f -= 0.1;
        }
        // The plan is a *ceiling*: lower the secondary if it is above, but
        // never yank it up past what the reactive capper has settled on —
        // the capper's recovery path raises it as headroom allows.
        if sec.frequency > planned {
            let _ = self.server.set_frequency(TenantRole::Secondary, planned);
        }
        self.freq_ceiling = Some(planned);
    }

    /// Instantaneous *true* server power from the ground-truth draws.
    pub fn true_power(&self) -> Watts {
        let mut draws = Vec::with_capacity(2);
        if let Some(alloc) = self.server.allocation(TenantRole::Primary) {
            draws.push(
                self.lc_truth
                    .power_draw(self.current_load_rps, alloc, &self.power_model),
            );
        }
        if let (Some(be), Some(alloc)) = (
            self.be_truth.as_ref(),
            self.server.allocation(TenantRole::Secondary),
        ) {
            draws.push(be.power_draw(alloc, &self.power_model));
        }
        self.power_model.server_power(draws)
    }

    /// Instantaneous normalized BE throughput (zero while a migration
    /// pause is in effect).
    pub fn be_throughput(&self) -> f64 {
        if self.pause_remaining_s > 0.0 {
            return 0.0;
        }
        match (
            self.be_truth.as_ref(),
            self.server.allocation(TenantRole::Secondary),
        ) {
            (Some(be), Some(alloc)) => be.throughput(alloc),
            _ => 0.0,
        }
    }

    /// Observed p99 latency slack of the primary right now.
    pub fn lc_slack(&self) -> f64 {
        match self.server.allocation(TenantRole::Primary) {
            Some(alloc) => self.lc_truth.latency_slack(self.current_load_rps, alloc),
            None => 1.0,
        }
    }

    /// The capper tick (100 ms in the paper): sample the meter, throttle or
    /// recover the secondary, and record metrics over `dt` seconds.
    pub fn on_capper_tick(&mut self, dt: f64) {
        self.pause_remaining_s = (self.pause_remaining_s - dt).max(0.0);
        let true_power = self.true_power();
        let measured = self.meter.sample(true_power);
        let action = self
            .capper
            .step(&mut self.server, measured)
            .unwrap_or(CapAction::None);
        // Under proactive planning the capper may not raise the secondary
        // past the planned frequency ceiling.
        if let (Some(ceiling), Some(sec)) = (
            self.freq_ceiling,
            self.server.allocation(TenantRole::Secondary).copied(),
        ) {
            if sec.frequency > ceiling {
                let _ = self.server.set_frequency(TenantRole::Secondary, ceiling);
            }
        }
        let throttled = matches!(
            action,
            CapAction::LoweredFrequency | CapAction::LoweredQuota | CapAction::Saturated
        );
        let slack = self.lc_slack();
        self.last_slack = Some(slack);
        // Metrics record the *pre-action* power: that is what the server
        // actually drew over the elapsed interval (including any overshoot
        // the capper is only now correcting).
        self.metrics
            .record(dt, true_power, self.be_throughput(), slack, throttled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_core::fit::{fit_indirect_utility, FitOptions};
    use pocolo_manager::LcPolicy;
    use pocolo_simserver::MachineSpec;
    use pocolo_workloads::profiler::{profile_lc, ProfilerConfig};
    use pocolo_workloads::{BeApp, LcApp};

    fn make_sim(lc: LcApp, be: Option<BeApp>, policy: LcPolicy, trace: LoadTrace) -> ServerSim {
        let machine = MachineSpec::xeon_e5_2650();
        let truth = LcModel::for_app(lc, machine.clone());
        let power = PowerDrawModel::new(machine.clone());
        let space = machine.resource_space();
        let samples = profile_lc(&truth, &power, &space, &ProfilerConfig::default());
        let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default())
            .unwrap()
            .utility;
        let cap = truth.provisioned_power();
        let be_truth = be.map(|b| BeModel::for_app(b, machine.clone()));
        ServerSim::new(truth, fitted, be_truth, policy, trace, cap, 0.01, 42)
    }

    fn run(sim: &mut ServerSim, seconds: usize) {
        for s in 0..seconds {
            sim.on_manager_tick(s as f64);
            for _ in 0..10 {
                sim.on_capper_tick(0.1);
            }
        }
    }

    #[test]
    fn steady_load_keeps_slo_and_cap() {
        let mut sim = make_sim(
            LcApp::Xapian,
            Some(BeApp::Graph),
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(0.5),
        );
        run(&mut sim, 30);
        let m = sim.metrics();
        assert!(
            m.lc_violation_frac < 0.2,
            "SLO violations {} should be transient",
            m.lc_violation_frac
        );
        // After settling, power stays at/below cap (small overshoot spikes
        // between capper reactions are expected).
        assert!(
            sim.true_power() <= m.power_cap * 1.02,
            "settled power {} vs cap {}",
            sim.true_power(),
            m.power_cap
        );
        assert!(m.be_throughput_avg > 0.05, "BE should make progress");
    }

    #[test]
    fn load_sweep_varies_be_throughput() {
        let mut sim = make_sim(
            LcApp::Xapian,
            Some(BeApp::Rnn),
            LcPolicy::PowerOptimized,
            LoadTrace::paper_sweep(10.0),
        );
        // First level (10 % load).
        run(&mut sim, 10);
        let low_load_thpt = sim.be_throughput();
        // Run into the high-load levels.
        run(&mut sim, 70);
        let high_load_thpt = sim.be_throughput();
        assert!(
            low_load_thpt > high_load_thpt,
            "BE throughput at 10% LC load ({low_load_thpt}) should exceed at 80% ({high_load_thpt})"
        );
    }

    #[test]
    fn solo_primary_has_zero_be_throughput() {
        let mut sim = make_sim(
            LcApp::Sphinx,
            None,
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(0.3),
        );
        run(&mut sim, 10);
        assert_eq!(sim.metrics().be_throughput_avg, 0.0);
        assert!(sim.true_power() > Watts(50.0));
    }

    #[test]
    fn capper_reacts_to_overdraw() {
        let mut sim = make_sim(
            LcApp::ImgDnn, // tightest cap: 133 W
            Some(BeApp::Pbzip),
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(0.3),
        );
        run(&mut sim, 20);
        let m = sim.metrics();
        assert!(
            m.capping_frac > 0.0,
            "a power-hungry BE app beside img-dnn must get throttled"
        );
        // The secondary should have been slowed down.
        let sec = sim.server().allocation(TenantRole::Secondary).unwrap();
        assert!(sec.frequency < sim.lc_truth().machine().freq_max());
    }

    #[test]
    fn power_never_exceeds_cap_after_settling() {
        let mut sim = make_sim(
            LcApp::TpcC,
            Some(BeApp::Graph),
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(0.4),
        );
        run(&mut sim, 20);
        // Post-settling, sampled power obeys the cap within meter noise.
        for _ in 0..50 {
            sim.on_capper_tick(0.1);
            assert!(
                sim.true_power() <= sim.metrics().power_cap * 1.03,
                "{} exceeds cap {}",
                sim.true_power(),
                sim.metrics().power_cap
            );
        }
    }
}

//! Simulation of a single colocated server: ground truth + control loops.

use pocolo_core::units::{Frequency, Watts};
use pocolo_core::utility::IndirectUtility;
use pocolo_core::CobbDouglas;
use pocolo_faults::ReadmissionBackoff;
use pocolo_manager::{
    BeIntent, CapAction, ControlInput, DecisionRecord, GovernorConfig, HeraclesController,
    LcPolicy, ManagerConfig, PocoloController, PowerCapper, PrimaryDirective, ResilienceParams,
    ServerController, ServerManager,
};
use pocolo_simserver::power::{PowerDrawModel, PowerMeter};
use pocolo_simserver::{SimServer, TenantRole, TimeSeries};
use pocolo_workloads::{BeModel, LcModel, LoadTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::faults::{ResilienceConfig, ServerFaultAction};
use crate::metrics::ServerMetrics;

/// One server under simulation: the ground-truth workload models, the
/// simulated hardware, and the two control loops — plus, optionally, the
/// fault physics (brownout caps, crashes, frozen telemetry, RAPL-style
/// emergency throttling) and the degraded-mode response on top.
#[derive(Debug)]
pub struct ServerSim {
    lc_truth: LcModel,
    be_truth: Option<BeModel>,
    server: SimServer,
    /// The control plane: decides; this backend actuates.
    controller: Box<dyn ServerController>,
    capper: PowerCapper,
    meter: PowerMeter,
    power_model: PowerDrawModel,
    trace: LoadTrace,
    metrics: ServerMetrics,
    last_slack: Option<f64>,
    /// Last meter reading (what a real power governor would see).
    last_measured: Option<Watts>,
    current_load_rps: f64,
    /// Fitted BE utility for proactive (model-guided) secondary planning.
    be_fitted: Option<IndirectUtility>,
    /// Frequency ceiling planned for the secondary this epoch.
    freq_ceiling: Option<Frequency>,
    /// Remaining migration pause: the BE app produces no throughput while
    /// its state moves in (§I: "dynamically moving applications across
    /// servers incurs high overheads").
    pause_remaining_s: f64,
    /// RNG seed (meter + drift perturbations derive from it).
    seed: u64,
    /// Internal clock, advanced by manager and capper ticks.
    clock_s: f64,
    /// Effective-cap multiplier (1.0 = provisioned; brownouts set < 1).
    cap_factor: f64,
    /// True while the server is crashed.
    down: bool,
    /// What the management plane *observes* (freezable telemetry).
    obs_load: TimeSeries,
    obs_slack: TimeSeries,
    /// Fault physics armed: the capper enforces the *effective* cap and a
    /// RAPL-style emergency throttle may slow the primary under sustained
    /// overdraw.
    fault_physics: bool,
    /// Emergency DVFS ceiling on the primary (RAPL analogue).
    rapl_ceiling: Frequency,
    /// Forced-idle duty factor (RAPL's last resort once the frequency is
    /// floored and the server still overdraws): capacity and BE
    /// throughput scale with it, tail latency suffers accordingly.
    duty: f64,
    /// Evicted/crashed-out BE co-runner awaiting re-admission.
    parked_be: Option<(BeModel, Option<IndirectUtility>)>,
    /// Set when a fault clears; resolved at the first healthy tick.
    recovery_pending_since: Option<f64>,
    /// Degraded-mode response armed on the controller.
    resilient: bool,
    /// Per-epoch decision trace, when enabled.
    decision_log: Option<Vec<DecisionRecord>>,
}

impl ServerSim {
    /// Assembles a server simulation.
    ///
    /// `lc_fitted` is the *fitted* model the manager plans with (fit it from
    /// profiles of `lc_truth`); `be_truth` is the co-runner's ground truth
    /// (or `None` for a solo primary).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        lc_truth: LcModel,
        lc_fitted: IndirectUtility,
        be_truth: Option<BeModel>,
        policy: LcPolicy,
        trace: LoadTrace,
        power_cap: Watts,
        meter_noise: f64,
        seed: u64,
    ) -> Self {
        let machine = lc_truth.machine().clone();
        let server = SimServer::new(machine.clone(), power_cap);
        let manager = ServerManager::new(lc_fitted, policy, ManagerConfig::default());
        let rapl_ceiling = machine.freq_max();
        ServerSim {
            power_model: PowerDrawModel::new(machine),
            lc_truth,
            be_truth,
            server,
            controller: Box::new(PocoloController::new(manager)),
            capper: PowerCapper::default(),
            meter: PowerMeter::new(meter_noise, seed),
            trace,
            metrics: ServerMetrics::new(power_cap),
            last_slack: None,
            last_measured: None,
            current_load_rps: 0.0,
            be_fitted: None,
            freq_ceiling: None,
            pause_remaining_s: 0.0,
            seed,
            clock_s: 0.0,
            cap_factor: 1.0,
            down: false,
            obs_load: TimeSeries::with_capacity(16),
            obs_slack: TimeSeries::with_capacity(16),
            fault_physics: false,
            rapl_ceiling,
            duty: 1.0,
            parked_be: None,
            recovery_pending_since: None,
            resilient: false,
            decision_log: None,
        }
    }

    /// Swaps the best-effort co-runner (a cluster-level migration). The new
    /// app pays `pause_s` seconds of zero throughput while it warms up;
    /// the secondary slot's DVFS/quota state resets.
    pub fn replace_be(
        &mut self,
        be_truth: Option<BeModel>,
        be_fitted: Option<IndirectUtility>,
        pause_s: f64,
    ) {
        self.be_truth = be_truth;
        self.be_fitted = be_fitted;
        self.pause_remaining_s = pause_s.max(0.0);
        self.server.evict(TenantRole::Secondary);
    }

    /// The name of the current co-runner's remaining migration pause.
    pub fn pause_remaining_s(&self) -> f64 {
        self.pause_remaining_s
    }

    /// Enables proactive, model-guided management of the secondary (the
    /// power-optimized policies): every manager epoch, the secondary's DVFS
    /// frequency is *planned* from the fitted models so its predicted draw
    /// fits the predicted power headroom — instead of running hot and being
    /// reactively throttled. The reactive capper stays as a backstop.
    #[must_use]
    pub fn with_proactive_be(mut self, be_fitted: IndirectUtility) -> Self {
        self.be_fitted = Some(be_fitted);
        self
    }

    /// Arms the fault physics: the capper enforces the *effective* cap
    /// (provisioned × brownout factor) and a RAPL-style emergency DVFS
    /// throttle slows the primary when the server stays over that cap
    /// with the secondary already floored. Without this, fault events
    /// still apply but the hardware behaves as if provisioning were
    /// always honest.
    #[must_use]
    pub fn with_fault_physics(mut self) -> Self {
        self.fault_physics = true;
        self
    }

    /// Arms the degraded-mode response: stale telemetry switches the
    /// manager to pure Heracles-style feedback, the proactive planner
    /// tracks the *effective* cap, and a co-runner that keeps the capper
    /// saturated is evicted (after a patience proportional to `rank`)
    /// with exponential re-admission backoff. Implies
    /// [`ServerSim::with_fault_physics`].
    #[must_use]
    pub fn with_resilience(mut self, config: ResilienceConfig, rank: usize) -> Self {
        self.fault_physics = true;
        self.resilient = true;
        let backoff = ReadmissionBackoff::new(
            config.backoff_base_s,
            config.backoff_factor,
            config.backoff_max_s,
        );
        self.controller.arm_resilience(ResilienceParams {
            governor: GovernorConfig {
                comfort_frac: config.brownout_budget_frac,
                comfort_frac_solo: config.brownout_budget_frac_solo,
                distress_frac: config.brownout_distress_frac,
                release: self.capper.release,
                duck_margin: 0.02,
            },
            // `rank` 0 is the cluster's lowest-value pairing and gets the
            // least eviction patience (it is sacrificed first).
            eviction_patience_ticks: config.eviction_patience_ticks
                + config.patience_per_rank_ticks * rank,
            backoff,
            readmit_pause_s: config.readmit_pause_s,
        });
        self
    }

    /// Swaps in the power-oblivious incremental-growth controller (the
    /// Heracles-style baseline). Call *before*
    /// [`ServerSim::with_resilience`], which arms whichever controller is
    /// installed.
    #[must_use]
    pub fn with_incremental_control(mut self) -> Self {
        let manager = self.controller.manager().clone();
        self.controller = Box::new(HeraclesController::new(manager));
        self
    }

    /// Records every [`DecisionRecord`] the controller emits (the CLI's
    /// `--decision-log` source).
    #[must_use]
    pub fn with_decision_log(mut self) -> Self {
        self.decision_log = Some(Vec::new());
        self
    }

    /// The decision trace accumulated so far (empty unless
    /// [`ServerSim::with_decision_log`] was enabled).
    pub fn decision_records(&self) -> &[DecisionRecord] {
        self.decision_log.as_deref().unwrap_or(&[])
    }

    /// The ground-truth LC model.
    pub fn lc_truth(&self) -> &LcModel {
        &self.lc_truth
    }

    /// The co-runner's ground truth, if placed.
    pub fn be_truth(&self) -> Option<&BeModel> {
        self.be_truth.as_ref()
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The underlying simulated server (for inspection in tests/benches).
    pub fn server(&self) -> &SimServer {
        &self.server
    }

    /// The effective power cap right now (provisioned × brownout factor).
    pub fn effective_cap(&self) -> Watts {
        self.server.power_cap() * self.cap_factor
    }

    /// True while the server is crashed.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// True while any fault is active on this server (brownout window,
    /// crash downtime, or frozen telemetry).
    pub fn fault_active(&self) -> bool {
        self.cap_factor < 1.0 || self.down || self.obs_load.is_frozen(self.clock_s)
    }

    /// Applies one fault action at absolute time `now_s`.
    pub fn apply_fault(&mut self, action: &ServerFaultAction, now_s: f64) {
        self.clock_s = self.clock_s.max(now_s);
        match action {
            ServerFaultAction::SetCapFactor(factor) => {
                let lifted = *factor >= 1.0 && self.cap_factor < 1.0;
                if lifted {
                    // Brownout lifted: recovery clock starts, the power
                    // governor disarms.
                    self.recovery_pending_since = Some(now_s);
                    self.controller.on_brownout_lift();
                }
                self.cap_factor = factor.clamp(0.05, 1.0);
                // The degraded-mode response is event-driven: the moment
                // the brownout lifts it replans at the restored cap
                // instead of serving shrunken allocations until the next
                // periodic epoch. The naive path keeps polling.
                if lifted && self.resilient {
                    self.on_manager_tick(now_s);
                }
            }
            ServerFaultAction::Crash => {
                self.down = true;
                if let Some(be) = self.be_truth.take() {
                    self.parked_be = Some((be, self.be_fitted.take()));
                    self.metrics.record_eviction();
                }
                self.server.evict(TenantRole::Primary);
                self.server.evict(TenantRole::Secondary);
                self.freq_ceiling = None;
                self.last_slack = None;
                self.recovery_pending_since = None;
            }
            ServerFaultAction::Recover => {
                self.down = false;
                self.recovery_pending_since = Some(now_s);
                // A resilient controller schedules a backed-off
                // re-admission and holds; the naive one orders an
                // immediate restart.
                let intent = self.controller.on_recover(now_s, self.parked_be.is_some());
                if let BeIntent::Readmit { pause_s } = intent {
                    if let Some((truth, fitted)) = self.parked_be.take() {
                        self.replace_be(Some(truth), fitted, pause_s);
                    }
                }
            }
            ServerFaultAction::FreezeTelemetry { until_s } => {
                self.obs_load.freeze_until(*until_s);
                self.obs_slack.freeze_until(*until_s);
            }
            ServerFaultAction::Thaw => {
                self.obs_load.thaw();
                self.obs_slack.thaw();
                self.recovery_pending_since = Some(now_s);
            }
            ServerFaultAction::DriftModel { rel, salt } => {
                self.drift_model(*rel, *salt);
            }
            ServerFaultAction::ReplaceBe {
                be_truth,
                be_fitted,
                pause_s,
            } => {
                self.replace_be(
                    be_truth.as_deref().cloned(),
                    be_fitted.as_deref().cloned(),
                    *pause_s,
                );
            }
        }
    }

    /// Perturbs the manager's fitted performance α's by up to `rel`
    /// relatively — the workload drifted under the model. Deterministic in
    /// `(salt, server seed)`.
    fn drift_model(&mut self, rel: f64, salt: u64) {
        let utility = self.controller.manager().utility();
        let perf = utility.performance_model();
        let mut rng = StdRng::seed_from_u64(salt ^ self.seed.rotate_left(17));
        let alphas: Vec<f64> = perf
            .alphas()
            .iter()
            .map(|&a| {
                let jitter = rng.gen_range(-1.0f64..1.0);
                (a * (1.0 + rel * jitter)).max(1e-3)
            })
            .collect();
        let space = utility.space().clone();
        let power = utility.power_model().clone();
        if let Ok(drifted) = CobbDouglas::new(perf.alpha0(), alphas) {
            if let Ok(new_utility) = IndirectUtility::new(space, drifted, power) {
                self.controller.manager_mut().replace_utility(new_utility);
            }
        }
    }

    /// The manager tick (1 s in the paper): build the [`ControlInput`]
    /// snapshot, let the controller decide, actuate the decision. All
    /// mode arbitration (brownout governor, distress escalation,
    /// frozen-telemetry fallback) lives behind
    /// [`ServerController::decide`]; this backend only observes and
    /// actuates.
    pub fn on_manager_tick(&mut self, now_s: f64) {
        self.clock_s = now_s;
        if self.down {
            return;
        }
        let true_load = self.trace.load_at(now_s) * self.lc_truth.peak_load_rps();
        self.current_load_rps = true_load;
        self.obs_load.push(now_s, true_load);
        let stale = self.obs_load.is_frozen(now_s);
        let observed_load = self.obs_load.last().map(|(_, v)| v).unwrap_or(true_load);
        let observed_slack = if stale {
            self.obs_slack.last().map(|(_, v)| v)
        } else {
            self.last_slack
        };
        let machine = self.lc_truth.machine();
        let input = ControlInput {
            now_s,
            observed_load_rps: observed_load,
            observed_slack,
            measured_power: self.last_measured,
            effective_cap: self.effective_cap(),
            brownout: self.cap_factor < 1.0,
            rapl_throttled: self.rapl_ceiling < machine.freq_max(),
            telemetry_frozen: stale,
            be_present: self.be_truth.is_some(),
            be_draw_estimate: self.be_draw_estimate(),
            max_counts: (machine.cores(), machine.llc_ways()),
        };
        let decision = self.controller.decide(&input);
        // Managers are resilient: a failed apply leaves the previous
        // allocation in place rather than killing the simulation.
        if let PrimaryDirective::Resize { cores, ways } = decision.primary {
            let _ = self
                .controller
                .manager_mut()
                .apply(&mut self.server, cores, ways);
        }
        if let Some(log) = &mut self.decision_log {
            log.push(decision.record);
        }
        self.enforce_rapl_ceiling();
        self.plan_secondary_frequency();
        self.try_readmit_be(now_s);
    }

    /// Re-admits a parked BE co-runner once the controller says so (its
    /// backoff expired with the server calm and healthy).
    fn try_readmit_be(&mut self, now_s: f64) {
        let fault_active = self.cap_factor < 1.0 || self.down || self.obs_load.is_frozen(now_s);
        if let BeIntent::Readmit { pause_s } = self.controller.readmit_tick(now_s, fault_active) {
            if let Some((truth, fitted)) = self.parked_be.take() {
                self.replace_be(Some(truth), fitted, pause_s);
            }
        }
    }

    /// Clamps the primary under the RAPL emergency ceiling (the manager
    /// reinstalls it at `f_max` every epoch).
    fn enforce_rapl_ceiling(&mut self) {
        if !self.fault_physics {
            return;
        }
        if let Some(primary) = self.server.allocation(TenantRole::Primary).copied() {
            if primary.frequency > self.rapl_ceiling {
                let _ = self
                    .server
                    .set_frequency(TenantRole::Primary, self.rapl_ceiling);
            }
        }
    }

    /// Model-guided secondary planning (see [`ServerSim::with_proactive_be`]).
    fn plan_secondary_frequency(&mut self) {
        self.freq_ceiling = None;
        let Some(sec) = self.server.allocation(TenantRole::Secondary).copied() else {
            return;
        };
        // A parked (evicted / crashed-out) co-runner leaves its slot
        // allocated but idle; any frequency beyond the floor is pure
        // waste heat charged against the cap. Checked before the fitted
        // model, which eviction parks along with the app.
        if self.be_truth.is_none() && self.parked_be.is_some() {
            let floor = self.lc_truth.machine().freq_min();
            if sec.frequency > floor {
                let _ = self.server.set_frequency(TenantRole::Secondary, floor);
            }
            self.freq_ceiling = Some(floor);
            return;
        }
        let Some(be_fit) = &self.be_fitted else {
            return;
        };
        let Some((c, w)) = self.controller.manager().last_counts() else {
            return;
        };
        // LC priority under an active brownout: while the primary is
        // violating its SLO, the co-runner gets nothing beyond the floor.
        // Freed watts must reach the primary — otherwise a shrinking
        // primary lowers its own predicted draw, the planner hands the
        // difference to the BE, and total draw never falls.
        if self.resilient && self.cap_factor < 1.0 && self.last_slack.is_some_and(|s| s < 0.0) {
            let floor = self.lc_truth.machine().freq_min();
            if sec.frequency > floor {
                let _ = self.server.set_frequency(TenantRole::Secondary, floor);
            }
            self.freq_ceiling = Some(floor);
            return;
        }
        let lc_pred = self
            .controller
            .manager()
            .utility()
            .power_model()
            .power_of_amounts(&[c as f64, w as f64])
            .unwrap_or(Watts::ZERO);
        // The resilient manager propagates the browned-out cap into the
        // plan; the naive one keeps planning against the provisioned cap
        // it was told at provisioning time.
        let cap = if self.resilient {
            self.effective_cap()
        } else {
            self.server.power_cap()
        };
        // Plan against a small guard band under the cap — the "reduces the
        // need to throttle by design" behaviour of §V-D.
        let headroom = (cap - lc_pred) * 0.88;
        let amounts = [sec.cores.count() as f64, sec.ways.count() as f64];
        let p_static = be_fit.power_model().p_static();
        let dynamic_at_fmax = match be_fit.power_model().power_of_amounts(&amounts) {
            Ok(p) => p - p_static,
            Err(_) => return,
        };
        // DVFS physics: dynamic power scales ~(f/f_max)^2.4.
        let machine = self.lc_truth.machine();
        let fmax = machine.freq_max();
        let mut planned = machine.freq_min();
        let mut f = fmax.0;
        while f >= machine.freq_min().0 - 1e-9 {
            let frac = (f / fmax.0).powf(2.4);
            if p_static + dynamic_at_fmax * frac <= headroom {
                planned = Frequency(f);
                break;
            }
            f -= 0.1;
        }
        // The plan is a *ceiling*: lower the secondary if it is above, but
        // never yank it up past what the reactive capper has settled on —
        // the capper's recovery path raises it as headroom allows.
        if sec.frequency > planned {
            let _ = self.server.set_frequency(TenantRole::Secondary, planned);
        }
        self.freq_ceiling = Some(planned);
    }

    /// The co-runner's draw as the management plane can estimate it: the
    /// fitted BE power model at the secondary's current allocation and
    /// DVFS point (the same DVFS scaling the proactive planner uses).
    fn be_draw_estimate(&self) -> Watts {
        if self.be_truth.is_none() {
            return Watts::ZERO;
        }
        let (Some(be_fit), Some(sec)) = (
            self.be_fitted.as_ref(),
            self.server.allocation(TenantRole::Secondary),
        ) else {
            return Watts::ZERO;
        };
        let amounts = [sec.cores.count() as f64, sec.ways.count() as f64];
        let Ok(at_fmax) = be_fit.power_model().power_of_amounts(&amounts) else {
            return Watts::ZERO;
        };
        let p_static = be_fit.power_model().p_static();
        let fmax = self.lc_truth.machine().freq_max();
        let frac = (sec.frequency.0 / fmax.0).powf(2.4);
        Watts(p_static.0 + (at_fmax.0 - p_static.0) * frac)
    }

    /// Instantaneous *true* server power from the ground-truth draws.
    pub fn true_power(&self) -> Watts {
        if self.down {
            return Watts::ZERO;
        }
        let mut draws = Vec::with_capacity(2);
        if let Some(alloc) = self.server.allocation(TenantRole::Primary) {
            draws.push(
                self.lc_truth
                    .power_draw(self.current_load_rps, alloc, &self.power_model),
            );
        }
        if let (Some(be), Some(alloc)) = (
            self.be_truth.as_ref(),
            self.server.allocation(TenantRole::Secondary),
        ) {
            draws.push(be.power_draw(alloc, &self.power_model));
        }
        let total = self.power_model.server_power(draws);
        if self.duty >= 1.0 {
            return total;
        }
        // Forced idle cuts the active draw toward the idle baseline.
        let idle = self.power_model.server_power(Vec::new());
        idle + (total - idle) * self.duty
    }

    /// Instantaneous normalized BE throughput (zero while a migration
    /// pause is in effect).
    pub fn be_throughput(&self) -> f64 {
        if self.pause_remaining_s > 0.0 {
            return 0.0;
        }
        match (
            self.be_truth.as_ref(),
            self.server.allocation(TenantRole::Secondary),
        ) {
            (Some(be), Some(alloc)) => be.throughput(alloc) * self.duty,
            _ => 0.0,
        }
    }

    /// Observed p99 latency slack of the primary right now. Forced-idle
    /// duty cycling inflates the effective load: a machine that is asleep
    /// a third of the time must absorb the same arrivals in the rest.
    pub fn lc_slack(&self) -> f64 {
        match self.server.allocation(TenantRole::Primary) {
            Some(alloc) => self
                .lc_truth
                .latency_slack(self.current_load_rps / self.duty, alloc),
            None => 1.0,
        }
    }

    /// The capper tick (100 ms in the paper): sample the meter, throttle or
    /// recover the secondary, and record metrics over `dt` seconds.
    pub fn on_capper_tick(&mut self, dt: f64) {
        self.clock_s += dt;
        self.pause_remaining_s = (self.pause_remaining_s - dt).max(0.0);
        if self.down {
            // Crashed: no draw, no service — the primary's SLO is by
            // definition violated while its replacement warms up elsewhere.
            self.metrics.record(dt, Watts::ZERO, 0.0, -1.0, false, true);
            return;
        }
        let true_power = self.true_power();
        let measured = self.meter.sample(true_power);
        self.last_measured = Some(measured);
        let eff_cap = self.effective_cap();
        let action = self
            .capper
            .step_with_cap(&mut self.server, measured, eff_cap)
            .unwrap_or(CapAction::None);
        // Under proactive planning the capper may not raise the secondary
        // past the planned frequency ceiling.
        if let (Some(ceiling), Some(sec)) = (
            self.freq_ceiling,
            self.server.allocation(TenantRole::Secondary).copied(),
        ) {
            if sec.frequency > ceiling {
                let _ = self.server.set_frequency(TenantRole::Secondary, ceiling);
            }
        }
        let over_cap_saturated = matches!(action, CapAction::Saturated) && measured > eff_cap;
        let slack = self.lc_slack();
        self.step_rapl(over_cap_saturated, measured, eff_cap);
        self.step_eviction(over_cap_saturated, slack);
        let throttled = matches!(
            action,
            CapAction::LoweredFrequency | CapAction::LoweredQuota | CapAction::Saturated
        );
        self.last_slack = Some(slack);
        self.obs_slack.push(self.clock_s, slack);
        let fault_active = self.fault_active();
        // Metrics record the *pre-action* power: that is what the server
        // actually drew over the elapsed interval (including any overshoot
        // the capper is only now correcting).
        self.metrics.record(
            dt,
            true_power,
            self.be_throughput(),
            slack,
            throttled,
            fault_active,
        );
        if let Some(since) = self.recovery_pending_since {
            let healthy = !fault_active && slack >= 0.0 && true_power <= eff_cap * 1.01;
            if healthy {
                self.metrics
                    .record_recovery((self.clock_s - since).max(0.0));
                self.recovery_pending_since = None;
            }
        }
    }

    /// RAPL-style emergency DVFS on the primary: with the secondary
    /// already floored and the server still over its effective cap, the
    /// hardware has no knob left but the primary's frequency. Recovers
    /// step-wise once draw falls under the release band.
    fn step_rapl(&mut self, over_cap_saturated: bool, measured: Watts, eff_cap: Watts) {
        if !self.fault_physics {
            return;
        }
        let machine = self.lc_truth.machine();
        if over_cap_saturated {
            if self.rapl_ceiling.0 <= machine.freq_min().0 + 1e-9 {
                // Frequency already floored and the server still overdraws:
                // the package force-idles (duty cycling) to honor its power
                // limit. A cap is a guarantee, not a suggestion — and this
                // last resort is what wrecks tail latency.
                self.duty = (self.duty - 0.1).max(0.25);
            }
            let lowered = Frequency((self.rapl_ceiling.0 - 0.1).max(machine.freq_min().0));
            self.rapl_ceiling = lowered;
            self.enforce_rapl_ceiling();
        } else if measured < eff_cap * self.capper.release {
            self.duty = (self.duty + 0.1).min(1.0);
            if self.rapl_ceiling < machine.freq_max() {
                self.rapl_ceiling =
                    Frequency((self.rapl_ceiling.0 + 0.1).min(machine.freq_max().0));
                // The primary itself is only raised at the next manager
                // epoch (the manager reinstalls it at f_max and the
                // ceiling clamps).
            }
        }
    }

    /// Degraded-mode load shedding: a co-runner that keeps the capper
    /// saturated *over the effective cap* — or keeps the primary in
    /// sustained SLO violation while a fault is active — past its patience
    /// is evicted and parked under exponential re-admission backoff.
    /// Shedding the BE hands its whole power share back to the primary.
    fn step_eviction(&mut self, over_cap_saturated: bool, slack: f64) {
        // Under a brownout every watt is spoken for: a primary in
        // sustained violation reclaims even the floored co-runner's
        // static draw. (Outside a brownout, only capper saturation over
        // the cap counts — evicting would free watts nobody needs.)
        let distressed =
            over_cap_saturated || (self.cap_factor < 1.0 && slack < 0.0 && self.be_truth.is_some());
        let intent =
            self.controller
                .distress_tick(distressed, self.be_truth.is_some(), self.clock_s);
        if intent != BeIntent::Evict {
            return;
        }
        if let Some(be) = self.be_truth.take() {
            self.parked_be = Some((be, self.be_fitted.take()));
            self.metrics.record_eviction();
        }
        self.server.evict(TenantRole::Secondary);
        self.freq_ceiling = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_core::fit::{fit_indirect_utility, FitOptions};
    use pocolo_manager::LcPolicy;
    use pocolo_simserver::MachineSpec;
    use pocolo_workloads::profiler::{profile_lc, ProfilerConfig};
    use pocolo_workloads::{BeApp, LcApp};

    fn make_sim(lc: LcApp, be: Option<BeApp>, policy: LcPolicy, trace: LoadTrace) -> ServerSim {
        let machine = MachineSpec::xeon_e5_2650();
        let truth = LcModel::for_app(lc, machine.clone());
        let power = PowerDrawModel::new(machine.clone());
        let space = machine.resource_space();
        let samples = profile_lc(&truth, &power, &space, &ProfilerConfig::default());
        let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default())
            .unwrap()
            .utility;
        let cap = truth.provisioned_power();
        let be_truth = be.map(|b| BeModel::for_app(b, machine.clone()));
        ServerSim::new(truth, fitted, be_truth, policy, trace, cap, 0.01, 42)
    }

    fn run(sim: &mut ServerSim, seconds: usize) {
        run_from(sim, 0, seconds);
    }

    fn run_from(sim: &mut ServerSim, start_s: usize, seconds: usize) {
        for s in start_s..start_s + seconds {
            sim.on_manager_tick(s as f64);
            for _ in 0..10 {
                sim.on_capper_tick(0.1);
            }
        }
    }

    #[test]
    fn steady_load_keeps_slo_and_cap() {
        let mut sim = make_sim(
            LcApp::Xapian,
            Some(BeApp::Graph),
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(0.5),
        );
        run(&mut sim, 30);
        let m = sim.metrics();
        assert!(
            m.lc_violation_frac < 0.2,
            "SLO violations {} should be transient",
            m.lc_violation_frac
        );
        // After settling, power stays at/below cap (small overshoot spikes
        // between capper reactions are expected).
        assert!(
            sim.true_power() <= m.power_cap * 1.02,
            "settled power {} vs cap {}",
            sim.true_power(),
            m.power_cap
        );
        assert!(m.be_throughput_avg > 0.05, "BE should make progress");
        assert_eq!(m.evictions, 0);
        assert_eq!(m.time_to_recover_s, 0.0);
    }

    #[test]
    fn load_sweep_varies_be_throughput() {
        let mut sim = make_sim(
            LcApp::Xapian,
            Some(BeApp::Rnn),
            LcPolicy::PowerOptimized,
            LoadTrace::paper_sweep(10.0),
        );
        // First level (10 % load).
        run(&mut sim, 10);
        let low_load_thpt = sim.be_throughput();
        // Run into the high-load levels.
        run_from(&mut sim, 10, 70);
        let high_load_thpt = sim.be_throughput();
        assert!(
            low_load_thpt > high_load_thpt,
            "BE throughput at 10% LC load ({low_load_thpt}) should exceed at 80% ({high_load_thpt})"
        );
    }

    #[test]
    fn solo_primary_has_zero_be_throughput() {
        let mut sim = make_sim(
            LcApp::Sphinx,
            None,
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(0.3),
        );
        run(&mut sim, 10);
        assert_eq!(sim.metrics().be_throughput_avg, 0.0);
        assert!(sim.true_power() > Watts(50.0));
    }

    #[test]
    fn capper_reacts_to_overdraw() {
        let mut sim = make_sim(
            LcApp::ImgDnn, // tightest cap: 133 W
            Some(BeApp::Pbzip),
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(0.3),
        );
        run(&mut sim, 20);
        let m = sim.metrics();
        assert!(
            m.capping_frac > 0.0,
            "a power-hungry BE app beside img-dnn must get throttled"
        );
        // The secondary should have been slowed down.
        let sec = sim.server().allocation(TenantRole::Secondary).unwrap();
        assert!(sec.frequency < sim.lc_truth().machine().freq_max());
    }

    #[test]
    fn power_never_exceeds_cap_after_settling() {
        let mut sim = make_sim(
            LcApp::TpcC,
            Some(BeApp::Graph),
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(0.4),
        );
        run(&mut sim, 20);
        // Post-settling, sampled power obeys the cap within meter noise.
        for _ in 0..50 {
            sim.on_capper_tick(0.1);
            assert!(
                sim.true_power() <= sim.metrics().power_cap * 1.03,
                "{} exceeds cap {}",
                sim.true_power(),
                sim.metrics().power_cap
            );
        }
    }

    #[test]
    fn brownout_shrinks_the_effective_cap() {
        let mut sim = make_sim(
            LcApp::Xapian,
            Some(BeApp::Graph),
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(0.5),
        )
        .with_fault_physics();
        run(&mut sim, 5);
        let provisioned = sim.server().power_cap();
        sim.apply_fault(&ServerFaultAction::SetCapFactor(0.6), 5.0);
        assert!(sim.fault_active());
        assert!((sim.effective_cap().0 - provisioned.0 * 0.6).abs() < 1e-9);
        run_from(&mut sim, 5, 15);
        // Sustained draw must have been squeezed toward the shrunk cap.
        assert!(
            sim.true_power() <= provisioned * 0.8,
            "brownout left draw at {}",
            sim.true_power()
        );
        sim.apply_fault(&ServerFaultAction::SetCapFactor(1.0), 20.0);
        assert!(!sim.fault_active());
    }

    #[test]
    fn crash_kills_power_and_violates_slo_until_recovery() {
        let mut sim = make_sim(
            LcApp::Sphinx,
            Some(BeApp::Graph),
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(0.4),
        )
        .with_fault_physics();
        run(&mut sim, 5);
        sim.apply_fault(&ServerFaultAction::Crash, 5.0);
        assert!(sim.is_down());
        assert_eq!(sim.true_power(), Watts::ZERO);
        assert_eq!(sim.metrics().evictions, 1);
        let fault_time_before = sim.metrics().fault_time_s();
        run_from(&mut sim, 5, 3);
        assert!(sim.metrics().fault_time_s() > fault_time_before + 2.9);
        sim.apply_fault(&ServerFaultAction::Recover, 8.0);
        assert!(!sim.is_down());
        run_from(&mut sim, 8, 6);
        // Naive path restores the co-runner immediately on recovery.
        assert!(sim.be_truth().is_some());
        assert!(sim.true_power() > Watts(40.0));
        assert!(sim.metrics().time_to_recover_s > 0.0);
    }

    #[test]
    fn frozen_telemetry_is_consumed_by_the_naive_manager() {
        let mut sim = make_sim(
            LcApp::Xapian,
            Some(BeApp::Graph),
            LcPolicy::PowerOptimized,
            // Load jumps after the freeze starts.
            LoadTrace::Steps(vec![(10.0, 0.2), (990.0, 0.9)]),
        )
        .with_fault_physics();
        run(&mut sim, 9);
        sim.apply_fault(&ServerFaultAction::FreezeTelemetry { until_s: 25.0 }, 9.0);
        assert!(sim.fault_active());
        run_from(&mut sim, 9, 10);
        // The manager kept sizing for the frozen 20 % reading while true
        // load ran at 90 % — slack must have collapsed.
        assert!(
            sim.metrics().slo_violation_frac_during_fault > 0.2,
            "stale telemetry should hurt, got {}",
            sim.metrics().slo_violation_frac_during_fault
        );
        sim.apply_fault(&ServerFaultAction::Thaw, 19.0);
        assert!(!sim.fault_active());
    }

    #[test]
    fn resilient_manager_grows_through_a_dropout() {
        let make = || {
            make_sim(
                LcApp::Xapian,
                Some(BeApp::Graph),
                LcPolicy::PowerOptimized,
                LoadTrace::Steps(vec![(10.0, 0.2), (990.0, 0.9)]),
            )
        };
        let mut naive = make().with_fault_physics();
        let mut resilient = make().with_resilience(ResilienceConfig::default(), 0);
        for sim in [&mut naive, &mut resilient] {
            run(sim, 9);
            sim.apply_fault(&ServerFaultAction::FreezeTelemetry { until_s: 25.0 }, 9.0);
            run_from(sim, 9, 10);
        }
        assert!(
            resilient.metrics().slo_violation_frac_during_fault
                < naive.metrics().slo_violation_frac_during_fault,
            "degraded mode {} should beat stale analytic control {}",
            resilient.metrics().slo_violation_frac_during_fault,
            naive.metrics().slo_violation_frac_during_fault
        );
    }

    #[test]
    fn model_drift_perturbs_the_fitted_alphas_deterministically() {
        let mut sim = make_sim(
            LcApp::TpcC,
            Some(BeApp::Graph),
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(0.4),
        );
        let before = sim
            .controller
            .manager()
            .utility()
            .performance_model()
            .alphas()
            .to_vec();
        sim.apply_fault(&ServerFaultAction::DriftModel { rel: 0.3, salt: 7 }, 1.0);
        let after = sim
            .controller
            .manager()
            .utility()
            .performance_model()
            .alphas()
            .to_vec();
        assert_ne!(before, after);
        for (b, a) in before.iter().zip(&after) {
            assert!(
                (a / b - 1.0).abs() <= 0.3 + 1e-9,
                "drift {b} -> {a} too big"
            );
        }
        // Same salt + seed on a fresh sim drifts identically.
        let mut sim2 = make_sim(
            LcApp::TpcC,
            Some(BeApp::Graph),
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(0.4),
        );
        sim2.apply_fault(&ServerFaultAction::DriftModel { rel: 0.3, salt: 7 }, 1.0);
        assert_eq!(
            after,
            sim2.controller
                .manager()
                .utility()
                .performance_model()
                .alphas()
                .to_vec()
        );
    }

    #[test]
    fn sustained_saturation_evicts_the_co_runner_with_backoff() {
        // img-dnn + pbzip under a deep brownout: the floored secondary
        // still draws too much, so resilience must shed it.
        let mut sim = make_sim(
            LcApp::ImgDnn,
            Some(BeApp::Pbzip),
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(0.5),
        )
        .with_resilience(ResilienceConfig::default(), 0);
        run(&mut sim, 5);
        sim.apply_fault(&ServerFaultAction::SetCapFactor(0.5), 5.0);
        run_from(&mut sim, 5, 10);
        assert!(
            sim.metrics().evictions >= 1,
            "deep brownout should evict the BE app"
        );
        assert!(sim.be_truth().is_none(), "co-runner is parked");
        assert_eq!(sim.be_throughput(), 0.0);
        // Brownout ends; after the backoff the co-runner returns.
        sim.apply_fault(&ServerFaultAction::SetCapFactor(1.0), 15.0);
        run_from(&mut sim, 15, 70);
        assert!(
            sim.be_truth().is_some(),
            "co-runner should be re-admitted after backoff"
        );
    }

    #[test]
    fn replace_be_fault_action_swaps_the_co_runner() {
        let machine = MachineSpec::xeon_e5_2650();
        let mut sim = make_sim(
            LcApp::Xapian,
            Some(BeApp::Graph),
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(0.3),
        );
        run(&mut sim, 3);
        sim.apply_fault(
            &ServerFaultAction::ReplaceBe {
                be_truth: Some(Box::new(BeModel::for_app(BeApp::Rnn, machine))),
                be_fitted: None,
                pause_s: 2.0,
            },
            3.0,
        );
        assert!(sim.pause_remaining_s() > 0.0);
        assert_eq!(sim.be_throughput(), 0.0);
        run_from(&mut sim, 3, 4);
        assert!(sim.be_throughput() > 0.0, "new co-runner warmed up");
    }
}

//! End-to-end policy experiments: the §V-D comparison of Random, POM and
//! POColo over the uniform 10–90 % load sweep (Figs. 12 and 13).

use pocolo_cluster::{Assignment, ClusterManager, PerfMatrixBuilder, ServerProfile, Solver};
use pocolo_core::fit::{fit_indirect_utility, FitOptions};
use pocolo_core::utility::IndirectUtility;
use pocolo_faults::{eviction_order, FaultKind, FaultSpec};
use pocolo_manager::LcPolicy;
use pocolo_simserver::power::PowerDrawModel;
use pocolo_simserver::MachineSpec;
use pocolo_workloads::profiler::{profile_be, profile_lc, ProfilerConfig};
use pocolo_workloads::{BeApp, BeModel, LcApp, LcModel, LoadTrace};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::cluster_sim::ClusterSim;
use crate::faults::{FaultTimeline, ResilienceConfig, ServerFaultAction};
use crate::metrics::{ClusterSummary, ServerMetrics};
use crate::parallel::{self, Parallelism};
use crate::server_sim::ServerSim;

/// The policies of §V-D, plus the incremental-growth baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Random placement + power-oblivious (Heracles-style) server
    /// management. The paper's baseline.
    Random {
        /// Seed for both the placement permutation and the server policy.
        seed: u64,
    },
    /// Random placement + incremental-growth server control (the
    /// [`pocolo_manager::HeraclesController`]): grow a core and a way on
    /// low slack, trim on verified headroom, never consult a model.
    Heracles {
        /// Seed for the placement permutation.
        seed: u64,
    },
    /// Random placement + **P**ower **O**ptimized **M**anagement on the
    /// server.
    Pom {
        /// Seed for the placement permutation.
        seed: u64,
    },
    /// Power-optimized placement *and* server management — full Pocolo.
    Pocolo {
        /// Assignment solver (the paper uses an LP solver).
        solver: Solver,
    },
}

impl Policy {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Random { .. } => "Random",
            Policy::Heracles { .. } => "Heracles",
            Policy::Pom { .. } => "POM",
            Policy::Pocolo { .. } => "POColo",
        }
    }
}

/// Experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Seconds spent at each of the nine load levels.
    pub dwell_s: f64,
    /// Server-manager control period (paper: 1 s).
    pub manager_period_s: f64,
    /// Power-capper control period (paper: 100 ms).
    pub capper_period_s: f64,
    /// Relative power-meter noise.
    pub meter_noise: f64,
    /// Base RNG seed (profiling noise, meters).
    pub seed: u64,
    /// Profiler settings used when fitting models.
    pub profiler: ProfilerConfig,
    /// Worker-thread budget for sweep cells and per-server runs. Results
    /// are bit-identical across settings; only wall-clock time changes.
    pub parallelism: Parallelism,
    /// Fault scenario to inject, if any. The schedule is seeded from the
    /// spec's own seed (or [`ExperimentConfig::seed`] when absent), so the
    /// whole faulted run replays bit-identically.
    pub faults: Option<FaultSpec>,
    /// Arms the degraded-mode response (blind-feedback fallback, BE
    /// eviction with backoff, budget-shrink re-placement) whenever faults
    /// are injected. With `false` the faults still *happen* but the stack
    /// responds naively.
    pub resilience: bool,
}

impl ExperimentConfig {
    /// Total duration of the nine-level paper sweep this config drives.
    pub fn sweep_duration_s(&self) -> f64 {
        9.0 * self.dwell_s
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            dwell_s: 20.0,
            manager_period_s: 1.0,
            capper_period_s: 0.1,
            meter_noise: 0.01,
            seed: 0xC0C0,
            profiler: ProfilerConfig::default(),
            parallelism: Parallelism::default(),
            faults: None,
            resilience: true,
        }
    }
}

/// One server's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PairResult {
    /// The primary LC application.
    pub lc: String,
    /// The best-effort co-runner placed on this server.
    pub be: String,
    /// Accumulated metrics.
    pub metrics: ServerMetrics,
}

/// Outcome of one policy experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Policy display name.
    pub policy: String,
    /// Per-server pairings and metrics, in [`LcApp::ALL`] order.
    pub pairs: Vec<PairResult>,
    /// Cluster aggregation.
    pub summary: ClusterSummary,
}

pocolo_json::impl_to_json!(PairResult { lc, be, metrics });
pocolo_json::impl_to_json!(ExperimentResult {
    policy,
    pairs,
    summary
});

impl pocolo_json::FromJson for PairResult {
    fn from_json(v: &pocolo_json::Value) -> Option<Self> {
        Some(PairResult {
            lc: v["lc"].as_str()?.to_string(),
            be: v["be"].as_str()?.to_string(),
            metrics: ServerMetrics::from_json(&v["metrics"])?,
        })
    }
}

impl pocolo_json::FromJson for ExperimentResult {
    fn from_json(v: &pocolo_json::Value) -> Option<Self> {
        Some(ExperimentResult {
            policy: v["policy"].as_str()?.to_string(),
            pairs: Vec::from_json(&v["pairs"])?,
            summary: ClusterSummary::from_json(&v["summary"])?,
        })
    }
}

/// Fitted models for every application, reused across policies.
#[derive(Debug, Clone)]
pub struct FittedCluster {
    machine: MachineSpec,
    lc: Vec<(LcApp, LcModel, IndirectUtility)>,
    be: Vec<(BeApp, BeModel, IndirectUtility)>,
}

impl FittedCluster {
    /// Profiles and fits all eight applications on the paper's Xeon
    /// E5-2650 testbed machine.
    pub fn fit(profiler: &ProfilerConfig) -> Self {
        Self::fit_on(profiler, MachineSpec::xeon_e5_2650())
    }

    /// Profiles and fits all eight applications on an arbitrary machine —
    /// the per-SKU entry point heterogeneous fleets use (one fit per
    /// server class, see `crate::fleet::FittedFleet`).
    pub fn fit_on(profiler: &ProfilerConfig, machine: MachineSpec) -> Self {
        let power = PowerDrawModel::new(machine.clone());
        let space = machine.resource_space();
        let lc = LcApp::ALL
            .iter()
            .map(|&app| {
                let truth = LcModel::for_app(app, machine.clone());
                let samples = profile_lc(&truth, &power, &space, profiler);
                let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default())
                    .expect("LC profile grid is well-conditioned")
                    .utility;
                (app, truth, fitted)
            })
            .collect();
        let be = BeApp::ALL
            .iter()
            .map(|&app| {
                let truth = BeModel::for_app(app, machine.clone());
                let samples = profile_be(&truth, &power, &space, profiler);
                let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default())
                    .expect("BE profile grid is well-conditioned")
                    .utility;
                (app, truth, fitted)
            })
            .collect();
        FittedCluster { machine, lc, be }
    }

    /// The machine spec.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Fitted LC entries `(app, ground truth, fitted utility)`.
    pub fn lc(&self) -> &[(LcApp, LcModel, IndirectUtility)] {
        &self.lc
    }

    /// Fitted BE entries.
    pub fn be(&self) -> &[(BeApp, BeModel, IndirectUtility)] {
        &self.be
    }

    /// Cluster-manager server profiles from the fitted LC models.
    pub fn server_profiles(&self) -> Vec<ServerProfile> {
        self.lc
            .iter()
            .map(|(app, truth, fitted)| ServerProfile {
                label: app.name().to_string(),
                utility: fitted.clone(),
                power_cap: truth.provisioned_power(),
                peak_load: truth.peak_load_rps(),
            })
            .collect()
    }

    /// Fitted BE utilities labelled for the cluster manager.
    pub fn be_profiles(&self) -> Vec<(String, IndirectUtility)> {
        self.be
            .iter()
            .map(|(app, _, fitted)| (app.name().to_string(), fitted.clone()))
            .collect()
    }

    /// Decides the placement for a policy: which BE app runs on each LC
    /// server (index-aligned with [`FittedCluster::lc`]).
    pub fn placement(&self, policy: Policy) -> Vec<BeApp> {
        match policy {
            Policy::Random { seed } | Policy::Heracles { seed } | Policy::Pom { seed } => {
                let mut order: Vec<BeApp> = self.be.iter().map(|(a, _, _)| *a).collect();
                let mut rng = StdRng::seed_from_u64(seed);
                order.shuffle(&mut rng);
                order
            }
            Policy::Pocolo { solver } => {
                let matrix = PerfMatrixBuilder::new()
                    .build(&self.be_profiles(), &self.server_profiles())
                    .expect("fitted models are well-formed");
                let assignment =
                    pocolo_cluster::assign::solve(&matrix, solver).expect("4x4 is solvable");
                let mut out = vec![BeApp::Lstm; self.lc.len()];
                for (row, col) in assignment.pairs {
                    out[col] = self.be[row].0;
                }
                out
            }
        }
    }
}

/// Runs one policy through the full load sweep and returns its results.
pub fn run_experiment(policy: Policy, config: &ExperimentConfig) -> ExperimentResult {
    let fitted = FittedCluster::fit(&config.profiler);
    run_experiment_with(policy, config, &fitted)
}

/// Like [`run_experiment`] but reuses pre-fitted models (so policy
/// comparisons share identical fits).
pub fn run_experiment_with(
    policy: Policy,
    config: &ExperimentConfig,
    fitted: &FittedCluster,
) -> ExperimentResult {
    run_with_trace(
        policy,
        config,
        fitted,
        LoadTrace::paper_sweep(config.dwell_s),
        9.0 * config.dwell_s,
        config.parallelism,
    )
}

/// Runs a policy at each load level separately (constant-load runs of
/// `config.dwell_s` each), returning `(level, summary)` pairs — the
/// per-level detail behind the paper's averaged Fig. 12/13 bars.
pub fn run_level_sweep(
    policy: Policy,
    config: &ExperimentConfig,
    fitted: &FittedCluster,
    levels: &[f64],
) -> Vec<(f64, ClusterSummary)> {
    run_policy_sweeps(&[policy], config, fitted, levels)
        .pop()
        .expect("one policy in, one sweep out")
}

/// Runs every (policy, load level) cell of a sweep, fanning the
/// independent cells out across `config.parallelism` worker threads, and
/// returns one `(level, summary)` list per policy in input order.
///
/// Each cell is a self-contained seeded simulation, so the output is
/// bit-identical to a serial run; within a cell the cluster itself runs
/// serially to avoid oversubscribing the worker pool.
pub fn run_policy_sweeps(
    policies: &[Policy],
    config: &ExperimentConfig,
    fitted: &FittedCluster,
    levels: &[f64],
) -> Vec<Vec<(f64, ClusterSummary)>> {
    let cells: Vec<(usize, Policy, f64)> = policies
        .iter()
        .enumerate()
        .flat_map(|(p, &policy)| levels.iter().map(move |&level| (p, policy, level)))
        .collect();
    let results = parallel::map(config.parallelism, cells, |(p, policy, level)| {
        let result = run_with_trace(
            policy,
            config,
            fitted,
            LoadTrace::Constant(level),
            config.dwell_s,
            Parallelism::Serial,
        );
        (p, level, result.summary)
    });
    let mut sweeps: Vec<Vec<(f64, ClusterSummary)>> = vec![Vec::new(); policies.len()];
    for (p, level, summary) in results {
        sweeps[p].push((level, summary));
    }
    sweeps
}

/// Cluster-wide eviction ranks for the current placement: each server's
/// co-runner is ranked by its performance-matrix value ascending, so the
/// *lowest*-value pairing is shed first under pressure.
pub fn eviction_ranks(fitted: &FittedCluster, placement: &[BeApp]) -> Vec<usize> {
    let matrix =
        match PerfMatrixBuilder::new().build(&fitted.be_profiles(), &fitted.server_profiles()) {
            Ok(m) => m,
            Err(_) => return vec![0; placement.len()],
        };
    let values: Vec<f64> = placement
        .iter()
        .enumerate()
        .map(|(server, be_app)| {
            fitted
                .be
                .iter()
                .position(|(a, _, _)| a == be_app)
                .map(|row| matrix.value(row, server))
                .unwrap_or(f64::NEG_INFINITY)
        })
        .collect();
    let order = eviction_order(&values);
    let mut ranks = vec![0; placement.len()];
    for (rank, &server) in order.iter().enumerate() {
        ranks[server] = rank;
    }
    ranks
}

/// For every brownout in the plan, re-solves the placement on the shrunk
/// budget (with hysteresis) and schedules the resulting migrations as
/// [`ServerFaultAction::ReplaceBe`] actions at the brownout start. The
/// replan is computed *up front* from the fitted models, so the faulted
/// run stays a static per-server event schedule.
fn schedule_brownout_migrations(
    timeline: &mut FaultTimeline,
    plan: &pocolo_faults::FaultPlan,
    fitted: &FittedCluster,
    placement: &[BeApp],
    cfg: &ResilienceConfig,
) {
    let manager = ClusterManager::new(fitted.be_profiles(), fitted.server_profiles());
    let Ok(matrix) = manager.performance_matrix() else {
        return;
    };
    let pairs: Vec<(usize, usize)> = placement
        .iter()
        .enumerate()
        .filter_map(|(server, be_app)| {
            fitted
                .be
                .iter()
                .position(|(a, _, _)| a == be_app)
                .map(|row| (row, server))
        })
        .collect();
    let incumbent = Assignment::new(pairs.clone(), matrix.assignment_value(&pairs));
    for event in plan.events() {
        let FaultKind::BrownoutStart { cap_factor } = &event.kind else {
            continue;
        };
        let Ok(intents) = manager.migration_intents(
            *cap_factor,
            &incumbent,
            cfg.replan_hysteresis,
            Solver::Hungarian,
        ) else {
            continue;
        };
        for (row, server) in intents {
            let (_, truth, fit) = &fitted.be[row];
            timeline.push(
                server,
                event.at_s,
                ServerFaultAction::ReplaceBe {
                    be_truth: Some(Box::new(truth.clone())),
                    be_fitted: Some(Box::new(fit.clone())),
                    pause_s: cfg.readmit_pause_s,
                },
            );
        }
    }
}

/// Compiles the per-server fault timeline and eviction ranks for a run:
/// the plan drawn from the spec's seed (falling back to `base_seed`),
/// plus — when `resilience` is armed — the up-front brownout replan
/// migrations. Deterministic in its arguments, so the in-process engine
/// and a remote agent that compiles its own copy agree event-for-event.
pub fn compile_fault_plan(
    spec: &FaultSpec,
    base_seed: u64,
    duration_s: f64,
    fitted: &FittedCluster,
    placement: &[BeApp],
    resilience: bool,
) -> (FaultTimeline, Vec<usize>) {
    let n = placement.len();
    let fault_seed = spec.seed.unwrap_or(base_seed);
    let plan = spec.scenario.plan(fault_seed, duration_s, n);
    let mut timeline = FaultTimeline::compile(&plan, n);
    let ranks = eviction_ranks(fitted, placement);
    if resilience {
        schedule_brownout_migrations(
            &mut timeline,
            &plan,
            fitted,
            placement,
            &ResilienceConfig::default(),
        );
    }
    (timeline, ranks)
}

/// Everything one server slot needs to rebuild its [`ServerSim`]
/// bit-identically on either side of a process boundary. The in-process
/// engine and the wire-path agent both construct their backends through
/// this spec, so the two paths cannot drift.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotSpec {
    /// Server index (in [`LcApp::ALL`] order).
    pub server: usize,
    /// The policy governing controller choice and proactive BE planning.
    pub policy: Policy,
    /// The best-effort co-runner placed on this server.
    pub be: BeApp,
    /// Cluster-wide eviction rank of this pairing (ascending
    /// performance-matrix value; only consulted when resilience is armed).
    pub rank: usize,
    /// Load trace driving the primary.
    pub trace: LoadTrace,
    /// Relative power-meter noise.
    pub meter_noise: f64,
    /// Base experiment seed; the slot derives its own RNG stream from it.
    pub seed: u64,
    /// Whether faults are injected this run (arms the fault physics even
    /// when the resilient response is disabled).
    pub faulted: bool,
    /// Whether the degraded-mode response is armed.
    pub resilience: bool,
    /// Record per-epoch controller decisions for tracing.
    pub record_decisions: bool,
}

impl SlotSpec {
    /// Builds the server backend this spec describes from locally-fitted
    /// models.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range for the fitted cluster.
    pub fn build(&self, fitted: &FittedCluster) -> ServerSim {
        assert!(
            self.server < fitted.lc.len(),
            "slot {} out of range for a {}-server cluster",
            self.server,
            fitted.lc.len()
        );
        let (_, truth, fit) = &fitted.lc[self.server];
        let i = self.server;
        let be_truth = fitted
            .be
            .iter()
            .find(|(a, _, _)| *a == self.be)
            .map(|(_, t, _)| t.clone());
        let lc_policy = match self.policy {
            // Power-oblivious baseline: a feasible indifference-curve
            // point chosen without regard to power, re-drawn every
            // control epoch.
            Policy::Random { seed } => LcPolicy::heracles_random(seed ^ (i as u64)),
            // The incremental controller never consults the policy.
            Policy::Heracles { .. } | Policy::Pom { .. } | Policy::Pocolo { .. } => {
                LcPolicy::PowerOptimized
            }
        };
        let be_fitted = fitted
            .be
            .iter()
            .find(|(a, _, _)| *a == self.be)
            .map(|(_, _, f)| f.clone());
        let sim = ServerSim::new(
            truth.clone(),
            fit.clone(),
            be_truth,
            lc_policy,
            self.trace.clone(),
            truth.provisioned_power(),
            self.meter_noise,
            self.seed ^ ((i as u64) << 8),
        );
        let sim = match (self.policy, be_fitted) {
            // Power-optimized policies plan the secondary proactively
            // with the fitted model; the baselines are purely reactive.
            (Policy::Pom { .. } | Policy::Pocolo { .. }, Some(bf)) => sim.with_proactive_be(bf),
            _ => sim,
        };
        // The controller swap must precede resilience arming, which
        // configures whichever controller is installed.
        let sim = match self.policy {
            Policy::Heracles { .. } => sim.with_incremental_control(),
            _ => sim,
        };
        let sim = if !self.faulted {
            sim
        } else if self.resilience {
            sim.with_resilience(ResilienceConfig::default(), self.rank)
        } else {
            sim.with_fault_physics()
        };
        if self.record_decisions {
            sim.with_decision_log()
        } else {
            sim
        }
    }
}

/// One server's decision trace from a traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTrace {
    /// Server index (in [`LcApp::ALL`] order).
    pub server: usize,
    /// The primary LC application.
    pub lc: String,
    /// The best-effort co-runner placed on this server.
    pub be: String,
    /// Per-epoch decision records, in tick order.
    pub records: Vec<pocolo_manager::DecisionRecord>,
}

/// Like [`run_experiment_with`], but records every controller decision
/// and returns the per-server [`DecisionTrace`]s alongside the result
/// (the CLI's `--decision-log` source). The result itself is
/// bit-identical to the untraced run.
pub fn run_experiment_traced(
    policy: Policy,
    config: &ExperimentConfig,
    fitted: &FittedCluster,
) -> (ExperimentResult, Vec<DecisionTrace>) {
    run_with_trace_recorded(
        policy,
        config,
        fitted,
        LoadTrace::paper_sweep(config.dwell_s),
        9.0 * config.dwell_s,
        config.parallelism,
        true,
    )
}

fn run_with_trace(
    policy: Policy,
    config: &ExperimentConfig,
    fitted: &FittedCluster,
    trace: LoadTrace,
    duration_s: f64,
    parallelism: Parallelism,
) -> ExperimentResult {
    run_with_trace_recorded(
        policy,
        config,
        fitted,
        trace,
        duration_s,
        parallelism,
        false,
    )
    .0
}

/// Shared engine tail: wires compiled server backends and a fault
/// timeline into a [`ClusterSim`] and runs it to completion. Both the
/// homogeneous experiment path and the heterogeneous fleet path
/// (`crate::fleet`) end here, so the two cannot drift.
pub(crate) fn run_cluster(
    servers: Vec<ServerSim>,
    timeline: FaultTimeline,
    manager_period_s: f64,
    capper_period_s: f64,
    duration_s: f64,
    parallelism: Parallelism,
) -> ClusterSim {
    let mut cluster =
        ClusterSim::new(servers, manager_period_s, capper_period_s).with_faults(timeline);
    cluster.run_with(duration_s, parallelism);
    cluster
}

#[allow(clippy::too_many_arguments)]
fn run_with_trace_recorded(
    policy: Policy,
    config: &ExperimentConfig,
    fitted: &FittedCluster,
    trace: LoadTrace,
    duration_s: f64,
    parallelism: Parallelism,
    record_decisions: bool,
) -> (ExperimentResult, Vec<DecisionTrace>) {
    let placement = fitted.placement(policy);
    let n = fitted.lc.len();
    let (timeline, ranks) = match &config.faults {
        Some(spec) => compile_fault_plan(
            spec,
            config.seed,
            duration_s,
            fitted,
            &placement,
            config.resilience,
        ),
        None => (FaultTimeline::empty(n), vec![0; n]),
    };
    let servers: Vec<ServerSim> = (0..n)
        .map(|i| {
            SlotSpec {
                server: i,
                policy,
                be: placement[i],
                rank: ranks[i],
                trace: trace.clone(),
                meter_noise: config.meter_noise,
                seed: config.seed,
                faulted: config.faults.is_some(),
                resilience: config.resilience,
                record_decisions,
            }
            .build(fitted)
        })
        .collect();
    let cluster = run_cluster(
        servers,
        timeline,
        config.manager_period_s,
        config.capper_period_s,
        duration_s,
        parallelism,
    );

    let pairs = fitted
        .lc
        .iter()
        .zip(cluster.metrics())
        .enumerate()
        .map(|(i, ((app, _, _), metrics))| PairResult {
            lc: app.name().to_string(),
            be: placement[i].name().to_string(),
            metrics,
        })
        .collect();
    let traces = if record_decisions {
        cluster
            .servers()
            .iter()
            .enumerate()
            .map(|(i, sim)| DecisionTrace {
                server: i,
                lc: fitted.lc[i].0.name().to_string(),
                be: placement[i].name().to_string(),
                records: sim.decision_records().to_vec(),
            })
            .collect()
    } else {
        Vec::new()
    };
    let result = ExperimentResult {
        policy: policy.name().to_string(),
        pairs,
        summary: cluster.summary(),
    };
    (result, traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig {
            dwell_s: 6.0,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn placement_policies_are_valid_permutations() {
        let fitted = FittedCluster::fit(&ProfilerConfig::default());
        for policy in [
            Policy::Random { seed: 3 },
            Policy::Pom { seed: 3 },
            Policy::Pocolo {
                solver: Solver::Hungarian,
            },
        ] {
            let p = fitted.placement(policy);
            let mut names: Vec<&str> = p.iter().map(|a| a.name()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), 4, "{policy:?} must place each BE app once");
        }
    }

    #[test]
    fn pocolo_placement_matches_cluster_manager_pairings() {
        let fitted = FittedCluster::fit(&ProfilerConfig::default());
        let p = fitted.placement(Policy::Pocolo {
            solver: Solver::Hungarian,
        });
        // lc order: img-dnn, sphinx, xapian, tpcc.
        assert_eq!(p[0], BeApp::Lstm);
        assert_eq!(p[1], BeApp::Graph);
    }

    #[test]
    fn policy_ordering_matches_paper() {
        // The headline §V-D result: POColo > POM > Random on BE throughput,
        // and Random draws the most power.
        let config = quick_config();
        let fitted = FittedCluster::fit(&config.profiler);
        let random = run_experiment_with(Policy::Random { seed: 1 }, &config, &fitted);
        let pom = run_experiment_with(Policy::Pom { seed: 1 }, &config, &fitted);
        let pocolo = run_experiment_with(
            Policy::Pocolo {
                solver: Solver::Hungarian,
            },
            &config,
            &fitted,
        );
        assert!(
            pom.summary.avg_be_throughput > random.summary.avg_be_throughput,
            "POM {} should beat Random {}",
            pom.summary.avg_be_throughput,
            random.summary.avg_be_throughput
        );
        assert!(
            pocolo.summary.avg_be_throughput > pom.summary.avg_be_throughput * 0.99,
            "POColo {} should be at least POM {}",
            pocolo.summary.avg_be_throughput,
            pom.summary.avg_be_throughput
        );
        assert!(
            random.summary.avg_power_utilization > pom.summary.avg_power_utilization,
            "Random util {} should exceed POM {}",
            random.summary.avg_power_utilization,
            pom.summary.avg_power_utilization
        );
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        // The tentpole determinism guarantee: the worker-thread fan-out
        // must not change a single bit of any result, for any policy.
        let fitted = FittedCluster::fit(&ProfilerConfig::default());
        let levels = [0.2, 0.5, 0.8];
        for policy in [
            Policy::Random { seed: 11 },
            Policy::Pom { seed: 11 },
            Policy::Pocolo {
                solver: Solver::Hungarian,
            },
        ] {
            let serial_cfg = ExperimentConfig {
                dwell_s: 4.0,
                parallelism: Parallelism::Serial,
                ..ExperimentConfig::default()
            };
            let parallel_cfg = ExperimentConfig {
                parallelism: Parallelism::Fixed(4),
                ..serial_cfg.clone()
            };
            let serial = run_level_sweep(policy, &serial_cfg, &fitted, &levels);
            let fanned = run_level_sweep(policy, &parallel_cfg, &fitted, &levels);
            assert_eq!(serial, fanned, "{policy:?} sweep diverged under Fixed(4)");

            let serial_full = run_experiment_with(policy, &serial_cfg, &fitted);
            let fanned_full = run_experiment_with(policy, &parallel_cfg, &fitted);
            assert_eq!(
                serial_full, fanned_full,
                "{policy:?} experiment diverged under Fixed(4)"
            );
        }
    }

    #[test]
    fn policy_sweeps_cover_the_cross_product() {
        let fitted = FittedCluster::fit(&ProfilerConfig::default());
        let config = ExperimentConfig {
            dwell_s: 3.0,
            ..ExperimentConfig::default()
        };
        let policies = [Policy::Random { seed: 2 }, Policy::Pom { seed: 2 }];
        let levels = [0.3, 0.7];
        let sweeps = run_policy_sweeps(&policies, &config, &fitted, &levels);
        assert_eq!(sweeps.len(), 2);
        for (sweep, policy) in sweeps.iter().zip(&policies) {
            let got: Vec<f64> = sweep.iter().map(|(l, _)| *l).collect();
            assert_eq!(got, levels, "{policy:?} levels out of order");
            // Each cell matches an independent single-policy run.
            let solo = run_level_sweep(*policy, &config, &fitted, &levels);
            assert_eq!(*sweep, solo);
        }
    }

    #[test]
    fn faulted_experiment_is_bit_identical_across_parallelism() {
        use pocolo_faults::Scenario;
        let fitted = FittedCluster::fit(&ProfilerConfig::default());
        for scenario in Scenario::ALL {
            for resilience in [false, true] {
                let serial_cfg = ExperimentConfig {
                    dwell_s: 3.0,
                    parallelism: Parallelism::Serial,
                    faults: Some(FaultSpec {
                        scenario,
                        seed: Some(5),
                    }),
                    resilience,
                    ..ExperimentConfig::default()
                };
                let parallel_cfg = ExperimentConfig {
                    parallelism: Parallelism::Fixed(4),
                    ..serial_cfg.clone()
                };
                let policy = Policy::Pocolo {
                    solver: Solver::Hungarian,
                };
                let serial = run_experiment_with(policy, &serial_cfg, &fitted);
                let fanned = run_experiment_with(policy, &parallel_cfg, &fitted);
                assert_eq!(
                    serial, fanned,
                    "{scenario:?} resilience={resilience} diverged under Fixed(4)"
                );
            }
        }
    }

    #[test]
    fn fault_seed_controls_the_schedule() {
        use pocolo_faults::Scenario;
        let fitted = FittedCluster::fit(&ProfilerConfig::default());
        let cfg = |seed: u64| ExperimentConfig {
            dwell_s: 3.0,
            faults: Some(FaultSpec {
                scenario: Scenario::Chaos,
                seed: Some(seed),
            }),
            ..ExperimentConfig::default()
        };
        let policy = Policy::Pocolo {
            solver: Solver::Hungarian,
        };
        let a = run_experiment_with(policy, &cfg(1), &fitted);
        let b = run_experiment_with(policy, &cfg(1), &fitted);
        assert_eq!(a, b, "same fault seed must replay bit-identically");
        let c = run_experiment_with(policy, &cfg(2), &fitted);
        assert_ne!(
            a.summary, c.summary,
            "a different fault seed should draw a different schedule"
        );
    }

    #[test]
    fn results_are_reproducible() {
        let config = quick_config();
        let fitted = FittedCluster::fit(&config.profiler);
        let a = run_experiment_with(Policy::Pom { seed: 9 }, &config, &fitted);
        let b = run_experiment_with(Policy::Pom { seed: 9 }, &config, &fitted);
        assert_eq!(a, b);
    }

    #[test]
    fn slo_is_respected_under_all_policies() {
        let config = quick_config();
        let fitted = FittedCluster::fit(&config.profiler);
        for policy in [
            Policy::Random { seed: 2 },
            Policy::Pom { seed: 2 },
            Policy::Pocolo { solver: Solver::Lp },
        ] {
            let r = run_experiment_with(policy, &config, &fitted);
            assert!(
                r.summary.worst_violation_frac < 0.25,
                "{}: violations {} should be transient (load-step edges)",
                r.policy,
                r.summary.worst_violation_frac
            );
        }
    }
}

#[cfg(test)]
mod calibration {
    use super::*;

    #[test]
    #[ignore = "calibration report"]
    fn print_policy_comparison() {
        let config = ExperimentConfig {
            dwell_s: 10.0,
            ..ExperimentConfig::default()
        };
        let fitted = FittedCluster::fit(&config.profiler);
        for policy in [
            Policy::Random { seed: 1 },
            Policy::Pom { seed: 1 },
            Policy::Pocolo {
                solver: pocolo_cluster::Solver::Hungarian,
            },
        ] {
            let r = run_experiment_with(policy, &config, &fitted);
            println!(
                "{:8} thpt={:.4} util={:.4} energy={:.0} e/thpt={:.0} cap%={:.3} viol={:.3}",
                r.policy,
                r.summary.avg_be_throughput,
                r.summary.avg_power_utilization,
                r.summary.total_energy.0,
                r.summary.energy_per_throughput,
                r.summary.avg_capping_frac,
                r.summary.worst_violation_frac,
            );
            for p in &r.pairs {
                println!(
                    "    {:8} + {:6} thpt={:.4} util={:.4} cap%={:.3}",
                    p.lc,
                    p.be,
                    p.metrics.be_throughput_avg,
                    p.metrics.power_utilization(),
                    p.metrics.capping_frac
                );
            }
        }
    }
}

#[cfg(test)]
mod level_sweep_tests {
    use super::*;

    #[test]
    fn level_sweep_shapes() {
        let config = ExperimentConfig {
            dwell_s: 5.0,
            ..ExperimentConfig::default()
        };
        let fitted = FittedCluster::fit(&config.profiler);
        let levels = [0.1, 0.5, 0.9];
        let sweep = run_level_sweep(
            Policy::Pocolo {
                solver: pocolo_cluster::Solver::Hungarian,
            },
            &config,
            &fitted,
            &levels,
        );
        assert_eq!(sweep.len(), 3);
        // BE throughput falls as the primaries' load rises.
        assert!(
            sweep[0].1.avg_be_throughput > sweep[2].1.avg_be_throughput,
            "10% load {} should beat 90% load {}",
            sweep[0].1.avg_be_throughput,
            sweep[2].1.avg_be_throughput
        );
        for (level, summary) in &sweep {
            assert!(
                summary.worst_violation_frac < 0.3,
                "level {level}: violations {}",
                summary.worst_violation_frac
            );
        }
    }
}

//! Simulation of the full four-server cluster via the event engine.

use crate::engine::Engine;
use crate::faults::FaultTimeline;
use crate::metrics::{ClusterSummary, ServerMetrics};
use crate::parallel::{self, Parallelism};
use crate::server_sim::ServerSim;

/// Events driving the cluster simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A server's 1 s manager tick.
    ManagerTick {
        /// Index into the server list.
        server: usize,
    },
    /// A server's 100 ms capper tick.
    CapperTick {
        /// Index into the server list.
        server: usize,
    },
    /// A pre-compiled fault action fires on a server.
    Fault {
        /// Index into the server list.
        server: usize,
        /// Index into that server's [`FaultTimeline`] action list.
        idx: usize,
    },
}

/// A set of colocated servers advanced in lockstep by the event engine.
#[derive(Debug)]
pub struct ClusterSim {
    servers: Vec<ServerSim>,
    manager_period_s: f64,
    capper_period_s: f64,
    faults: FaultTimeline,
}

impl ClusterSim {
    /// Builds a cluster simulation over pre-assembled server sims.
    ///
    /// # Panics
    ///
    /// Panics on an empty server list or non-positive periods.
    pub fn new(servers: Vec<ServerSim>, manager_period_s: f64, capper_period_s: f64) -> Self {
        assert!(!servers.is_empty(), "cluster needs at least one server");
        assert!(
            manager_period_s > 0.0 && capper_period_s > 0.0,
            "control periods must be positive"
        );
        ClusterSim {
            servers,
            manager_period_s,
            capper_period_s,
            faults: FaultTimeline::default(),
        }
    }

    /// Installs a pre-compiled fault timeline. Every action is a static,
    /// per-server event, so the faulted run stays bit-identical between
    /// the serial queue and the parallel fan-out.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultTimeline) -> Self {
        self.faults = faults;
        self
    }

    /// The simulated servers.
    pub fn servers(&self) -> &[ServerSim] {
        &self.servers
    }

    /// Runs the simulation for `duration_s` simulated seconds.
    pub fn run(&mut self, duration_s: f64) {
        let mut engine: Engine<ClusterEvent> = Engine::new();
        for idx in 0..self.servers.len() {
            engine.schedule_at_seconds(0.0, ClusterEvent::ManagerTick { server: idx });
            engine.schedule_at_seconds(
                self.capper_period_s,
                ClusterEvent::CapperTick { server: idx },
            );
        }
        // Fault actions are init-scheduled, so at a coincident timestamp
        // they pop before the dynamically-rescheduled ticks — the same
        // relative order the per-server projection produces.
        for idx in 0..self.servers.len() {
            for (i, ev) in self.faults.server_events(idx).iter().enumerate() {
                engine.schedule_at_seconds(
                    ev.at_s,
                    ClusterEvent::Fault {
                        server: idx,
                        idx: i,
                    },
                );
            }
        }
        while let Some(peek) = engine.peek_time_seconds() {
            if peek > duration_s + 1e-9 {
                break;
            }
            let entry = engine.pop().expect("peeked event exists");
            let now = engine.now_seconds();
            match entry.event {
                ClusterEvent::ManagerTick { server } => {
                    self.servers[server].on_manager_tick(now);
                    engine.schedule_in(self.manager_period_s, ClusterEvent::ManagerTick { server });
                }
                ClusterEvent::CapperTick { server } => {
                    self.servers[server].on_capper_tick(self.capper_period_s);
                    engine.schedule_in(self.capper_period_s, ClusterEvent::CapperTick { server });
                }
                ClusterEvent::Fault { server, idx } => {
                    let action = self.faults.server_events(server)[idx].action.clone();
                    self.servers[server].apply_fault(&action, now);
                }
            }
        }
    }

    /// Runs the simulation for `duration_s` simulated seconds, fanning the
    /// servers out across worker threads.
    ///
    /// Events only ever touch their own server, and within one server the
    /// tick ordering (manager before capper at coincident times, preserved
    /// by schedule order) and the microsecond clock arithmetic are the same
    /// as in the shared event queue of [`ClusterSim::run`] — so the result
    /// is bit-identical to a serial run regardless of worker count.
    pub fn run_with(&mut self, duration_s: f64, parallelism: Parallelism) {
        if matches!(parallelism, Parallelism::Serial) {
            // Reference path: the single shared event queue.
            self.run(duration_s);
            return;
        }
        let manager_period_s = self.manager_period_s;
        let capper_period_s = self.capper_period_s;
        let faults = self.faults.clone();
        let servers = std::mem::take(&mut self.servers);
        let indexed: Vec<(usize, ServerSim)> = servers.into_iter().enumerate().collect();
        let done = parallel::map(parallelism, indexed, move |(idx, mut server)| {
            run_one_server(
                &mut server,
                faults.server_events(idx),
                manager_period_s,
                capper_period_s,
                duration_s,
            );
            server
        });
        self.servers = done;
    }

    /// Per-server metrics snapshots.
    pub fn metrics(&self) -> Vec<ServerMetrics> {
        self.servers.iter().map(|s| s.metrics().clone()).collect()
    }

    /// Aggregated cluster summary.
    pub fn summary(&self) -> ClusterSummary {
        ClusterSummary::aggregate(&self.metrics()).expect("cluster is non-empty")
    }
}

/// Advances a single server through its own event queue — the projection
/// of the shared cluster queue onto one server's events.
fn run_one_server(
    server: &mut ServerSim,
    faults: &[crate::faults::ServerFaultEvent],
    manager_period_s: f64,
    capper_period_s: f64,
    duration_s: f64,
) {
    run_server_projection(
        server,
        faults,
        manager_period_s,
        capper_period_s,
        duration_s,
        |_, _| true,
    );
}

/// Advances a single server through its own event queue — the projection
/// of the shared cluster queue onto one server's events — invoking
/// `on_epoch(now_s, server)` after every manager tick. That hook is the
/// natural control-epoch cadence for a remote agent: telemetry goes out
/// (and directives come back) between manager decisions, and because the
/// queue below is byte-for-byte the one [`ClusterSim::run_with`] fans
/// out, a wire-driven slot replays the in-process engine bit-identically.
/// Returning `false` from the hook abandons the projection (an agent
/// dying mid-run); the engine stops with whatever state has accumulated.
pub fn run_server_projection(
    server: &mut ServerSim,
    faults: &[crate::faults::ServerFaultEvent],
    manager_period_s: f64,
    capper_period_s: f64,
    duration_s: f64,
    mut on_epoch: impl FnMut(f64, &mut ServerSim) -> bool,
) {
    enum Tick {
        Manager,
        Capper,
        Fault(usize),
    }
    let mut engine: Engine<Tick> = Engine::new();
    engine.schedule_at_seconds(0.0, Tick::Manager);
    engine.schedule_at_seconds(capper_period_s, Tick::Capper);
    // Same init-before-reschedule ordering as the shared queue: at a
    // coincident timestamp a fault action fires before the ticks.
    for (i, ev) in faults.iter().enumerate() {
        engine.schedule_at_seconds(ev.at_s, Tick::Fault(i));
    }
    while let Some(peek) = engine.peek_time_seconds() {
        if peek > duration_s + 1e-9 {
            break;
        }
        let entry = engine.pop().expect("peeked event exists");
        let now = engine.now_seconds();
        match entry.event {
            Tick::Manager => {
                server.on_manager_tick(now);
                engine.schedule_in(manager_period_s, Tick::Manager);
                if !on_epoch(now, server) {
                    return;
                }
            }
            Tick::Capper => {
                server.on_capper_tick(capper_period_s);
                engine.schedule_in(capper_period_s, Tick::Capper);
            }
            Tick::Fault(i) => {
                server.apply_fault(&faults[i].action, now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_core::fit::{fit_indirect_utility, FitOptions};
    use pocolo_manager::LcPolicy;
    use pocolo_simserver::power::PowerDrawModel;
    use pocolo_simserver::MachineSpec;
    use pocolo_workloads::profiler::{profile_lc, ProfilerConfig};
    use pocolo_workloads::{BeApp, BeModel, LcApp, LcModel, LoadTrace};

    fn server(lc: LcApp, be: BeApp) -> ServerSim {
        let machine = MachineSpec::xeon_e5_2650();
        let truth = LcModel::for_app(lc, machine.clone());
        let power = PowerDrawModel::new(machine.clone());
        let space = machine.resource_space();
        let samples = profile_lc(&truth, &power, &space, &ProfilerConfig::default());
        let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default())
            .unwrap()
            .utility;
        let cap = truth.provisioned_power();
        ServerSim::new(
            truth,
            fitted,
            Some(BeModel::for_app(be, machine)),
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(0.4),
            cap,
            0.01,
            7,
        )
    }

    #[test]
    fn runs_all_servers_for_the_duration() {
        let mut cluster = ClusterSim::new(
            vec![
                server(LcApp::Xapian, BeApp::Rnn),
                server(LcApp::Sphinx, BeApp::Graph),
            ],
            1.0,
            0.1,
        );
        cluster.run(10.0);
        for m in cluster.metrics() {
            assert!(
                (m.duration_s - 10.0).abs() < 0.2,
                "covered {}",
                m.duration_s
            );
            assert!(m.samples >= 99);
        }
        let s = cluster.summary();
        assert!(s.avg_be_throughput > 0.0);
        assert!(s.avg_power_utilization > 0.3 && s.avg_power_utilization <= 1.05);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_panics() {
        let _ = ClusterSim::new(vec![], 1.0, 0.1);
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let build = || {
            ClusterSim::new(
                vec![
                    server(LcApp::Xapian, BeApp::Rnn),
                    server(LcApp::Sphinx, BeApp::Graph),
                    server(LcApp::TpcC, BeApp::Lstm),
                    server(LcApp::ImgDnn, BeApp::Pbzip),
                ],
                1.0,
                0.1,
            )
        };
        let mut serial = build();
        serial.run_with(8.0, Parallelism::Serial);
        let mut fanned = build();
        fanned.run_with(8.0, Parallelism::Fixed(4));
        assert_eq!(serial.metrics(), fanned.metrics());
        let mut auto = build();
        auto.run_with(8.0, Parallelism::Auto);
        assert_eq!(serial.metrics(), auto.metrics());
    }

    #[test]
    fn faulted_parallel_run_is_bit_identical_to_serial() {
        use pocolo_faults::FaultPlan;
        let plan = FaultPlan::new(3)
            .with_brownout(2.0, 3.0, 0.6)
            .with_crash(1, 3.0, 2.0)
            .with_telemetry_dropout(Some(0), 1.0, 4.0)
            .with_model_drift(None, 4.0, 0.2);
        let build = |resilient: bool| {
            let servers: Vec<ServerSim> = vec![
                server(LcApp::Xapian, BeApp::Rnn),
                server(LcApp::Sphinx, BeApp::Graph),
                server(LcApp::TpcC, BeApp::Lstm),
                server(LcApp::ImgDnn, BeApp::Pbzip),
            ]
            .into_iter()
            .enumerate()
            .map(|(rank, s)| {
                if resilient {
                    s.with_resilience(crate::faults::ResilienceConfig::default(), rank)
                } else {
                    s.with_fault_physics()
                }
            })
            .collect();
            ClusterSim::new(servers, 1.0, 0.1)
                .with_faults(crate::faults::FaultTimeline::compile(&plan, 4))
        };
        for resilient in [false, true] {
            let mut serial = build(resilient);
            serial.run_with(8.0, Parallelism::Serial);
            let mut fanned = build(resilient);
            fanned.run_with(8.0, Parallelism::Fixed(4));
            assert_eq!(
                serial.metrics(),
                fanned.metrics(),
                "resilient={resilient} fan-out diverged from serial"
            );
            assert!(
                serial.metrics().iter().any(|m| m.fault_time_s() > 0.0),
                "faults should have been active"
            );
        }
    }

    #[test]
    fn deterministic_given_same_seeds() {
        let mut a = ClusterSim::new(vec![server(LcApp::TpcC, BeApp::Lstm)], 1.0, 0.1);
        let mut b = ClusterSim::new(vec![server(LcApp::TpcC, BeApp::Lstm)], 1.0, 0.1);
        a.run(5.0);
        b.run(5.0);
        assert_eq!(a.metrics(), b.metrics());
    }
}

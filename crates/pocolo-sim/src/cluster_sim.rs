//! Simulation of the full four-server cluster via the event engine.

use serde::{Deserialize, Serialize};

use crate::engine::Engine;
use crate::metrics::{ClusterSummary, ServerMetrics};
use crate::server_sim::ServerSim;

/// Events driving the cluster simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterEvent {
    /// A server's 1 s manager tick.
    ManagerTick {
        /// Index into the server list.
        server: usize,
    },
    /// A server's 100 ms capper tick.
    CapperTick {
        /// Index into the server list.
        server: usize,
    },
}

/// A set of colocated servers advanced in lockstep by the event engine.
#[derive(Debug)]
pub struct ClusterSim {
    servers: Vec<ServerSim>,
    manager_period_s: f64,
    capper_period_s: f64,
}

impl ClusterSim {
    /// Builds a cluster simulation over pre-assembled server sims.
    ///
    /// # Panics
    ///
    /// Panics on an empty server list or non-positive periods.
    pub fn new(servers: Vec<ServerSim>, manager_period_s: f64, capper_period_s: f64) -> Self {
        assert!(!servers.is_empty(), "cluster needs at least one server");
        assert!(
            manager_period_s > 0.0 && capper_period_s > 0.0,
            "control periods must be positive"
        );
        ClusterSim {
            servers,
            manager_period_s,
            capper_period_s,
        }
    }

    /// The simulated servers.
    pub fn servers(&self) -> &[ServerSim] {
        &self.servers
    }

    /// Runs the simulation for `duration_s` simulated seconds.
    pub fn run(&mut self, duration_s: f64) {
        let mut engine: Engine<ClusterEvent> = Engine::new();
        for idx in 0..self.servers.len() {
            engine.schedule_at_seconds(0.0, ClusterEvent::ManagerTick { server: idx });
            engine.schedule_at_seconds(
                self.capper_period_s,
                ClusterEvent::CapperTick { server: idx },
            );
        }
        while let Some(peek) = engine.peek_time_seconds() {
            if peek > duration_s + 1e-9 {
                break;
            }
            let entry = engine.pop().expect("peeked event exists");
            let now = engine.now_seconds();
            match entry.event {
                ClusterEvent::ManagerTick { server } => {
                    self.servers[server].on_manager_tick(now);
                    engine.schedule_in(self.manager_period_s, ClusterEvent::ManagerTick { server });
                }
                ClusterEvent::CapperTick { server } => {
                    self.servers[server].on_capper_tick(self.capper_period_s);
                    engine.schedule_in(self.capper_period_s, ClusterEvent::CapperTick { server });
                }
            }
        }
    }

    /// Per-server metrics snapshots.
    pub fn metrics(&self) -> Vec<ServerMetrics> {
        self.servers.iter().map(|s| s.metrics().clone()).collect()
    }

    /// Aggregated cluster summary.
    pub fn summary(&self) -> ClusterSummary {
        ClusterSummary::aggregate(&self.metrics()).expect("cluster is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_core::fit::{fit_indirect_utility, FitOptions};
    use pocolo_manager::LcPolicy;
    use pocolo_simserver::power::PowerDrawModel;
    use pocolo_simserver::MachineSpec;
    use pocolo_workloads::profiler::{profile_lc, ProfilerConfig};
    use pocolo_workloads::{BeApp, BeModel, LcApp, LcModel, LoadTrace};

    fn server(lc: LcApp, be: BeApp) -> ServerSim {
        let machine = MachineSpec::xeon_e5_2650();
        let truth = LcModel::for_app(lc, machine.clone());
        let power = PowerDrawModel::new(machine.clone());
        let space = machine.resource_space();
        let samples = profile_lc(&truth, &power, &space, &ProfilerConfig::default());
        let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default())
            .unwrap()
            .utility;
        let cap = truth.provisioned_power();
        ServerSim::new(
            truth,
            fitted,
            Some(BeModel::for_app(be, machine)),
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(0.4),
            cap,
            0.01,
            7,
        )
    }

    #[test]
    fn runs_all_servers_for_the_duration() {
        let mut cluster = ClusterSim::new(
            vec![
                server(LcApp::Xapian, BeApp::Rnn),
                server(LcApp::Sphinx, BeApp::Graph),
            ],
            1.0,
            0.1,
        );
        cluster.run(10.0);
        for m in cluster.metrics() {
            assert!(
                (m.duration_s - 10.0).abs() < 0.2,
                "covered {}",
                m.duration_s
            );
            assert!(m.samples >= 99);
        }
        let s = cluster.summary();
        assert!(s.avg_be_throughput > 0.0);
        assert!(s.avg_power_utilization > 0.3 && s.avg_power_utilization <= 1.05);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_panics() {
        let _ = ClusterSim::new(vec![], 1.0, 0.1);
    }

    #[test]
    fn deterministic_given_same_seeds() {
        let mut a = ClusterSim::new(vec![server(LcApp::TpcC, BeApp::Lstm)], 1.0, 0.1);
        let mut b = ClusterSim::new(vec![server(LcApp::TpcC, BeApp::Lstm)], 1.0, 0.1);
        a.run(5.0);
        b.run(5.0);
        assert_eq!(a.metrics(), b.metrics());
    }
}

//! # pocolo-sim
//!
//! Discrete-event simulation of a Pocolo cluster: four latency-critical
//! servers (img-dnn, sphinx, xapian, tpcc), each hosting one best-effort
//! co-runner, driven through the paper's uniform 10–90 % load sweep.
//!
//! The simulation wires together every layer built in the sibling crates:
//!
//! - ground-truth workload models ([`pocolo_workloads`]) stand in for the
//!   real applications;
//! - the simulated server ([`pocolo_simserver`]) enforces isolation and
//!   meters power;
//! - the server manager and power capper ([`pocolo_manager`]) run their
//!   1 s / 100 ms control loops as scheduled events;
//! - the cluster manager ([`pocolo_cluster`]) decides placement.
//!
//! Three end-to-end policies reproduce the paper's §V-D comparison:
//! **Random** (random placement + power-oblivious Heracles-style server
//! control), **POM** (random placement + power-optimized server control),
//! and **POColo** (power-optimized placement *and* server control).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster_sim;
pub mod engine;
pub mod experiment;
pub mod faults;
pub mod fleet;
pub mod metrics;
pub mod parallel;
pub mod rebalance;
pub mod server_sim;
pub mod spatial_sim;

pub use cluster_sim::{run_server_projection, ClusterSim};
pub use engine::{Engine, EventEntry};
pub use experiment::{
    compile_fault_plan, eviction_ranks, run_experiment, run_experiment_traced, DecisionTrace,
    ExperimentConfig, ExperimentResult, FittedCluster, Policy, SlotSpec,
};
pub use faults::{FaultTimeline, ResilienceConfig, ServerFaultAction, ServerFaultEvent};
pub use fleet::{
    compare_fleet_policies, run_fleet_policy, FittedFleet, FleetComparison, FleetRunResult,
    DEMO_FAULT_SEED, DEMO_FLEET_SEED,
};
pub use metrics::{ClusterSummary, ServerMetrics};
pub use parallel::Parallelism;
pub use rebalance::{run_rebalancing, RebalanceConfig, RebalanceResult};
pub use server_sim::ServerSim;
pub use spatial_sim::{SpatialServerSim, SpatialTenant};

//! Metrics accumulated during simulation.

use pocolo_core::units::{Joules, Watts};

/// Per-server accumulator, sampled on every capper tick.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerMetrics {
    /// Simulated wall-clock covered, seconds.
    pub duration_s: f64,
    /// Integrated server energy.
    pub energy: Joules,
    /// Highest instantaneous (true) power observed.
    pub peak_power: Watts,
    /// The provisioned cap the server ran under.
    pub power_cap: Watts,
    /// Time-average of the BE app's normalized throughput.
    pub be_throughput_avg: f64,
    /// Fraction of time the primary's p99 violated its SLO.
    pub lc_violation_frac: f64,
    /// Fraction of capper ticks that had to throttle the secondary.
    pub capping_frac: f64,
    /// Number of accumulation samples.
    pub samples: usize,
    /// Longest observed time from a fault clearing to the first healthy
    /// tick (SLO met, power within the cap), seconds. Zero when no fault
    /// recovery was observed.
    pub time_to_recover_s: f64,
    /// Fraction of *fault-active* time the primary violated its SLO
    /// (zero when no fault time was accumulated).
    pub slo_violation_frac_during_fault: f64,
    /// Number of best-effort evictions (degraded-mode load shedding and
    /// crash-driven evictions).
    pub evictions: usize,
    // Internal accumulators.
    be_integral: f64,
    violation_time: f64,
    capping_events: usize,
    fault_time: f64,
    fault_violation_time: f64,
}

impl ServerMetrics {
    /// A fresh accumulator for a server with the given cap.
    pub fn new(power_cap: Watts) -> Self {
        ServerMetrics {
            duration_s: 0.0,
            energy: Joules::ZERO,
            peak_power: Watts::ZERO,
            power_cap,
            be_throughput_avg: 0.0,
            lc_violation_frac: 0.0,
            capping_frac: 0.0,
            samples: 0,
            time_to_recover_s: 0.0,
            slo_violation_frac_during_fault: 0.0,
            evictions: 0,
            be_integral: 0.0,
            violation_time: 0.0,
            capping_events: 0,
            fault_time: 0.0,
            fault_violation_time: 0.0,
        }
    }

    /// Records one interval of `dt` seconds. `fault_active` marks
    /// intervals spent under an active fault (brownout window, crash
    /// downtime, telemetry dropout), feeding the
    /// [`ServerMetrics::slo_violation_frac_during_fault`] breakdown.
    pub fn record(
        &mut self,
        dt: f64,
        true_power: Watts,
        be_throughput: f64,
        lc_slack: f64,
        throttled: bool,
        fault_active: bool,
    ) {
        debug_assert!(dt > 0.0);
        self.duration_s += dt;
        self.energy += true_power.over_seconds(dt);
        self.peak_power = self.peak_power.max(true_power);
        self.be_integral += be_throughput * dt;
        if lc_slack < 0.0 {
            self.violation_time += dt;
        }
        if throttled {
            self.capping_events += 1;
        }
        if fault_active {
            self.fault_time += dt;
            if lc_slack < 0.0 {
                self.fault_violation_time += dt;
            }
        }
        self.samples += 1;
        self.refresh_derived();
    }

    /// Records a best-effort eviction.
    pub fn record_eviction(&mut self) {
        self.evictions += 1;
    }

    /// Records a completed fault recovery that took `seconds` from the
    /// fault clearing to the first healthy tick; the reported
    /// [`ServerMetrics::time_to_recover_s`] is the worst such episode.
    pub fn record_recovery(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.time_to_recover_s = self.time_to_recover_s.max(seconds);
    }

    /// Merges another accumulator covering a *disjoint* interval of the
    /// same server's run into this one. Returns `None` if the two track
    /// different power caps (they are not the same server).
    pub fn merge(&self, other: &ServerMetrics) -> Option<ServerMetrics> {
        if self.power_cap != other.power_cap {
            return None;
        }
        let mut out = self.clone();
        out.duration_s += other.duration_s;
        out.energy += other.energy;
        out.peak_power = out.peak_power.max(other.peak_power);
        out.samples += other.samples;
        out.evictions += other.evictions;
        out.time_to_recover_s = out.time_to_recover_s.max(other.time_to_recover_s);
        out.be_integral += other.be_integral;
        out.violation_time += other.violation_time;
        out.capping_events += other.capping_events;
        out.fault_time += other.fault_time;
        out.fault_violation_time += other.fault_violation_time;
        if out.samples > 0 {
            out.refresh_derived();
        }
        Some(out)
    }

    fn refresh_derived(&mut self) {
        // Keep derived fields current so serialization is always valid.
        self.be_throughput_avg = self.be_integral / self.duration_s;
        self.lc_violation_frac = self.violation_time / self.duration_s;
        self.capping_frac = self.capping_events as f64 / self.samples as f64;
        self.slo_violation_frac_during_fault = if self.fault_time > 0.0 {
            self.fault_violation_time / self.fault_time
        } else {
            0.0
        };
    }

    /// Time spent under an active fault, seconds.
    pub fn fault_time_s(&self) -> f64 {
        self.fault_time
    }

    /// Time-average server power.
    pub fn avg_power(&self) -> Watts {
        if self.duration_s > 0.0 {
            Watts(self.energy.0 / self.duration_s)
        } else {
            Watts::ZERO
        }
    }

    /// Average power as a fraction of the provisioned cap (Fig. 13).
    pub fn power_utilization(&self) -> f64 {
        if self.power_cap > Watts::ZERO {
            self.avg_power() / self.power_cap
        } else {
            0.0
        }
    }
}

/// Cluster-level aggregation across servers.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSummary {
    /// Mean of per-server BE throughput averages.
    pub avg_be_throughput: f64,
    /// Mean of per-server power utilizations.
    pub avg_power_utilization: f64,
    /// Total cluster energy.
    pub total_energy: Joules,
    /// Energy per unit of aggregate BE throughput (the paper's energy
    /// metric improves more than raw power because throughput rises too).
    pub energy_per_throughput: f64,
    /// Worst per-server SLO violation fraction.
    pub worst_violation_frac: f64,
    /// Mean capping fraction.
    pub avg_capping_frac: f64,
    /// Worst per-server fault recovery time, seconds.
    pub time_to_recover_s: f64,
    /// Worst per-server SLO violation fraction during fault-active time.
    pub slo_violation_frac_during_fault: f64,
    /// Total best-effort evictions across the cluster.
    pub evictions: usize,
}

impl ClusterSummary {
    /// Aggregates per-server metrics. Returns `None` for an empty slice.
    pub fn aggregate(servers: &[ServerMetrics]) -> Option<ClusterSummary> {
        if servers.is_empty() {
            return None;
        }
        let n = servers.len() as f64;
        let avg_be_throughput = servers.iter().map(|s| s.be_throughput_avg).sum::<f64>() / n;
        let avg_power_utilization = servers.iter().map(|s| s.power_utilization()).sum::<f64>() / n;
        let total_energy: Joules = servers.iter().map(|s| s.energy).sum();
        let total_thpt: f64 = servers.iter().map(|s| s.be_throughput_avg).sum();
        let energy_per_throughput = if total_thpt > 0.0 {
            total_energy.0 / total_thpt
        } else {
            f64::INFINITY
        };
        let worst_violation_frac = servers
            .iter()
            .map(|s| s.lc_violation_frac)
            .fold(0.0, f64::max);
        let avg_capping_frac = servers.iter().map(|s| s.capping_frac).sum::<f64>() / n;
        let time_to_recover_s = servers
            .iter()
            .map(|s| s.time_to_recover_s)
            .fold(0.0, f64::max);
        let slo_violation_frac_during_fault = servers
            .iter()
            .map(|s| s.slo_violation_frac_during_fault)
            .fold(0.0, f64::max);
        let evictions = servers.iter().map(|s| s.evictions).sum();
        Some(ClusterSummary {
            avg_be_throughput,
            avg_power_utilization,
            total_energy,
            energy_per_throughput,
            worst_violation_frac,
            avg_capping_frac,
            time_to_recover_s,
            slo_violation_frac_during_fault,
            evictions,
        })
    }
}

impl pocolo_json::ToJson for ServerMetrics {
    fn to_json(&self) -> pocolo_json::Value {
        pocolo_json::json!({
            "duration_s": self.duration_s,
            "energy": self.energy,
            "peak_power": self.peak_power,
            "power_cap": self.power_cap,
            "be_throughput_avg": self.be_throughput_avg,
            "lc_violation_frac": self.lc_violation_frac,
            "capping_frac": self.capping_frac,
            "samples": self.samples,
            "time_to_recover_s": self.time_to_recover_s,
            "slo_violation_frac_during_fault": self.slo_violation_frac_during_fault,
            "evictions": self.evictions,
            "be_integral": self.be_integral,
            "violation_time": self.violation_time,
            "capping_events": self.capping_events,
            "fault_time": self.fault_time,
            "fault_violation_time": self.fault_violation_time,
        })
    }
}

impl pocolo_json::FromJson for ServerMetrics {
    fn from_json(v: &pocolo_json::Value) -> Option<Self> {
        Some(ServerMetrics {
            duration_s: v["duration_s"].as_f64()?,
            energy: Joules::from_json(&v["energy"])?,
            peak_power: Watts::from_json(&v["peak_power"])?,
            power_cap: Watts::from_json(&v["power_cap"])?,
            be_throughput_avg: v["be_throughput_avg"].as_f64()?,
            lc_violation_frac: v["lc_violation_frac"].as_f64()?,
            capping_frac: v["capping_frac"].as_f64()?,
            samples: v["samples"].as_u64()? as usize,
            time_to_recover_s: v["time_to_recover_s"].as_f64()?,
            slo_violation_frac_during_fault: v["slo_violation_frac_during_fault"].as_f64()?,
            evictions: v["evictions"].as_u64()? as usize,
            be_integral: v["be_integral"].as_f64()?,
            violation_time: v["violation_time"].as_f64()?,
            capping_events: v["capping_events"].as_u64()? as usize,
            fault_time: v["fault_time"].as_f64()?,
            fault_violation_time: v["fault_violation_time"].as_f64()?,
        })
    }
}

impl pocolo_json::ToJson for ClusterSummary {
    fn to_json(&self) -> pocolo_json::Value {
        pocolo_json::json!({
            "avg_be_throughput": self.avg_be_throughput,
            "avg_power_utilization": self.avg_power_utilization,
            "total_energy": self.total_energy,
            "energy_per_throughput": self.energy_per_throughput,
            "worst_violation_frac": self.worst_violation_frac,
            "avg_capping_frac": self.avg_capping_frac,
            "time_to_recover_s": self.time_to_recover_s,
            "slo_violation_frac_during_fault": self.slo_violation_frac_during_fault,
            "evictions": self.evictions,
        })
    }
}

impl pocolo_json::FromJson for ClusterSummary {
    fn from_json(v: &pocolo_json::Value) -> Option<Self> {
        Some(ClusterSummary {
            avg_be_throughput: v["avg_be_throughput"].as_f64()?,
            avg_power_utilization: v["avg_power_utilization"].as_f64()?,
            total_energy: Joules::from_json(&v["total_energy"])?,
            // Infinity (no BE throughput at all) serializes as null.
            energy_per_throughput: v["energy_per_throughput"].as_f64().unwrap_or(f64::INFINITY),
            worst_violation_frac: v["worst_violation_frac"].as_f64()?,
            avg_capping_frac: v["avg_capping_frac"].as_f64()?,
            time_to_recover_s: v["time_to_recover_s"].as_f64()?,
            slo_violation_frac_during_fault: v["slo_violation_frac_during_fault"].as_f64()?,
            evictions: v["evictions"].as_u64()? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut m = ServerMetrics::new(Watts(100.0));
        m.record(1.0, Watts(80.0), 0.5, 0.2, false, false);
        m.record(1.0, Watts(90.0), 0.7, -0.1, true, false);
        assert_eq!(m.duration_s, 2.0);
        assert_eq!(m.energy, Joules(170.0));
        assert_eq!(m.peak_power, Watts(90.0));
        assert!((m.avg_power().0 - 85.0).abs() < 1e-9);
        assert!((m.power_utilization() - 0.85).abs() < 1e-9);
        assert!((m.be_throughput_avg - 0.6).abs() < 1e-9);
        assert!((m.lc_violation_frac - 0.5).abs() < 1e-9);
        assert!((m.capping_frac - 0.5).abs() < 1e-9);
        assert_eq!(m.slo_violation_frac_during_fault, 0.0);
    }

    #[test]
    fn fault_windows_get_their_own_violation_frac() {
        let mut m = ServerMetrics::new(Watts(100.0));
        m.record(1.0, Watts(80.0), 0.5, -0.1, false, false); // healthy-time violation
        m.record(1.0, Watts(80.0), 0.5, -0.2, true, true); // fault + violation
        m.record(1.0, Watts(80.0), 0.5, 0.3, false, true); // fault, SLO met
        assert!((m.lc_violation_frac - 2.0 / 3.0).abs() < 1e-9);
        assert!((m.slo_violation_frac_during_fault - 0.5).abs() < 1e-9);
        assert!((m.fault_time_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_keeps_the_worst_episode() {
        let mut m = ServerMetrics::new(Watts(100.0));
        m.record_recovery(2.5);
        m.record_recovery(1.0);
        assert_eq!(m.time_to_recover_s, 2.5);
        m.record_eviction();
        m.record_eviction();
        assert_eq!(m.evictions, 2);
    }

    #[test]
    fn merge_of_splits_matches_whole_run() {
        let ticks = [
            (0.1, 80.0, 0.5, 0.2, false, false),
            (0.1, 90.0, 0.6, -0.1, true, true),
            (0.1, 85.0, 0.4, 0.1, false, true),
            (0.1, 70.0, 0.8, 0.4, false, false),
        ];
        let mut whole = ServerMetrics::new(Watts(100.0));
        let mut a = ServerMetrics::new(Watts(100.0));
        let mut b = ServerMetrics::new(Watts(100.0));
        for (i, &(dt, p, th, sl, cap, fa)) in ticks.iter().enumerate() {
            whole.record(dt, Watts(p), th, sl, cap, fa);
            let half = if i < 2 { &mut a } else { &mut b };
            half.record(dt, Watts(p), th, sl, cap, fa);
        }
        let merged = a.merge(&b).unwrap();
        assert!((merged.duration_s - whole.duration_s).abs() < 1e-12);
        assert!((merged.energy.0 - whole.energy.0).abs() < 1e-9);
        assert!((merged.be_throughput_avg - whole.be_throughput_avg).abs() < 1e-12);
        assert!((merged.lc_violation_frac - whole.lc_violation_frac).abs() < 1e-12);
        assert_eq!(merged.samples, whole.samples);
        assert!(
            (merged.slo_violation_frac_during_fault - whole.slo_violation_frac_during_fault).abs()
                < 1e-12
        );
    }

    #[test]
    fn merge_rejects_different_caps() {
        let a = ServerMetrics::new(Watts(100.0));
        let b = ServerMetrics::new(Watts(200.0));
        assert!(a.merge(&b).is_none());
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = ServerMetrics::new(Watts(100.0));
        assert_eq!(m.avg_power(), Watts::ZERO);
        assert_eq!(m.power_utilization(), 0.0);
        assert_eq!(m.time_to_recover_s, 0.0);
        assert_eq!(m.evictions, 0);
    }

    #[test]
    fn aggregate_cluster() {
        let mut a = ServerMetrics::new(Watts(100.0));
        a.record(10.0, Watts(90.0), 0.8, 0.2, false, false);
        a.record_recovery(3.0);
        a.record_eviction();
        let mut b = ServerMetrics::new(Watts(200.0));
        b.record(10.0, Watts(100.0), 0.4, -0.2, true, true);
        b.record_recovery(7.0);
        let c = ClusterSummary::aggregate(&[a, b]).unwrap();
        assert!((c.avg_be_throughput - 0.6).abs() < 1e-9);
        assert!((c.avg_power_utilization - (0.9 + 0.5) / 2.0).abs() < 1e-9);
        assert_eq!(c.total_energy, Joules(1900.0));
        assert!((c.energy_per_throughput - 1900.0 / 1.2).abs() < 1e-9);
        assert!((c.worst_violation_frac - 1.0).abs() < 1e-9);
        assert!((c.avg_capping_frac - 0.5).abs() < 1e-9);
        assert_eq!(c.time_to_recover_s, 7.0);
        assert!((c.slo_violation_frac_during_fault - 1.0).abs() < 1e-9);
        assert_eq!(c.evictions, 1);
    }

    #[test]
    fn aggregate_empty_is_none() {
        assert!(ClusterSummary::aggregate(&[]).is_none());
    }

    #[test]
    fn zero_throughput_energy_is_infinite() {
        let mut a = ServerMetrics::new(Watts(100.0));
        a.record(1.0, Watts(50.0), 0.0, 0.5, false, false);
        let c = ClusterSummary::aggregate(&[a]).unwrap();
        assert!(c.energy_per_throughput.is_infinite());
    }

    #[test]
    fn json_roundtrip_preserves_fault_fields() {
        use pocolo_json::{FromJson, ToJson};
        let mut m = ServerMetrics::new(Watts(150.0));
        m.record(0.1, Watts(120.0), 0.4, -0.05, true, true);
        m.record_eviction();
        m.record_recovery(4.5);
        let back = ServerMetrics::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        let summary = ClusterSummary::aggregate(&[m]).unwrap();
        let back = ClusterSummary::from_json(&summary.to_json()).unwrap();
        assert_eq!(back, summary);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_tick() -> impl Strategy<Value = (f64, f64, f64, f64, bool, bool)> {
        (
            0.01f64..2.0,  // dt
            0.0f64..500.0, // power
            0.0f64..1.0,   // be throughput
            -1.0f64..1.0,  // slack
            any::<bool>(),
            any::<bool>(),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Energy is monotone in recorded ticks and every derived
        /// fraction stays inside [0, 1].
        #[test]
        fn energy_monotone_and_fractions_bounded(
            ticks in proptest::collection::vec(arb_tick(), 1..60),
        ) {
            let mut m = ServerMetrics::new(Watts(200.0));
            let mut last_energy = 0.0f64;
            for (dt, p, th, sl, cap, fa) in ticks {
                m.record(dt, Watts(p), th, sl, cap, fa);
                prop_assert!(m.energy.0 >= last_energy, "energy regressed");
                last_energy = m.energy.0;
                for (name, frac) in [
                    ("lc_violation_frac", m.lc_violation_frac),
                    ("capping_frac", m.capping_frac),
                    ("be_throughput_avg", m.be_throughput_avg),
                    ("fault violation frac", m.slo_violation_frac_during_fault),
                ] {
                    prop_assert!((0.0..=1.0).contains(&frac), "{name} = {frac} out of [0,1]");
                }
            }
        }

        /// Recording a run in one accumulator equals splitting it at any
        /// point and merging the halves (up to float associativity).
        #[test]
        fn merge_of_splits_equals_whole_run(
            ticks in proptest::collection::vec(arb_tick(), 2..60),
            split_frac in 0.0f64..1.0,
        ) {
            let split = ((ticks.len() as f64 * split_frac) as usize).clamp(1, ticks.len() - 1);
            let mut whole = ServerMetrics::new(Watts(300.0));
            let mut a = ServerMetrics::new(Watts(300.0));
            let mut b = ServerMetrics::new(Watts(300.0));
            for (i, &(dt, p, th, sl, cap, fa)) in ticks.iter().enumerate() {
                whole.record(dt, Watts(p), th, sl, cap, fa);
                if i < split { &mut a } else { &mut b }.record(dt, Watts(p), th, sl, cap, fa);
            }
            let merged = a.merge(&b).expect("same cap");
            let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs()));
            prop_assert!(close(merged.duration_s, whole.duration_s));
            prop_assert!(close(merged.energy.0, whole.energy.0));
            prop_assert!(close(merged.be_throughput_avg, whole.be_throughput_avg));
            prop_assert!(close(merged.lc_violation_frac, whole.lc_violation_frac));
            prop_assert!(close(
                merged.slo_violation_frac_during_fault,
                whole.slo_violation_frac_during_fault
            ));
            prop_assert!(close(merged.capping_frac, whole.capping_frac));
            prop_assert_eq!(merged.samples, whole.samples);
            prop_assert_eq!(merged.peak_power, whole.peak_power);
        }
    }
}

//! Metrics accumulated during simulation.

use pocolo_core::units::{Joules, Watts};

/// Per-server accumulator, sampled on every capper tick.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerMetrics {
    /// Simulated wall-clock covered, seconds.
    pub duration_s: f64,
    /// Integrated server energy.
    pub energy: Joules,
    /// Highest instantaneous (true) power observed.
    pub peak_power: Watts,
    /// The provisioned cap the server ran under.
    pub power_cap: Watts,
    /// Time-average of the BE app's normalized throughput.
    pub be_throughput_avg: f64,
    /// Fraction of time the primary's p99 violated its SLO.
    pub lc_violation_frac: f64,
    /// Fraction of capper ticks that had to throttle the secondary.
    pub capping_frac: f64,
    /// Number of accumulation samples.
    pub samples: usize,
    // Internal accumulators.
    be_integral: f64,
    violation_time: f64,
    capping_events: usize,
}

impl ServerMetrics {
    /// A fresh accumulator for a server with the given cap.
    pub fn new(power_cap: Watts) -> Self {
        ServerMetrics {
            duration_s: 0.0,
            energy: Joules::ZERO,
            peak_power: Watts::ZERO,
            power_cap,
            be_throughput_avg: 0.0,
            lc_violation_frac: 0.0,
            capping_frac: 0.0,
            samples: 0,
            be_integral: 0.0,
            violation_time: 0.0,
            capping_events: 0,
        }
    }

    /// Records one interval of `dt` seconds.
    pub fn record(
        &mut self,
        dt: f64,
        true_power: Watts,
        be_throughput: f64,
        lc_slack: f64,
        throttled: bool,
    ) {
        debug_assert!(dt > 0.0);
        self.duration_s += dt;
        self.energy += true_power.over_seconds(dt);
        self.peak_power = self.peak_power.max(true_power);
        self.be_integral += be_throughput * dt;
        if lc_slack < 0.0 {
            self.violation_time += dt;
        }
        if throttled {
            self.capping_events += 1;
        }
        self.samples += 1;
        // Keep derived fields current so serialization is always valid.
        self.be_throughput_avg = self.be_integral / self.duration_s;
        self.lc_violation_frac = self.violation_time / self.duration_s;
        self.capping_frac = self.capping_events as f64 / self.samples as f64;
    }

    /// Time-average server power.
    pub fn avg_power(&self) -> Watts {
        if self.duration_s > 0.0 {
            Watts(self.energy.0 / self.duration_s)
        } else {
            Watts::ZERO
        }
    }

    /// Average power as a fraction of the provisioned cap (Fig. 13).
    pub fn power_utilization(&self) -> f64 {
        if self.power_cap > Watts::ZERO {
            self.avg_power() / self.power_cap
        } else {
            0.0
        }
    }
}

/// Cluster-level aggregation across servers.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSummary {
    /// Mean of per-server BE throughput averages.
    pub avg_be_throughput: f64,
    /// Mean of per-server power utilizations.
    pub avg_power_utilization: f64,
    /// Total cluster energy.
    pub total_energy: Joules,
    /// Energy per unit of aggregate BE throughput (the paper's energy
    /// metric improves more than raw power because throughput rises too).
    pub energy_per_throughput: f64,
    /// Worst per-server SLO violation fraction.
    pub worst_violation_frac: f64,
    /// Mean capping fraction.
    pub avg_capping_frac: f64,
}

impl ClusterSummary {
    /// Aggregates per-server metrics. Returns `None` for an empty slice.
    pub fn aggregate(servers: &[ServerMetrics]) -> Option<ClusterSummary> {
        if servers.is_empty() {
            return None;
        }
        let n = servers.len() as f64;
        let avg_be_throughput = servers.iter().map(|s| s.be_throughput_avg).sum::<f64>() / n;
        let avg_power_utilization = servers.iter().map(|s| s.power_utilization()).sum::<f64>() / n;
        let total_energy: Joules = servers.iter().map(|s| s.energy).sum();
        let total_thpt: f64 = servers.iter().map(|s| s.be_throughput_avg).sum();
        let energy_per_throughput = if total_thpt > 0.0 {
            total_energy.0 / total_thpt
        } else {
            f64::INFINITY
        };
        let worst_violation_frac = servers
            .iter()
            .map(|s| s.lc_violation_frac)
            .fold(0.0, f64::max);
        let avg_capping_frac = servers.iter().map(|s| s.capping_frac).sum::<f64>() / n;
        Some(ClusterSummary {
            avg_be_throughput,
            avg_power_utilization,
            total_energy,
            energy_per_throughput,
            worst_violation_frac,
            avg_capping_frac,
        })
    }
}

impl pocolo_json::ToJson for ServerMetrics {
    fn to_json(&self) -> pocolo_json::Value {
        pocolo_json::json!({
            "duration_s": self.duration_s,
            "energy": self.energy,
            "peak_power": self.peak_power,
            "power_cap": self.power_cap,
            "be_throughput_avg": self.be_throughput_avg,
            "lc_violation_frac": self.lc_violation_frac,
            "capping_frac": self.capping_frac,
            "samples": self.samples,
            "be_integral": self.be_integral,
            "violation_time": self.violation_time,
            "capping_events": self.capping_events,
        })
    }
}

impl pocolo_json::FromJson for ServerMetrics {
    fn from_json(v: &pocolo_json::Value) -> Option<Self> {
        Some(ServerMetrics {
            duration_s: v["duration_s"].as_f64()?,
            energy: Joules::from_json(&v["energy"])?,
            peak_power: Watts::from_json(&v["peak_power"])?,
            power_cap: Watts::from_json(&v["power_cap"])?,
            be_throughput_avg: v["be_throughput_avg"].as_f64()?,
            lc_violation_frac: v["lc_violation_frac"].as_f64()?,
            capping_frac: v["capping_frac"].as_f64()?,
            samples: v["samples"].as_u64()? as usize,
            be_integral: v["be_integral"].as_f64()?,
            violation_time: v["violation_time"].as_f64()?,
            capping_events: v["capping_events"].as_u64()? as usize,
        })
    }
}

impl pocolo_json::ToJson for ClusterSummary {
    fn to_json(&self) -> pocolo_json::Value {
        pocolo_json::json!({
            "avg_be_throughput": self.avg_be_throughput,
            "avg_power_utilization": self.avg_power_utilization,
            "total_energy": self.total_energy,
            "energy_per_throughput": self.energy_per_throughput,
            "worst_violation_frac": self.worst_violation_frac,
            "avg_capping_frac": self.avg_capping_frac,
        })
    }
}

impl pocolo_json::FromJson for ClusterSummary {
    fn from_json(v: &pocolo_json::Value) -> Option<Self> {
        Some(ClusterSummary {
            avg_be_throughput: v["avg_be_throughput"].as_f64()?,
            avg_power_utilization: v["avg_power_utilization"].as_f64()?,
            total_energy: Joules::from_json(&v["total_energy"])?,
            // Infinity (no BE throughput at all) serializes as null.
            energy_per_throughput: v["energy_per_throughput"].as_f64().unwrap_or(f64::INFINITY),
            worst_violation_frac: v["worst_violation_frac"].as_f64()?,
            avg_capping_frac: v["avg_capping_frac"].as_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut m = ServerMetrics::new(Watts(100.0));
        m.record(1.0, Watts(80.0), 0.5, 0.2, false);
        m.record(1.0, Watts(90.0), 0.7, -0.1, true);
        assert_eq!(m.duration_s, 2.0);
        assert_eq!(m.energy, Joules(170.0));
        assert_eq!(m.peak_power, Watts(90.0));
        assert!((m.avg_power().0 - 85.0).abs() < 1e-9);
        assert!((m.power_utilization() - 0.85).abs() < 1e-9);
        assert!((m.be_throughput_avg - 0.6).abs() < 1e-9);
        assert!((m.lc_violation_frac - 0.5).abs() < 1e-9);
        assert!((m.capping_frac - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = ServerMetrics::new(Watts(100.0));
        assert_eq!(m.avg_power(), Watts::ZERO);
        assert_eq!(m.power_utilization(), 0.0);
    }

    #[test]
    fn aggregate_cluster() {
        let mut a = ServerMetrics::new(Watts(100.0));
        a.record(10.0, Watts(90.0), 0.8, 0.2, false);
        let mut b = ServerMetrics::new(Watts(200.0));
        b.record(10.0, Watts(100.0), 0.4, -0.2, true);
        let c = ClusterSummary::aggregate(&[a, b]).unwrap();
        assert!((c.avg_be_throughput - 0.6).abs() < 1e-9);
        assert!((c.avg_power_utilization - (0.9 + 0.5) / 2.0).abs() < 1e-9);
        assert_eq!(c.total_energy, Joules(1900.0));
        assert!((c.energy_per_throughput - 1900.0 / 1.2).abs() < 1e-9);
        assert!((c.worst_violation_frac - 1.0).abs() < 1e-9);
        assert!((c.avg_capping_frac - 0.5).abs() < 1e-9);
    }

    #[test]
    fn aggregate_empty_is_none() {
        assert!(ClusterSummary::aggregate(&[]).is_none());
    }

    #[test]
    fn zero_throughput_energy_is_infinite() {
        let mut a = ServerMetrics::new(Watts(100.0));
        a.record(1.0, Watts(50.0), 0.0, 0.5, false);
        let c = ClusterSummary::aggregate(&[a]).unwrap();
        assert!(c.energy_per_throughput.is_infinite());
    }
}

//! Glue between [`pocolo_faults`] plans and the simulator: the cluster
//! plan is *compiled* into per-server action timelines before the run
//! starts, so fault handling stays a pure per-server projection and the
//! parallel fan-out remains bit-identical to the serial event queue.

use pocolo_core::utility::IndirectUtility;
use pocolo_faults::{FaultKind, FaultPlan};
use pocolo_workloads::BeModel;

/// A fault action targeted at one server.
#[derive(Debug, Clone)]
pub enum ServerFaultAction {
    /// Scale the server's effective power cap by this factor (1.0 = the
    /// provisioned cap; a brownout sets it below, recovery back to 1.0).
    SetCapFactor(f64),
    /// The server goes dark: the primary migrates away, the BE co-runner
    /// is evicted, power drops to zero.
    Crash,
    /// The server rejoins the cluster.
    Recover,
    /// The management plane's load/p99 telemetry freezes until the given
    /// absolute time.
    FreezeTelemetry {
        /// Absolute end of the dropout, seconds.
        until_s: f64,
    },
    /// Telemetry thaws immediately.
    Thaw,
    /// The manager's fitted performance α's are perturbed by up to `rel`
    /// relatively, seeded by `salt` (mixed with the server index).
    DriftModel {
        /// Maximum relative perturbation.
        rel: f64,
        /// Deterministic RNG salt.
        salt: u64,
    },
    /// The best-effort co-runner is swapped (a budget-shrink replan
    /// migration); the incoming app pays a warm-up pause.
    ReplaceBe {
        /// New co-runner ground truth, or `None` to leave the slot empty.
        be_truth: Option<Box<BeModel>>,
        /// Fitted utility for proactive planning of the new co-runner.
        be_fitted: Option<Box<IndirectUtility>>,
        /// Warm-up pause, seconds.
        pause_s: f64,
    },
}

/// A timestamped action on one server's timeline.
#[derive(Debug, Clone)]
pub struct ServerFaultEvent {
    /// When the action fires, seconds from simulation start.
    pub at_s: f64,
    /// What happens to this server.
    pub action: ServerFaultAction,
}

/// Per-server fault timelines, compiled from a cluster-wide [`FaultPlan`].
#[derive(Debug, Clone, Default)]
pub struct FaultTimeline {
    per_server: Vec<Vec<ServerFaultEvent>>,
}

impl FaultTimeline {
    /// An empty timeline for `n_servers` servers.
    pub fn empty(n_servers: usize) -> Self {
        FaultTimeline {
            per_server: vec![Vec::new(); n_servers],
        }
    }

    /// Projects a cluster-wide plan onto per-server action lists.
    /// Cluster-wide events (brownouts, cluster telemetry dropouts,
    /// cluster drift) fan out to every server; targeted events land on
    /// their server only. Events out of `0..n_servers` range are dropped.
    ///
    /// Every server holds exactly the requested brownout cap factor —
    /// the homogeneous, continuous-power fleet. Heterogeneous fleets use
    /// [`FaultTimeline::compile_with_curves`] to derate each SKU through
    /// its own power curve.
    pub fn compile(plan: &FaultPlan, n_servers: usize) -> Self {
        Self::compile_with_curves(plan, n_servers, |_, f| f)
    }

    /// Like [`FaultTimeline::compile`], but each brownout cap factor is
    /// pushed through `factor_of(server, requested)` before landing on a
    /// server's timeline — the hook heterogeneous fleets use to model
    /// per-SKU power physics (a DVFS-stepped class holds the largest
    /// P-state at or below the request, an accelerator-like class snaps
    /// to its power-plane steps). The mapping must return a factor in
    /// `(0, requested]` and must be the identity at `1.0` so brownout
    /// lifts restore every class fully; `pocolo_core::fleet::PowerCurve`
    /// guarantees both.
    pub fn compile_with_curves(
        plan: &FaultPlan,
        n_servers: usize,
        factor_of: impl Fn(usize, f64) -> f64,
    ) -> Self {
        let mut timeline = FaultTimeline::empty(n_servers);
        for event in plan.events() {
            match &event.kind {
                FaultKind::BrownoutStart { cap_factor } => {
                    timeline.push_all(event.at_s, |s| {
                        ServerFaultAction::SetCapFactor(factor_of(s, *cap_factor))
                    });
                }
                FaultKind::BrownoutEnd => {
                    timeline.push_all(event.at_s, |s| {
                        ServerFaultAction::SetCapFactor(factor_of(s, 1.0))
                    });
                }
                FaultKind::ServerCrash { server } => {
                    timeline.push(*server, event.at_s, ServerFaultAction::Crash);
                }
                FaultKind::ServerRecover { server } => {
                    timeline.push(*server, event.at_s, ServerFaultAction::Recover);
                }
                FaultKind::TelemetryFreezeStart { server, until_s } => {
                    let until_s = *until_s;
                    match server {
                        Some(s) => timeline.push(
                            *s,
                            event.at_s,
                            ServerFaultAction::FreezeTelemetry { until_s },
                        ),
                        None => timeline.push_all(event.at_s, |_| {
                            ServerFaultAction::FreezeTelemetry { until_s }
                        }),
                    }
                }
                FaultKind::TelemetryFreezeEnd { server } => match server {
                    Some(s) => timeline.push(*s, event.at_s, ServerFaultAction::Thaw),
                    None => timeline.push_all(event.at_s, |_| ServerFaultAction::Thaw),
                },
                FaultKind::ModelDrift { server, rel, salt } => {
                    let (rel, salt) = (*rel, *salt);
                    match server {
                        Some(s) => timeline.push(
                            *s,
                            event.at_s,
                            ServerFaultAction::DriftModel { rel, salt },
                        ),
                        None => timeline
                            .push_all(event.at_s, |_| ServerFaultAction::DriftModel { rel, salt }),
                    }
                }
            }
        }
        timeline
    }

    /// Appends an action to one server's timeline. Actions are kept in
    /// time order (stable: coincident actions keep insertion order).
    pub fn push(&mut self, server: usize, at_s: f64, action: ServerFaultAction) {
        if let Some(events) = self.per_server.get_mut(server) {
            events.push(ServerFaultEvent { at_s, action });
            events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        }
    }

    fn push_all(&mut self, at_s: f64, mut make: impl FnMut(usize) -> ServerFaultAction) {
        for server in 0..self.per_server.len() {
            self.push(server, at_s, make(server));
        }
    }

    /// The action list for one server, in time order.
    pub fn server_events(&self, server: usize) -> &[ServerFaultEvent] {
        self.per_server
            .get(server)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of servers the timeline covers.
    pub fn n_servers(&self) -> usize {
        self.per_server.len()
    }

    /// True if no server has any scheduled action.
    pub fn is_empty(&self) -> bool {
        self.per_server.iter().all(Vec::is_empty)
    }
}

/// Tuning of the degraded-mode response layered on top of fault physics.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Base number of consecutive saturated capper ticks tolerated before
    /// the BE co-runner is evicted.
    pub eviction_patience_ticks: usize,
    /// Extra patience ticks granted per ascending matrix-value rank, so
    /// the *lowest*-value co-runner is evicted first cluster-wide.
    pub patience_per_rank_ticks: usize,
    /// Initial re-admission backoff after an eviction, seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff on every consecutive eviction.
    pub backoff_factor: f64,
    /// Backoff ceiling, seconds.
    pub backoff_max_s: f64,
    /// Warm-up pause a re-admitted BE app pays, seconds.
    pub readmit_pause_s: f64,
    /// Relative-improvement threshold below which a budget-shrink replan
    /// keeps the incumbent placement (anti-thrash hysteresis).
    pub replan_hysteresis: f64,
    /// Fraction of the effective cap the power governor targets for the
    /// *whole server* during a brownout while a BE co-runner is placed.
    /// Must sit below the capper's RAPL release band, or the emergency
    /// throttle never disarms while the governor holds the server at its
    /// budget.
    pub brownout_budget_frac: f64,
    /// Whole-server governor target once the primary runs alone. Same
    /// release-band constraint.
    pub brownout_budget_frac_solo: f64,
    /// Governor target once the primary is caught violating its SLO
    /// under the brownout: spend right up to the cap. Sits *above* the
    /// release band by design — a violating primary trades the RAPL
    /// safety margin for capacity.
    pub brownout_distress_frac: f64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            eviction_patience_ticks: 5,
            patience_per_rank_ticks: 5,
            backoff_base_s: 4.0,
            backoff_factor: 2.0,
            backoff_max_s: 64.0,
            readmit_pause_s: 2.0,
            replan_hysteresis: 0.05,
            brownout_budget_frac: 0.88,
            brownout_budget_frac_solo: 0.92,
            brownout_distress_frac: 0.98,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brownout_fans_out_to_every_server() {
        let plan = FaultPlan::new(1).with_brownout(10.0, 5.0, 0.6);
        let t = FaultTimeline::compile(&plan, 3);
        assert_eq!(t.n_servers(), 3);
        for s in 0..3 {
            let events = t.server_events(s);
            assert_eq!(events.len(), 2);
            assert!(
                matches!(events[0].action, ServerFaultAction::SetCapFactor(f) if (f - 0.6).abs() < 1e-12)
            );
            assert!(
                matches!(events[1].action, ServerFaultAction::SetCapFactor(f) if (f - 1.0).abs() < 1e-12)
            );
        }
    }

    #[test]
    fn curve_aware_compile_derates_each_server_through_its_own_mapping() {
        let plan = FaultPlan::new(1).with_brownout(10.0, 5.0, 0.6);
        // Server 0 continuous, server 1 snaps down to coarse half-steps —
        // the stand-in for a stepped power-plane SKU.
        let t = FaultTimeline::compile_with_curves(&plan, 2, |s, f| {
            if s == 0 {
                f
            } else {
                (f * 2.0).floor() / 2.0
            }
        });
        let f0 = match t.server_events(0)[0].action {
            ServerFaultAction::SetCapFactor(f) => f,
            _ => panic!("expected cap factor"),
        };
        let f1 = match t.server_events(1)[0].action {
            ServerFaultAction::SetCapFactor(f) => f,
            _ => panic!("expected cap factor"),
        };
        assert_eq!(f0, 0.6);
        assert_eq!(f1, 0.5, "stepped server holds the state below the request");
        // Brownout end restores both fully (mapping is identity at 1.0).
        assert!(
            matches!(t.server_events(1)[1].action, ServerFaultAction::SetCapFactor(f) if f == 1.0)
        );
    }

    #[test]
    fn identity_curves_reproduce_plain_compile() {
        let plan = FaultPlan::new(7)
            .with_brownout(10.0, 5.0, 0.55)
            .with_crash(1, 3.0, 4.0)
            .with_telemetry_dropout(None, 2.0, 6.0);
        let plain = FaultTimeline::compile(&plan, 3);
        let keyed = FaultTimeline::compile_with_curves(&plan, 3, |_, f| f);
        for s in 0..3 {
            let (a, b) = (plain.server_events(s), keyed.server_events(s));
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.at_s.to_bits(), y.at_s.to_bits());
                if let (ServerFaultAction::SetCapFactor(fx), ServerFaultAction::SetCapFactor(fy)) =
                    (&x.action, &y.action)
                {
                    assert_eq!(fx.to_bits(), fy.to_bits());
                }
            }
        }
    }

    #[test]
    fn crash_targets_one_server() {
        let plan = FaultPlan::new(1).with_crash(2, 10.0, 5.0);
        let t = FaultTimeline::compile(&plan, 4);
        assert!(t.server_events(0).is_empty());
        assert!(t.server_events(1).is_empty());
        assert!(t.server_events(3).is_empty());
        let events = t.server_events(2);
        assert!(matches!(events[0].action, ServerFaultAction::Crash));
        assert!(matches!(events[1].action, ServerFaultAction::Recover));
    }

    #[test]
    fn out_of_range_crash_is_dropped() {
        let plan = FaultPlan::new(1).with_crash(9, 10.0, 5.0);
        let t = FaultTimeline::compile(&plan, 2);
        assert!(t.is_empty());
    }

    #[test]
    fn dropout_freeze_carries_absolute_deadline() {
        let plan = FaultPlan::new(1).with_telemetry_dropout(Some(1), 10.0, 7.0);
        let t = FaultTimeline::compile(&plan, 2);
        let events = t.server_events(1);
        assert!(
            matches!(events[0].action, ServerFaultAction::FreezeTelemetry { until_s } if (until_s - 17.0).abs() < 1e-12)
        );
        assert!(matches!(events[1].action, ServerFaultAction::Thaw));
        assert!(t.server_events(0).is_empty());
    }

    #[test]
    fn pushed_events_stay_time_ordered() {
        let mut t = FaultTimeline::empty(1);
        t.push(0, 5.0, ServerFaultAction::Crash);
        t.push(0, 1.0, ServerFaultAction::SetCapFactor(0.5));
        let times: Vec<f64> = t.server_events(0).iter().map(|e| e.at_s).collect();
        assert_eq!(times, vec![1.0, 5.0]);
    }

    #[test]
    fn empty_timeline_reports_empty() {
        let t = FaultTimeline::empty(4);
        assert!(t.is_empty());
        assert!(t.server_events(99).is_empty());
    }
}

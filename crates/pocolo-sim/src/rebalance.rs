//! Dynamic re-placement vs the paper's static whole-range placement.
//!
//! The paper justifies placing once for the *entire load range* by noting
//! that "dynamically moving applications across servers incurs high
//! overheads" (§I). This module makes that trade-off measurable: a cluster
//! whose primaries peak at *different times* (per-server phase-shifted
//! diurnal traces) is run either with the static POColo placement or with
//! periodic re-placement, where every migration costs the moved app a
//! configurable warm-up pause.
//!
//! Measured result (see the tests): even with *free* migrations, myopic
//! chasing slightly loses to the static whole-range placement — the
//! instantaneous matrix misjudges the load range (the Fig. 4 insight) and
//! every move costs a throttling transient. With realistic warm-up pauses
//! the gap widens decisively — exactly the paper's §I argument.

use pocolo_cluster::{PerfMatrix, Solver};
use pocolo_manager::LcPolicy;
use pocolo_workloads::{BeApp, LoadTrace};

use crate::experiment::{ExperimentConfig, FittedCluster, Policy};
use crate::metrics::{ClusterSummary, ServerMetrics};
use crate::server_sim::ServerSim;

/// Configuration of a rebalancing run.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceConfig {
    /// Re-solve the placement every this many seconds (`None` = static).
    pub period_s: Option<f64>,
    /// Warm-up pause a migrated BE app pays, seconds.
    pub migration_pause_s: f64,
    /// Per-server phase shift of the diurnal trace, seconds (server `i`
    /// is shifted by `i × phase_shift_s`).
    pub phase_shift_s: f64,
    /// Diurnal period, seconds.
    pub day_s: f64,
}

/// Outcome of a rebalancing run.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceResult {
    /// Aggregate metrics.
    pub summary: ClusterSummary,
    /// Number of migrations performed.
    pub migrations: usize,
}

/// Runs a phase-shifted-diurnal cluster for `duration_s`, optionally
/// re-solving the placement every `reb.period_s`.
pub fn run_rebalancing(
    config: &ExperimentConfig,
    reb: &RebalanceConfig,
    fitted: &FittedCluster,
    duration_s: f64,
) -> RebalanceResult {
    let n = fitted.lc().len();
    // Per-server phase-shifted diurnal traces.
    let traces: Vec<LoadTrace> = (0..n)
        .map(|i| {
            let shift = i as f64 * reb.phase_shift_s;
            // Shift by replaying the diurnal curve offset in time.
            let samples: Vec<(f64, f64)> = (0..96)
                .map(|k| {
                    let t = k as f64 * reb.day_s / 96.0;
                    let base = LoadTrace::diurnal(0.1, 0.9, reb.day_s);
                    (t, base.load_at(t + shift))
                })
                .collect();
            LoadTrace::replay(samples)
        })
        .collect();

    // Initial placement: the standard POColo solve.
    let mut placement = fitted.placement(Policy::Pocolo {
        solver: Solver::Hungarian,
    });

    let mut sims: Vec<ServerSim> = fitted
        .lc()
        .iter()
        .enumerate()
        .map(|(i, (_, truth, fit))| {
            let be_app = placement[i];
            let (be_truth, be_fitted) = be_models(fitted, be_app);
            ServerSim::new(
                truth.clone(),
                fit.clone(),
                Some(be_truth),
                LcPolicy::PowerOptimized,
                traces[i].clone(),
                truth.provisioned_power(),
                config.meter_noise,
                config.seed ^ ((i as u64) << 4),
            )
            .with_proactive_be(be_fitted)
        })
        .collect();

    let mut migrations = 0usize;
    let mut t = 0.0f64;
    let mut next_rebalance = reb.period_s.unwrap_or(f64::INFINITY);
    while t < duration_s {
        for (i, sim) in sims.iter_mut().enumerate() {
            let _ = i;
            sim.on_manager_tick(t);
        }
        for _ in 0..10 {
            for sim in sims.iter_mut() {
                sim.on_capper_tick(config.capper_period_s);
            }
        }
        t += config.manager_period_s;

        if t >= next_rebalance {
            next_rebalance += reb.period_s.expect("rebalancing enabled");
            // Myopic matrix at each server's *current* load level.
            let servers = fitted.server_profiles();
            let mut values = Vec::with_capacity(fitted.be().len());
            for (_, _, be_fit) in fitted.be() {
                let mut row = Vec::with_capacity(n);
                for (j, server) in servers.iter().enumerate() {
                    let level = traces[j].load_at(t).clamp(0.05, 0.95);
                    let v = pocolo_cluster::estimate_pair_throughput(be_fit, server, &[level])
                        .unwrap_or(0.0);
                    row.push(v);
                }
                values.push(row);
            }
            let matrix = PerfMatrix::new(
                fitted
                    .be()
                    .iter()
                    .map(|(a, _, _)| a.name().to_string())
                    .collect(),
                servers.iter().map(|s| s.label.clone()).collect(),
                values,
            )
            .expect("well-formed myopic matrix");
            let assignment =
                pocolo_cluster::assign::solve(&matrix, Solver::Hungarian).expect("square instance");
            let mut new_placement = placement.clone();
            for (row, col) in assignment.pairs {
                new_placement[col] = fitted.be()[row].0;
            }
            for i in 0..n {
                if new_placement[i] != placement[i] {
                    migrations += 1;
                    let (be_truth, be_fitted) = be_models(fitted, new_placement[i]);
                    sims[i].replace_be(Some(be_truth), Some(be_fitted), reb.migration_pause_s);
                }
            }
            placement = new_placement;
        }
    }

    let metrics: Vec<ServerMetrics> = sims.iter().map(|s| s.metrics().clone()).collect();
    RebalanceResult {
        summary: ClusterSummary::aggregate(&metrics).expect("non-empty cluster"),
        migrations,
    }
}

fn be_models(
    fitted: &FittedCluster,
    app: BeApp,
) -> (
    pocolo_workloads::BeModel,
    pocolo_core::utility::IndirectUtility,
) {
    let entry = fitted
        .be()
        .iter()
        .find(|(a, _, _)| *a == app)
        .expect("every BE app is fitted");
    (entry.1.clone(), entry.2.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_workloads::profiler::ProfilerConfig;

    fn setup() -> (ExperimentConfig, FittedCluster) {
        let config = ExperimentConfig::default();
        let fitted = FittedCluster::fit(&config.profiler);
        (config, fitted)
    }

    fn reb(period: Option<f64>, pause: f64) -> RebalanceConfig {
        RebalanceConfig {
            period_s: period,
            migration_pause_s: pause,
            phase_shift_s: 45.0,
            day_s: 180.0,
        }
    }

    #[test]
    fn static_run_has_no_migrations() {
        let (config, fitted) = setup();
        let r = run_rebalancing(&config, &reb(None, 0.0), &fitted, 120.0);
        assert_eq!(r.migrations, 0);
        assert!(r.summary.avg_be_throughput > 0.1);
        assert!(r.summary.worst_violation_frac < 0.3);
    }

    #[test]
    fn even_free_migrations_only_roughly_match_static() {
        // Myopic instantaneous re-placement loses the Fig-4 whole-range
        // information and pays churn transients; with free migrations it
        // lands close to — but not above — the static placement.
        let (config, fitted) = setup();
        let statice = run_rebalancing(&config, &reb(None, 0.0), &fitted, 180.0);
        let dynamic = run_rebalancing(&config, &reb(Some(30.0), 0.0), &fitted, 180.0);
        assert!(dynamic.migrations > 0, "phase shifts should trigger moves");
        let ratio = dynamic.summary.avg_be_throughput / statice.summary.avg_be_throughput;
        assert!(
            (0.85..=1.05).contains(&ratio),
            "free rebalancing should be in static's neighbourhood, ratio {ratio}"
        );
        assert!(
            ratio <= 1.02,
            "chasing the myopic matrix should not beat whole-range placement, ratio {ratio}"
        );
    }

    #[test]
    fn expensive_migrations_favour_static_placement() {
        // The paper's §I claim: with realistic migration overheads, the
        // whole-range static placement wins.
        let (config, fitted) = setup();
        let statice = run_rebalancing(&config, &reb(None, 0.0), &fitted, 180.0);
        let costly = run_rebalancing(&config, &reb(Some(30.0), 25.0), &fitted, 180.0);
        assert!(costly.migrations > 0);
        assert!(
            statice.summary.avg_be_throughput > costly.summary.avg_be_throughput,
            "static {} should beat costly rebalancing {}",
            statice.summary.avg_be_throughput,
            costly.summary.avg_be_throughput
        );
    }

    #[test]
    fn deterministic() {
        let (config, fitted) = setup();
        let a = run_rebalancing(&config, &reb(Some(40.0), 5.0), &fitted, 100.0);
        let b = run_rebalancing(&config, &reb(Some(40.0), 5.0), &fitted, 100.0);
        assert_eq!(a, b);
        let _ = ProfilerConfig::default();
    }
}

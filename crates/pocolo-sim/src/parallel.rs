//! Thread-scope fan-out for independent simulation work.
//!
//! The experiment pipeline is built from embarrassingly parallel units —
//! (policy, load level) sweep cells and per-server [`ServerSim`] runs — so
//! this module provides a deterministic `map` over such units using only
//! `std::thread::scope` (no external thread-pool dependency, which matters
//! in offline builds).
//!
//! Determinism: each input item owns slot `i` of the output vector no
//! matter which worker executes it, and every item is a self-contained
//! seeded computation, so results are **bit-identical** across
//! [`Parallelism::Serial`], [`Parallelism::Auto`], and any
//! [`Parallelism::Fixed`] width. Worker count only changes wall-clock time.
//!
//! [`ServerSim`]: crate::server_sim::ServerSim

use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads the experiment pipeline may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Run everything on the calling thread.
    Serial,
    /// One worker per available CPU (`std::thread::available_parallelism`).
    Auto,
    /// Exactly `n` workers (clamped to at least 1).
    Fixed(usize),
}

impl Default for Parallelism {
    /// `Auto`: simulations are compute-bound and scale with cores.
    fn default() -> Self {
        Parallelism::Auto
    }
}

impl Parallelism {
    /// The number of worker threads to spawn for `jobs` independent items.
    ///
    /// Never exceeds `jobs` (idle workers are pointless) and is at least 1.
    pub fn worker_count(&self, jobs: usize) -> usize {
        let want = match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Fixed(n) => (*n).max(1),
        };
        want.min(jobs).max(1)
    }
}

impl FromStr for Parallelism {
    type Err = String;

    /// Parses the CLI syntax: `serial`, `auto`, or a positive thread count.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "serial" => Ok(Parallelism::Serial),
            "auto" => Ok(Parallelism::Auto),
            n => match n.parse::<usize>() {
                Ok(0) => Err("--parallelism thread count must be at least 1".to_string()),
                Ok(n) => Ok(Parallelism::Fixed(n)),
                Err(_) => Err(format!(
                    "invalid parallelism {s:?}: expected `serial`, `auto`, or a thread count"
                )),
            },
        }
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Serial => f.write_str("serial"),
            Parallelism::Auto => f.write_str("auto"),
            Parallelism::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// Applies `f` to every item, fanning out across worker threads, and
/// returns the results **in input order**.
///
/// Work is distributed by an atomic cursor (work stealing at item
/// granularity), so uneven item costs don't leave workers idle. With
/// [`Parallelism::Serial`] — or a single item — no threads are spawned at
/// all and `f` runs inline on the caller.
///
/// # Panics
///
/// Propagates a panic from `f`: if any worker panics, the scope join
/// panics on the calling thread.
pub fn map<T, R, F>(parallelism: Parallelism, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = parallelism.worker_count(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = slots.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let results = &results;
    let cursor = &cursor;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot lock")
                    .take()
                    .expect("each slot is claimed exactly once");
                let out = f(item);
                *results[i].lock().expect("result slot lock") = Some(out);
            });
        }
    });

    results
        .iter()
        .map(|slot| {
            slot.lock()
                .expect("result slot lock")
                .take()
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let out = map(Parallelism::Fixed(4), (0..100).collect(), |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |i: u64| -> u64 {
            // A little arithmetic so threads actually interleave.
            (0..1000).fold(i, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        let serial = map(Parallelism::Serial, (0..64).collect(), work);
        let auto = map(Parallelism::Auto, (0..64).collect(), work);
        let fixed = map(Parallelism::Fixed(3), (0..64).collect(), work);
        assert_eq!(serial, auto);
        assert_eq!(serial, fixed);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<i32> = map(Parallelism::Auto, vec![], |i: i32| i);
        assert!(empty.is_empty());
        assert_eq!(map(Parallelism::Fixed(8), vec![7], |i| i + 1), vec![8]);
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(Parallelism::Serial.worker_count(100), 1);
        assert_eq!(Parallelism::Fixed(8).worker_count(3), 3);
        assert_eq!(Parallelism::Fixed(0).worker_count(3), 1);
        assert!(Parallelism::Auto.worker_count(1000) >= 1);
        assert_eq!(Parallelism::Auto.worker_count(0), 1);
    }

    #[test]
    fn parses_cli_forms() {
        assert_eq!("serial".parse(), Ok(Parallelism::Serial));
        assert_eq!("auto".parse(), Ok(Parallelism::Auto));
        assert_eq!("6".parse(), Ok(Parallelism::Fixed(6)));
        assert!("0".parse::<Parallelism>().is_err());
        assert!("fast".parse::<Parallelism>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for p in [
            Parallelism::Serial,
            Parallelism::Auto,
            Parallelism::Fixed(4),
        ] {
            assert_eq!(p.to_string().parse::<Parallelism>(), Ok(p));
        }
    }

    #[test]
    fn moves_non_clone_items() {
        struct Owned(String);
        let items = vec![Owned("a".into()), Owned("b".into())];
        let out = map(Parallelism::Fixed(2), items, |o| o.0);
        assert_eq!(out, vec!["a", "b"]);
    }
}

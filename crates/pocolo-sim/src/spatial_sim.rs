//! End-to-end simulation of **spatial sharing**: one primary plus several
//! best-effort apps partitioned across the spare box (§V-G future work,
//! built on [`pocolo_simserver::MultiTenantServer`]).

use pocolo_core::units::Watts;
use pocolo_core::utility::IndirectUtility;
use pocolo_manager::spatial::split_spare;
use pocolo_manager::{LcPolicy, ManagerConfig, ServerManager};
use pocolo_simserver::power::{PowerDrawModel, PowerMeter};
use pocolo_simserver::{MultiPowerCapper, MultiTenantServer, TenantAllocation};
use pocolo_workloads::{BeModel, LcModel, LoadTrace};

use crate::metrics::ServerMetrics;

/// One best-effort participant in a spatial-sharing simulation.
#[derive(Debug)]
pub struct SpatialTenant {
    /// Ground truth driving throughput and power.
    pub truth: BeModel,
    /// Fitted utility providing the preference vector for the split.
    pub fitted: IndirectUtility,
}

/// A server hosting the primary plus `k` spatially-isolated secondaries.
#[derive(Debug)]
pub struct SpatialServerSim {
    lc_truth: LcModel,
    /// Plans the primary's size; this backend actuates the multi-tenant
    /// split itself (the spare box goes to *several* secondaries).
    manager: ServerManager,
    tenants: Vec<SpatialTenant>,
    server: MultiTenantServer,
    capper: MultiPowerCapper,
    meter: PowerMeter,
    power_model: PowerDrawModel,
    trace: LoadTrace,
    metrics: ServerMetrics,
    per_tenant_integral: Vec<f64>,
    last_slack: Option<f64>,
    current_load_rps: f64,
}

impl SpatialServerSim {
    /// Assembles the simulation. The secondaries' split follows their
    /// fitted preference vectors on every manager epoch.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        lc_truth: LcModel,
        lc_fitted: IndirectUtility,
        tenants: Vec<SpatialTenant>,
        policy: LcPolicy,
        trace: LoadTrace,
        power_cap: Watts,
        meter_noise: f64,
        seed: u64,
    ) -> Self {
        let machine = lc_truth.machine().clone();
        let n = tenants.len();
        SpatialServerSim {
            power_model: PowerDrawModel::new(machine.clone()),
            server: MultiTenantServer::new(machine, power_cap),
            lc_truth,
            manager: ServerManager::new(lc_fitted, policy, ManagerConfig::default()),
            tenants,
            capper: MultiPowerCapper::default(),
            meter: PowerMeter::new(meter_noise, seed),
            trace,
            metrics: ServerMetrics::new(power_cap),
            per_tenant_integral: vec![0.0; n],
            last_slack: None,
            current_load_rps: 0.0,
        }
    }

    /// Aggregate metrics (the `be_throughput` fields hold the *sum* over
    /// all secondaries).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Time-average throughput of each secondary, in tenant order.
    pub fn per_tenant_throughput(&self) -> Vec<f64> {
        if self.metrics.duration_s > 0.0 {
            self.per_tenant_integral
                .iter()
                .map(|v| v / self.metrics.duration_s)
                .collect()
        } else {
            vec![0.0; self.per_tenant_integral.len()]
        }
    }

    /// Observed primary latency slack right now.
    pub fn lc_slack(&self) -> f64 {
        match self.server.primary() {
            Some(alloc) => self.lc_truth.latency_slack(self.current_load_rps, alloc),
            None => 1.0,
        }
    }

    /// The 1 s manager tick: size the primary by feedback, split the spare
    /// box among the secondaries by preference, reinstall everyone
    /// (carrying the capper's DVFS/quota state per tenant).
    pub fn on_manager_tick(&mut self, now_s: f64) {
        self.current_load_rps = self.trace.load_at(now_s) * self.lc_truth.peak_load_rps();
        let Ok((c, w)) = self
            .manager
            .plan_analytic(self.current_load_rps, self.last_slack)
        else {
            return;
        };
        let machine = self.lc_truth.machine().clone();

        // Remember the capper state per tenant before re-partitioning.
        let prior: Vec<Option<TenantAllocation>> = (0..self.tenants.len())
            .map(|i| self.server.secondary(i as u64).copied())
            .collect();
        self.server.clear_secondaries();
        let (primary, _) =
            pocolo_manager::partition(&machine, c, w, machine.freq_max(), machine.freq_max());
        if self.server.install_primary(primary).is_err() {
            return;
        }
        let prefs: Vec<_> = self
            .tenants
            .iter()
            .map(|t| t.fitted.preference_vector())
            .collect();
        let split = split_spare(&machine, c, w, machine.freq_max(), &prefs);
        for (i, mut alloc) in split.into_iter().enumerate() {
            if let Some(Some(old)) = prior.get(i) {
                alloc.frequency = old.frequency;
                alloc.cpu_quota = old.cpu_quota;
            }
            // A failed install (should not happen: split is disjoint) just
            // skips that tenant for this epoch.
            let _ = self.server.add_secondary(i as u64, alloc);
        }
    }

    /// Instantaneous true server power.
    pub fn true_power(&self) -> Watts {
        let mut draws = Vec::with_capacity(1 + self.tenants.len());
        if let Some(alloc) = self.server.primary() {
            draws.push(
                self.lc_truth
                    .power_draw(self.current_load_rps, alloc, &self.power_model),
            );
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if let Some(alloc) = self.server.secondary(i as u64) {
                draws.push(t.truth.power_draw(alloc, &self.power_model));
            }
        }
        self.power_model.server_power(draws)
    }

    /// The 100 ms capper tick: sample, throttle, record.
    pub fn on_capper_tick(&mut self, dt: f64) {
        let true_power = self.true_power();
        let measured = self.meter.sample(true_power);
        let throttled = self
            .capper
            .step(&mut self.server, measured)
            .unwrap_or(false);
        let slack = self.lc_slack();
        self.last_slack = Some(slack);
        let mut total_thpt = 0.0;
        for (i, t) in self.tenants.iter().enumerate() {
            let thpt = self
                .server
                .secondary(i as u64)
                .map(|alloc| t.truth.throughput(alloc))
                .unwrap_or(0.0);
            self.per_tenant_integral[i] += thpt * dt;
            total_thpt += thpt;
        }
        self.metrics
            .record(dt, true_power, total_thpt, slack, throttled, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_core::fit::{fit_indirect_utility, FitOptions};
    use pocolo_simserver::MachineSpec;
    use pocolo_workloads::profiler::{profile_be, profile_lc, ProfilerConfig};
    use pocolo_workloads::{BeApp, LcApp};

    fn fitted_be(app: BeApp, machine: &MachineSpec) -> SpatialTenant {
        let power = PowerDrawModel::new(machine.clone());
        let space = machine.resource_space();
        let truth = BeModel::for_app(app, machine.clone());
        let samples = profile_be(&truth, &power, &space, &ProfilerConfig::default());
        let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default())
            .unwrap()
            .utility;
        SpatialTenant { truth, fitted }
    }

    fn make_sim(bes: Vec<BeApp>, load: f64) -> SpatialServerSim {
        let machine = MachineSpec::xeon_e5_2650();
        let power = PowerDrawModel::new(machine.clone());
        let space = machine.resource_space();
        let truth = LcModel::for_app(LcApp::Sphinx, machine.clone());
        let samples = profile_lc(&truth, &power, &space, &ProfilerConfig::default());
        let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default())
            .unwrap()
            .utility;
        let tenants = bes.into_iter().map(|b| fitted_be(b, &machine)).collect();
        let cap = truth.provisioned_power();
        SpatialServerSim::new(
            truth,
            fitted,
            tenants,
            LcPolicy::PowerOptimized,
            LoadTrace::Constant(load),
            cap,
            0.01,
            21,
        )
    }

    fn run(sim: &mut SpatialServerSim, seconds: usize) {
        for s in 0..seconds {
            sim.on_manager_tick(s as f64);
            for _ in 0..10 {
                sim.on_capper_tick(0.1);
            }
        }
    }

    #[test]
    fn two_tenants_share_spatially_without_slo_damage() {
        let mut sim = make_sim(vec![BeApp::Graph, BeApp::Lstm], 0.4);
        run(&mut sim, 25);
        assert!(sim.lc_slack() >= 0.0, "SLO must hold: {}", sim.lc_slack());
        let per = sim.per_tenant_throughput();
        assert_eq!(per.len(), 2);
        assert!(per[0] > 0.05, "graph makes progress: {per:?}");
        assert!(per[1] > 0.05, "lstm makes progress: {per:?}");
        // Power respected on average.
        assert!(sim.metrics().power_utilization() < 1.03);
    }

    #[test]
    fn adding_a_second_tenant_increases_total_throughput() {
        let mut solo = make_sim(vec![BeApp::Graph], 0.4);
        run(&mut solo, 25);
        let mut pair = make_sim(vec![BeApp::Graph, BeApp::Lstm], 0.4);
        run(&mut pair, 25);
        assert!(
            pair.metrics().be_throughput_avg > solo.metrics().be_throughput_avg,
            "pair total {} should exceed solo graph {}",
            pair.metrics().be_throughput_avg,
            solo.metrics().be_throughput_avg
        );
    }

    #[test]
    fn preference_split_gives_graph_the_cores() {
        let mut sim = make_sim(vec![BeApp::Graph, BeApp::Lstm], 0.3);
        run(&mut sim, 10);
        let graph = sim.server.secondary(0).copied().unwrap();
        let lstm = sim.server.secondary(1).copied().unwrap();
        assert!(
            graph.cores.count() > lstm.cores.count(),
            "graph {graph} should hold more cores than lstm {lstm}"
        );
        assert!(
            lstm.ways.count() > graph.ways.count(),
            "lstm {lstm} should hold more ways than graph {graph}"
        );
    }

    #[test]
    fn high_load_squeezes_everyone_out_gracefully() {
        let mut sim = make_sim(vec![BeApp::Graph, BeApp::Lstm], 0.95);
        run(&mut sim, 20);
        // Primary healthy; secondaries may be evicted entirely.
        assert!(sim.lc_slack() >= -0.05, "slack {}", sim.lc_slack());
        assert!(sim.metrics().be_throughput_avg < 0.5);
    }
}

//! A minimal discrete-event engine: a time-ordered queue of typed events.
//!
//! Time is kept in integer microseconds so ordering is exact; ties are
//! broken by insertion order (FIFO), which keeps simulations deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventEntry<E> {
    /// Simulation time in microseconds.
    pub time_us: u64,
    /// The event payload.
    pub event: E,
}

/// The event queue and clock.
///
/// ```
/// use pocolo_sim::Engine;
/// #[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Clone, Copy)]
/// enum Ev { Tick }
///
/// let mut engine = Engine::new();
/// engine.schedule_at_seconds(1.0, Ev::Tick);
/// engine.schedule_at_seconds(0.5, Ev::Tick);
/// let first = engine.pop().unwrap();
/// assert_eq!(first.time_us, 500_000);
/// assert_eq!(engine.now_seconds(), 0.5);
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    now_us: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<QueueEntry<E>>>,
}

/// Heap entry ordered by `(time, seq)` alone; the payload rides on the side
/// and never participates in comparisons. The `(time, seq)` key is unique
/// per entry (`seq` increments on every schedule), so this ordering is a
/// total order consistent with `Eq` — unlike the earlier payload wrapper
/// whose `cmp` returned `Equal` unconditionally.
#[derive(Debug, Clone, Copy)]
struct QueueEntry<E> {
    key: (u64, u64),
    event: E,
}

impl<E> PartialEq for QueueEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for QueueEntry<E> {}

impl<E> PartialOrd for QueueEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for QueueEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Engine<E> {
    /// An empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            now_us: 0,
            seq: 0,
            queue: BinaryHeap::new(),
        }
    }

    /// Current simulation time in seconds.
    pub fn now_seconds(&self) -> f64 {
        self.now_us as f64 / 1e6
    }

    /// Current simulation time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Schedules `event` at an absolute time in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `t_seconds` is negative, NaN, or in the past.
    pub fn schedule_at_seconds(&mut self, t_seconds: f64, event: E) {
        assert!(
            t_seconds.is_finite() && t_seconds >= 0.0,
            "event time must be a non-negative number"
        );
        let t_us = (t_seconds * 1e6).round() as u64;
        assert!(t_us >= self.now_us, "cannot schedule into the past");
        self.seq += 1;
        self.queue.push(Reverse(QueueEntry {
            key: (t_us, self.seq),
            event,
        }));
    }

    /// Schedules `event` `dt_seconds` from now.
    ///
    /// # Panics
    ///
    /// Panics if `dt_seconds` is negative or NaN.
    pub fn schedule_in(&mut self, dt_seconds: f64, event: E) {
        self.schedule_at_seconds(self.now_seconds() + dt_seconds, event);
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        self.queue.pop().map(|Reverse(entry)| {
            self.now_us = entry.key.0;
            EventEntry {
                time_us: entry.key.0,
                event: entry.event,
            }
        })
    }

    /// Peeks at the next event time without popping, in seconds.
    pub fn peek_time_seconds(&self) -> Option<f64> {
        self.queue
            .peek()
            .map(|Reverse(entry)| entry.key.0 as f64 / 1e6)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ev {
        A,
        B,
    }

    #[test]
    fn pops_in_time_order() {
        let mut e = Engine::new();
        e.schedule_at_seconds(2.0, Ev::A);
        e.schedule_at_seconds(1.0, Ev::B);
        e.schedule_at_seconds(3.0, Ev::A);
        let order: Vec<(u64, Ev)> = std::iter::from_fn(|| e.pop())
            .map(|x| (x.time_us, x.event))
            .collect();
        assert_eq!(
            order,
            vec![(1_000_000, Ev::B), (2_000_000, Ev::A), (3_000_000, Ev::A)]
        );
    }

    #[test]
    fn ties_are_fifo() {
        let mut e = Engine::new();
        e.schedule_at_seconds(1.0, Ev::A);
        e.schedule_at_seconds(1.0, Ev::B);
        assert_eq!(e.pop().unwrap().event, Ev::A);
        assert_eq!(e.pop().unwrap().event, Ev::B);
    }

    #[test]
    fn bulk_same_time_events_pop_fifo() {
        // Regression for the old payload wrapper whose `Ord::cmp` returned
        // `Equal` unconditionally: with many entries at one timestamp the
        // heap compares payload wrappers directly, so a dishonest ordering
        // could surface as a scrambled pop order. Insertion order must win.
        let mut e = Engine::new();
        for i in 0..256u32 {
            e.schedule_at_seconds(1.0, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| e.pop()).map(|x| x.event).collect();
        assert_eq!(order, (0..256).collect::<Vec<_>>());
    }

    #[test]
    fn payloads_without_eq_are_accepted() {
        // The keyed queue entry no longer requires `E: Eq`, so payloads can
        // carry floats or closures' state.
        let mut e = Engine::new();
        e.schedule_at_seconds(2.0, 2.0f64);
        e.schedule_at_seconds(1.0, 1.0f64);
        assert_eq!(e.pop().unwrap().event, 1.0);
        assert_eq!(e.pop().unwrap().event, 2.0);
    }

    #[test]
    fn clock_advances() {
        let mut e = Engine::new();
        assert_eq!(e.now_seconds(), 0.0);
        e.schedule_in(0.5, Ev::A);
        assert_eq!(e.peek_time_seconds(), Some(0.5));
        e.pop();
        assert!((e.now_seconds() - 0.5).abs() < 1e-9);
        e.schedule_in(0.25, Ev::B);
        e.pop();
        assert!((e.now_seconds() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn len_and_empty() {
        let mut e = Engine::new();
        assert!(e.is_empty());
        e.schedule_at_seconds(1.0, Ev::A);
        assert_eq!(e.len(), 1);
        e.pop();
        assert!(e.is_empty());
        assert!(e.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e = Engine::new();
        e.schedule_at_seconds(1.0, Ev::A);
        e.pop();
        e.schedule_at_seconds(0.5, Ev::B);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nan_time_panics() {
        let mut e = Engine::new();
        e.schedule_at_seconds(f64::NAN, Ev::A);
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn thousands_of_random_events_pop_in_order() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut engine: Engine<u32> = Engine::new();
        for i in 0..5000u32 {
            engine.schedule_at_seconds(rng.gen_range(0.0..1000.0), i);
        }
        let mut last = 0.0;
        let mut count = 0;
        while let Some(e) = engine.pop() {
            let t = e.time_us as f64 / 1e6;
            assert!(t >= last, "events must pop in time order");
            last = t;
            count += 1;
        }
        assert_eq!(count, 5000);
    }

    #[test]
    fn interleaved_scheduling_while_popping() {
        // The cluster sim's pattern: every popped event re-schedules
        // itself. Handles must never go backwards in time.
        let mut engine: Engine<usize> = Engine::new();
        for s in 0..4 {
            engine.schedule_at_seconds(0.1 * (s + 1) as f64, s);
        }
        let mut pops = 0;
        let mut per_server = [0usize; 4];
        while pops < 400 {
            let e = engine.pop().expect("self-rescheduling never drains");
            per_server[e.event] += 1;
            engine.schedule_in(0.1, e.event);
            pops += 1;
        }
        // Fairness: all four periodic events fire (nearly) equally often;
        // the staggered start offsets allow a ±2 spread at the cut-off.
        for &c in &per_server {
            assert!((98..=102).contains(&c), "unbalanced firing: {per_server:?}");
        }
    }
}

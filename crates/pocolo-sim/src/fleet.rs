//! Heterogeneous fleet experiments: the per-SKU [`FleetSpec`] catalog
//! threaded end-to-end through fitting, placement, fault physics, and
//! the simulation engine.
//!
//! Two placement modes run over the *same* physical fleet:
//!
//! - **SKU-aware**: the cluster manager plans on each slot's true
//!   [`ServerProfile`] (class geometry, per-class power cap), reuses
//!   expansion paths through class-keyed matrix columns, and replans
//!   brownouts with each slot's *curve-derated* cap factor.
//! - **SKU-blind**: the manager pretends every slot is the reference
//!   class (the fleet's first entry) and replans with the raw requested
//!   cap factor.
//!
//! The physics never lies in either mode: every server simulates its own
//! class's machine, and a brownout derates each SKU through its own
//! [`pocolo_core::fleet::PowerCurve`] — blindness is strictly a
//! control-plane property. The gap between the two modes is therefore
//! the placement value of knowing the fleet.

use pocolo_cluster::{Assignment, ClusterManager, PerfMatrix, ServerProfile, Solver};
use pocolo_core::fleet::FleetSpec;
use pocolo_faults::{eviction_order, FaultKind, FaultSpec};
use pocolo_simserver::MachineSpec;
use pocolo_workloads::profiler::ProfilerConfig;
use pocolo_workloads::{BeApp, LcApp, LoadTrace};

use crate::experiment::{
    run_cluster, ExperimentConfig, ExperimentResult, FittedCluster, PairResult, Policy, SlotSpec,
};
use crate::faults::{FaultTimeline, ResilienceConfig, ServerFaultAction};

/// Class-assignment seed the seeded demo fleet is pinned to, shared by
/// the `demo-fleet` CLI default, the mixed-fleet integration test, and
/// the CI smoke gate. Calibrated (see `scan_mixed_fleet_seeds`) so the
/// SKU-aware plan beats the blind one by a strict margin while every
/// class honors its cap.
pub const DEMO_FLEET_SEED: u64 = 11;

/// Chaos-scenario fault seed paired with [`DEMO_FLEET_SEED`].
pub const DEMO_FAULT_SEED: u64 = 1;

/// Per-class fitted models plus the seeded class-per-slot assignment: the
/// heterogeneous counterpart of [`FittedCluster`].
///
/// Each server class is profiled and fitted once on its own simulated
/// machine ([`MachineSpec::from_class`]); a slot then borrows its class's
/// fit. A homogeneous fleet of the `xeon` catalog class reproduces the
/// legacy [`FittedCluster::fit`] models knob-for-knob.
#[derive(Debug, Clone)]
pub struct FittedFleet {
    spec: FleetSpec,
    assignment: Vec<usize>,
    fits: Vec<FittedCluster>,
}

impl FittedFleet {
    /// Profiles and fits every class in the fleet, then deals classes to
    /// the [`LcApp::ALL`] server slots with the spec's seeded
    /// largest-remainder assignment.
    pub fn fit(profiler: &ProfilerConfig, spec: FleetSpec, seed: u64) -> Self {
        let assignment = spec.assign(LcApp::ALL.len(), seed);
        let fits = spec
            .entries()
            .iter()
            .map(|(class, _)| FittedCluster::fit_on(profiler, MachineSpec::from_class(class)))
            .collect();
        FittedFleet {
            spec,
            assignment,
            fits,
        }
    }

    /// The fleet composition this cluster was fitted for.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// Number of server slots.
    pub fn n_servers(&self) -> usize {
        self.assignment.len()
    }

    /// Class index (into [`FleetSpec::class`]) of one server slot.
    pub fn class_of(&self, server: usize) -> usize {
        self.assignment[server]
    }

    /// Class name of one server slot.
    pub fn class_name(&self, server: usize) -> &str {
        self.spec.class(self.assignment[server]).name()
    }

    /// The fitted models governing one server slot (its class's fit).
    pub fn fit_for(&self, server: usize) -> &FittedCluster {
        &self.fits[self.assignment[server]]
    }

    /// True per-slot server profiles: slot `s` hosts `LcApp::ALL[s]`
    /// fitted on `s`'s class machine, capped at that machine's
    /// provisioned power.
    pub fn server_profiles(&self) -> Vec<ServerProfile> {
        (0..self.n_servers())
            .map(|s| self.fit_for(s).server_profiles()[s].clone())
            .collect()
    }

    /// Class-keyed matrix cache keys: two columns share a key exactly
    /// when they share both the server class and the primary, so the
    /// [`pocolo_cluster::PerfMatrixBuilder`] expansion-path cache solves
    /// each (class, primary) pair once.
    pub fn profile_keys(&self) -> Vec<usize> {
        let n = self.n_servers();
        (0..n).map(|s| self.assignment[s] * n + s).collect()
    }

    /// A requested brownout cap factor pushed through slot `server`'s
    /// class power curve — what the slot's hardware actually holds.
    pub fn cap_factor_for(&self, server: usize, requested: f64) -> f64 {
        self.spec
            .class(self.assignment[server])
            .curve()
            .effective_cap_factor(requested)
    }

    /// The SKU-aware cluster manager: true per-slot profiles with
    /// class-keyed matrix columns.
    pub fn manager(&self) -> ClusterManager {
        ClusterManager::new(self.fits[0].be_profiles(), self.server_profiles())
            .with_profile_keys(self.profile_keys())
    }

    /// The SKU-blind cluster manager: every slot modelled as the
    /// reference class (the fleet's first entry).
    pub fn blind_manager(&self) -> ClusterManager {
        ClusterManager::new(self.fits[0].be_profiles(), self.fits[0].server_profiles())
    }
}

/// Outcome of one fleet run under one placement mode.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRunResult {
    /// Full experiment result (pairs + cluster summary).
    pub result: ExperimentResult,
    /// The BE co-runner placed on each slot.
    pub placement: Vec<BeApp>,
    /// The placement's value on the *true* (SKU-aware) performance
    /// matrix — the comparable planning-level utility for both modes.
    pub planned_value: f64,
    /// Servers that broke the provisioned-cap hard guarantee: average
    /// power over the cap (a sustained breach), or peak power beyond the
    /// reactive capper's one-tick reaction band (15 % — chaos load steps
    /// spike single ticks to a measured worst of ~10 % across calibration
    /// seeds before the 100 ms capper corrects; see
    /// `scan_demo_dwell_sensitivity`).
    pub cap_violations: usize,
}

/// Side-by-side SKU-aware vs SKU-blind outcome over one fitted fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetComparison {
    /// Fleet spec display form (round-trips through `FleetSpec::from_str`).
    pub fleet: String,
    /// Class-assignment seed.
    pub seed: u64,
    /// Class name per server slot.
    pub classes: Vec<String>,
    /// SKU-aware run.
    pub aware: FleetRunResult,
    /// SKU-blind run.
    pub blind: FleetRunResult,
}

impl FleetComparison {
    /// Planning-level utility margin of awareness: aware minus blind
    /// placement value on the true matrix. Non-negative whenever the
    /// solver is exact, strictly positive when blindness mis-places.
    pub fn utility_margin(&self) -> f64 {
        self.aware.planned_value - self.blind.planned_value
    }

    /// Total cap violations across both runs (zero = the cap held as a
    /// hard guarantee on every class in every mode).
    pub fn cap_violations(&self) -> usize {
        self.aware.cap_violations + self.blind.cap_violations
    }
}

fn be_row(app: BeApp) -> usize {
    BeApp::ALL
        .iter()
        .position(|&a| a == app)
        .expect("every BE app is a matrix row")
}

/// Compiles the per-server fault timeline and eviction ranks for a fleet
/// run. Brownout *physics* always derate each slot through its own class
/// curve; only the resilient replan differs between modes (per-slot
/// derated factors when aware, the raw requested factor when blind).
#[allow(clippy::too_many_arguments)]
fn compile_fleet_faults(
    fleet: &FittedFleet,
    manager: &ClusterManager,
    matrix: &PerfMatrix,
    spec: &FaultSpec,
    base_seed: u64,
    duration_s: f64,
    placement: &[BeApp],
    resilience: bool,
    aware: bool,
) -> (FaultTimeline, Vec<usize>) {
    let n = placement.len();
    let plan = spec
        .scenario
        .plan(spec.seed.unwrap_or(base_seed), duration_s, n);
    let mut timeline =
        FaultTimeline::compile_with_curves(&plan, n, |s, f| fleet.cap_factor_for(s, f));
    let values: Vec<f64> = placement
        .iter()
        .enumerate()
        .map(|(server, &be)| matrix.value(be_row(be), server))
        .collect();
    let order = eviction_order(&values);
    let mut ranks = vec![0; n];
    for (rank, &server) in order.iter().enumerate() {
        ranks[server] = rank;
    }
    if resilience {
        let cfg = ResilienceConfig::default();
        let pairs: Vec<(usize, usize)> = placement
            .iter()
            .enumerate()
            .map(|(server, &be)| (be_row(be), server))
            .collect();
        let incumbent = Assignment::new(pairs.clone(), matrix.assignment_value(&pairs));
        for event in plan.events() {
            let FaultKind::BrownoutStart { cap_factor } = &event.kind else {
                continue;
            };
            let intents = if aware {
                let factors: Vec<f64> = (0..n)
                    .map(|s| fleet.cap_factor_for(s, *cap_factor))
                    .collect();
                manager.migration_intents_classed(
                    &factors,
                    &incumbent,
                    cfg.replan_hysteresis,
                    Solver::Hungarian,
                )
            } else {
                manager.migration_intents(
                    *cap_factor,
                    &incumbent,
                    cfg.replan_hysteresis,
                    Solver::Hungarian,
                )
            };
            let Ok(intents) = intents else { continue };
            for (row, server) in intents {
                // The migrating co-runner's models come from the *slot's*
                // class fit: the server knows its own machine even when
                // the cluster plan was blind.
                let (_, truth, fitted) = &fleet.fit_for(server).be()[row];
                timeline.push(
                    server,
                    event.at_s,
                    ServerFaultAction::ReplaceBe {
                        be_truth: Some(Box::new(truth.clone())),
                        be_fitted: Some(Box::new(fitted.clone())),
                        pause_s: cfg.readmit_pause_s,
                    },
                );
            }
        }
    }
    (timeline, ranks)
}

/// Runs one placement mode over the fitted fleet through the paper's
/// load sweep (plus any configured fault scenario) and scores it.
pub fn run_fleet_policy(
    fleet: &FittedFleet,
    config: &ExperimentConfig,
    solver: Solver,
    aware: bool,
) -> FleetRunResult {
    let n = fleet.n_servers();
    let manager = if aware {
        fleet.manager()
    } else {
        fleet.blind_manager()
    };
    let matrix = manager
        .performance_matrix()
        .expect("fitted fleet models are well-formed");
    let solved = manager.place(solver).expect("fleet placement is solvable");
    let mut placement = vec![BeApp::Lstm; n];
    for &(row, col) in &solved.pairs {
        placement[col] = BeApp::ALL[row];
    }
    // Both modes are scored on the TRUE matrix, so the planned values are
    // directly comparable (and aware >= blind for exact solvers).
    let true_matrix = fleet
        .manager()
        .performance_matrix()
        .expect("fitted fleet models are well-formed");
    let pairs: Vec<(usize, usize)> = placement
        .iter()
        .enumerate()
        .map(|(server, &be)| (be_row(be), server))
        .collect();
    let planned_value = true_matrix.assignment_value(&pairs);

    let trace = LoadTrace::paper_sweep(config.dwell_s);
    let duration_s = config.sweep_duration_s();
    let (timeline, ranks) = match &config.faults {
        Some(spec) => compile_fleet_faults(
            fleet,
            &manager,
            &matrix,
            spec,
            config.seed,
            duration_s,
            &placement,
            config.resilience,
            aware,
        ),
        None => (FaultTimeline::empty(n), vec![0; n]),
    };
    let policy = Policy::Pocolo { solver };
    let servers: Vec<_> = (0..n)
        .map(|s| {
            SlotSpec {
                server: s,
                policy,
                be: placement[s],
                rank: ranks[s],
                trace: trace.clone(),
                meter_noise: config.meter_noise,
                seed: config.seed,
                faulted: config.faults.is_some(),
                resilience: config.resilience,
                record_decisions: false,
            }
            .build(fleet.fit_for(s))
        })
        .collect();
    let cluster = run_cluster(
        servers,
        timeline,
        config.manager_period_s,
        config.capper_period_s,
        duration_s,
        config.parallelism,
    );
    let metrics = cluster.metrics();
    // A cap is a hard guarantee up to the capper's reaction time: the
    // reactive capper may overshoot for one 100 ms tick at a load step or
    // brownout edge (measured worst ~1.10× across calibration seeds), so
    // a breach is sustained (average) power over the cap, or a peak past
    // the one-tick reaction band.
    let cap_violations = metrics
        .iter()
        .filter(|m| m.avg_power().0 > m.power_cap.0 || m.peak_power.0 > m.power_cap.0 * 1.15)
        .count();
    // The policy label stays "POColo" (the mode lives in FleetRunResult):
    // a homogeneous `--fleet` run must format byte-identically to the
    // legacy experiment path.
    let result = ExperimentResult {
        policy: Policy::Pocolo { solver }.name().to_string(),
        pairs: (0..n)
            .map(|s| PairResult {
                lc: fleet.fit_for(s).lc()[s].0.name().to_string(),
                be: placement[s].name().to_string(),
                metrics: metrics[s].clone(),
            })
            .collect(),
        summary: cluster.summary(),
    };
    FleetRunResult {
        result,
        placement,
        planned_value,
        cap_violations,
    }
}

/// Fits the fleet once and runs the SKU-aware and SKU-blind placements
/// over identical physics — the `demo-fleet` engine and the mixed-fleet
/// CI gate.
pub fn compare_fleet_policies(
    spec: &FleetSpec,
    seed: u64,
    config: &ExperimentConfig,
    solver: Solver,
) -> FleetComparison {
    let fleet = FittedFleet::fit(&config.profiler, spec.clone(), seed);
    let aware = run_fleet_policy(&fleet, config, solver, true);
    let blind = run_fleet_policy(&fleet, config, solver, false);
    FleetComparison {
        fleet: spec.to_string(),
        seed,
        classes: (0..fleet.n_servers())
            .map(|s| fleet.class_name(s).to_string())
            .collect(),
        aware,
        blind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::run_experiment_with;
    use pocolo_core::fleet::ServerClass;
    use pocolo_faults::Scenario;

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig {
            dwell_s: 3.0,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn homogeneous_xeon_fleet_reproduces_the_legacy_run() {
        let config = ExperimentConfig {
            faults: Some(FaultSpec {
                scenario: Scenario::Chaos,
                seed: Some(5),
            }),
            ..quick_config()
        };
        let spec = FleetSpec::homogeneous(ServerClass::xeon_e5_2650());
        let fleet = FittedFleet::fit(&config.profiler, spec, 7);
        let aware = run_fleet_policy(&fleet, &config, Solver::Hungarian, true);
        let blind = run_fleet_policy(&fleet, &config, Solver::Hungarian, false);
        assert_eq!(
            aware.result.pairs, blind.result.pairs,
            "one class: awareness must not change a single bit"
        );
        assert_eq!(aware.planned_value.to_bits(), blind.planned_value.to_bits());

        let legacy = run_experiment_with(
            Policy::Pocolo {
                solver: Solver::Hungarian,
            },
            &config,
            &FittedCluster::fit(&config.profiler),
        );
        assert_eq!(
            aware.result.pairs, legacy.pairs,
            "homogeneous xeon fleet must be bit-identical to the legacy path"
        );
        assert_eq!(aware.result.summary, legacy.summary);
    }

    #[test]
    #[ignore = "calibration report: legacy homogeneous peak ratios"]
    fn scan_homogeneous_peak_ratios() {
        for fault_seed in 1u64..=6 {
            let config = ExperimentConfig {
                faults: Some(FaultSpec {
                    scenario: Scenario::Chaos,
                    seed: Some(fault_seed),
                }),
                ..quick_config()
            };
            let legacy = run_experiment_with(
                Policy::Pocolo {
                    solver: Solver::Hungarian,
                },
                &config,
                &FittedCluster::fit(&config.profiler),
            );
            let worst = legacy
                .pairs
                .iter()
                .map(|p| p.metrics.peak_power.0 / p.metrics.power_cap.0)
                .fold(0.0f64, f64::max);
            println!("legacy fault_seed={fault_seed} worst_peak_ratio={worst:.4}");
        }
    }

    #[test]
    #[ignore = "calibration report: scan demo seeds"]
    fn scan_mixed_fleet_seeds() {
        let spec: FleetSpec = "mixed3".parse().unwrap();
        let base = quick_config();
        for fleet_seed in [1u64, 3, 7, 11, 17] {
            let fleet = FittedFleet::fit(&base.profiler, spec.clone(), fleet_seed);
            for fault_seed in 1u64..=6 {
                let config = ExperimentConfig {
                    faults: Some(FaultSpec {
                        scenario: Scenario::Chaos,
                        seed: Some(fault_seed),
                    }),
                    ..base.clone()
                };
                let aware = run_fleet_policy(&fleet, &config, Solver::Hungarian, true);
                let blind = run_fleet_policy(&fleet, &config, Solver::Hungarian, false);
                let worst = aware
                    .result
                    .pairs
                    .iter()
                    .chain(&blind.result.pairs)
                    .map(|p| p.metrics.peak_power.0 / p.metrics.power_cap.0)
                    .fold(0.0f64, f64::max);
                println!(
                    "fleet_seed={fleet_seed} fault_seed={fault_seed} classes={:?} margin={:+.4} thpt_margin={:+.4} worst_peak_ratio={:.4}",
                    (0..fleet.n_servers()).map(|s| fleet.class_name(s)).collect::<Vec<_>>(),
                    aware.planned_value - blind.planned_value,
                    aware.result.summary.avg_be_throughput - blind.result.summary.avg_be_throughput,
                    worst
                );
            }
        }
    }

    #[test]
    #[ignore = "calibration report: demo-seed peak ratios across dwell times"]
    fn scan_demo_dwell_sensitivity() {
        let spec: FleetSpec = "mixed3".parse().unwrap();
        for seed in [1u64, 2, 3, 5, 0xC0C0] {
            for dwell_s in [2.0, 3.0, 5.0, 10.0, 20.0] {
                let config = ExperimentConfig {
                    dwell_s,
                    seed,
                    faults: Some(FaultSpec {
                        scenario: Scenario::Chaos,
                        seed: Some(DEMO_FAULT_SEED),
                    }),
                    ..ExperimentConfig::default()
                };
                let cmp =
                    compare_fleet_policies(&spec, DEMO_FLEET_SEED, &config, Solver::Hungarian);
                for (mode, run) in [("aware", &cmp.aware), ("blind", &cmp.blind)] {
                    for p in &run.result.pairs {
                        let m = &p.metrics;
                        println!(
                            "seed={seed} dwell={dwell_s} {mode} {}+{}: avg/cap={:.4} peak/cap={:.4} violations={}",
                            p.lc,
                            p.be,
                            m.avg_power().0 / m.power_cap.0,
                            m.peak_power.0 / m.power_cap.0,
                            run.cap_violations
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mixed_fleet_awareness_pays_and_caps_hold() {
        let config = ExperimentConfig {
            faults: Some(FaultSpec {
                scenario: Scenario::Chaos,
                seed: Some(DEMO_FAULT_SEED),
            }),
            ..quick_config()
        };
        let spec: FleetSpec = "mixed3".parse().unwrap();
        let cmp = compare_fleet_policies(&spec, DEMO_FLEET_SEED, &config, Solver::Hungarian);
        assert_eq!(cmp.classes.len(), 4);
        assert!(
            cmp.classes.iter().any(|c| c != &cmp.classes[0]),
            "mixed3 at seed {DEMO_FLEET_SEED} must actually mix classes"
        );
        assert!(
            cmp.utility_margin() > 0.0,
            "the pinned demo seed must show a measurable awareness margin: {}",
            cmp.utility_margin()
        );
        assert_eq!(
            cmp.cap_violations(),
            0,
            "power cap must hold as a hard guarantee on every class"
        );
    }
}

//! End-to-end heterogeneous-fleet properties exercised through the
//! public API: every cataloged SKU must run the full experiment pipeline,
//! the spec grammar must round-trip, and weighted fleets must apportion
//! slots the way the spec promises.

use pocolo_cluster::Solver;
use pocolo_core::fleet::{FleetSpec, ServerClass};
use pocolo_sim::experiment::ExperimentConfig;
use pocolo_sim::fleet::{run_fleet_policy, FittedFleet};

fn quick_config() -> ExperimentConfig {
    ExperimentConfig {
        dwell_s: 1.0,
        ..ExperimentConfig::default()
    }
}

/// Every SKU in the catalog — not just the legacy Xeon — must drive the
/// whole pipeline: profile, fit, place, simulate, meter. And with one
/// class, SKU awareness must be moot.
#[test]
fn every_catalog_class_runs_the_full_pipeline() {
    let config = quick_config();
    for name in ServerClass::CATALOG {
        let spec: FleetSpec = name.parse().unwrap();
        let fleet = FittedFleet::fit(&config.profiler, spec, 0);
        let aware = run_fleet_policy(&fleet, &config, Solver::Hungarian, true);
        let blind = run_fleet_policy(&fleet, &config, Solver::Hungarian, false);
        assert_eq!(
            aware.result.pairs, blind.result.pairs,
            "{name}: single-class awareness must not change anything"
        );
        assert_eq!(aware.cap_violations, 0, "{name}: caps are a hard guarantee");
        assert!(
            aware.result.summary.avg_be_throughput > 0.0,
            "{name}: best-effort work must actually run"
        );
        for pair in &aware.result.pairs {
            assert!(
                pair.metrics.avg_power().0 <= pair.metrics.power_cap.0,
                "{name}: sustained power {:.1} W exceeds cap {:.1} W",
                pair.metrics.avg_power().0,
                pair.metrics.power_cap.0
            );
        }
    }
}

/// The `--fleet` grammar round-trips: displaying a parsed spec re-parses
/// to the same fleet, including geometry overrides and weights.
#[test]
fn fleet_spec_grammar_round_trips() {
    for raw in ["mixed3", "xeon", "xeon*2+turbo", "turbo/8/10+stepcell*3"] {
        let spec: FleetSpec = raw.parse().unwrap();
        let reparsed: FleetSpec = spec.to_string().parse().unwrap();
        assert_eq!(
            spec.to_string(),
            reparsed.to_string(),
            "{raw} must round-trip through Display"
        );
        assert_eq!(spec.assign(8, 42), reparsed.assign(8, 42));
    }
}

/// Weighted specs apportion slots by largest remainder: `xeon*3+turbo`
/// over 8 slots is 6 xeons and 2 turbos no matter how the seed shuffles
/// which slot gets which class.
#[test]
fn weighted_fleets_apportion_slots_by_weight() {
    let spec: FleetSpec = "xeon*3+turbo".parse().unwrap();
    for seed in 0..16u64 {
        let assignment = spec.assign(8, seed);
        let xeons = assignment.iter().filter(|&&c| c == 0).count();
        assert_eq!(xeons, 6, "seed {seed}: 3:1 weights over 8 slots");
        assert_eq!(assignment.len() - xeons, 2);
    }
    // Different seeds must actually shuffle slot order at least once.
    let baseline = spec.assign(8, 0);
    assert!(
        (1..16u64).any(|seed| spec.assign(8, seed) != baseline),
        "seeded assignment should vary slot order across seeds"
    );
}

//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API Pocolo's property tests use:
//! the [`proptest!`] macro with `arg in strategy` bindings and an optional
//! `#![proptest_config(...)]` header, range / tuple / [`collection::vec`] /
//! [`any`] strategies, [`Strategy::prop_map`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! cases are drawn from a deterministic RNG seeded per test function, so a
//! failure reproduces on every run. Counterexamples print the generated
//! inputs instead of a minimized case.

#![warn(missing_docs)]

pub use rand;

use rand::prelude::*;

/// Test-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected (assumption-failed) cases before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded, not failed.
    Reject,
    /// A `prop_assert!` failed with this message.
    Fail(String),
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite, broad range; property tests on NaN/inf use explicit
        // strategies instead.
        rng.gen_range(-1e12..1e12)
    }
}

/// Strategy over all values of `T` (see [`Arbitrary`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Admissible length specifications for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-test seed derived from the test's name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The glob-import surface used by test modules.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(stringify!($name)),
            );
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                // Render the inputs before the body can move them, so the
                // failure report can still show them.
                let mut inputs = String::new();
                $(inputs.push_str(&format!(
                    "\n  {} = {:?}",
                    stringify!($arg),
                    $arg
                ));)+
                let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    { $body }
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "too many prop_assume! rejections ({rejected})"
                        );
                    }
                    Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "property {} failed after {} passing case(s): {}\ninputs:{}",
                            stringify!($name),
                            passed,
                            message,
                            inputs
                        );
                    }
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(x in 3u32..10, y in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (1u32..5, 1u32..5).prop_map(|(a, b)| a * 10 + b),
        ) {
            prop_assert!((11..=44).contains(&pair), "pair {pair}");
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }

        #[test]
        fn vec_strategy_obeys_lengths(
            v in crate::collection::vec(0.0f64..1.0, 2..6),
            w in crate::collection::vec(0u32..5, 3),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(w.len(), 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Doc comments and config headers both parse.
        #[test]
        fn config_header_limits_cases(x in any::<u64>()) {
            let _ = x;
            prop_assert!(true);
        }
    }

    mod failing {
        proptest! {
            #[test]
            #[should_panic(expected = "property")]
            fn always_fails_reports_inputs(x in 0u32..5) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }

    #[test]
    fn just_returns_value() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(crate::Strategy::sample(&crate::Just(7u8), &mut rng), 7);
    }
}

//! Struct-of-arrays request batches.
//!
//! One simulated tick at million-user scale yields ~10⁷ requests, so the
//! per-request record is kept columnar and small (11 bytes): a batch of
//! 10 M requests is ~110 MB of flat arrays instead of a vec of padded
//! structs, appends are four `memcpy`s, and per-column scans (slot counts,
//! digests) stay cache-friendly.

/// A columnar batch of synthesized requests.
///
/// All four lanes always have the same length; the only way to grow a
/// batch is [`RequestBatch::push`] / [`RequestBatch::append`], which
/// preserve that invariant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestBatch {
    arrival_us: Vec<u32>,
    slot: Vec<u16>,
    region: Vec<u8>,
    work: Vec<f32>,
}

impl RequestBatch {
    /// An empty batch.
    pub fn new() -> Self {
        RequestBatch::default()
    }

    /// An empty batch with room for `n` requests per lane.
    pub fn with_capacity(n: usize) -> Self {
        RequestBatch {
            arrival_us: Vec::with_capacity(n),
            slot: Vec::with_capacity(n),
            region: Vec::with_capacity(n),
            work: Vec::with_capacity(n),
        }
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.arrival_us.len()
    }

    /// Whether the batch holds no requests.
    pub fn is_empty(&self) -> bool {
        self.arrival_us.is_empty()
    }

    /// Appends one request: arrival offset within the tick (µs), target LC
    /// slot, originating region, and relative work factor.
    pub fn push(&mut self, arrival_us: u32, slot: u16, region: u8, work: f32) {
        self.arrival_us.push(arrival_us);
        self.slot.push(slot);
        self.region.push(region);
        self.work.push(work);
    }

    /// Appends every request of `other`, preserving order.
    pub fn append(&mut self, other: &RequestBatch) {
        self.arrival_us.extend_from_slice(&other.arrival_us);
        self.slot.extend_from_slice(&other.slot);
        self.region.extend_from_slice(&other.region);
        self.work.extend_from_slice(&other.work);
    }

    /// Arrival offsets within the tick, microseconds.
    pub fn arrival_us(&self) -> &[u32] {
        &self.arrival_us
    }

    /// Target LC slot per request.
    pub fn slot(&self) -> &[u16] {
        &self.slot
    }

    /// Originating region per request.
    pub fn region(&self) -> &[u8] {
        &self.region
    }

    /// Relative work factor per request (mean 1.0).
    pub fn work(&self) -> &[f32] {
        &self.work
    }

    /// Requests per LC slot over `n_slots` slots. Requests whose slot id
    /// is out of range (none are generated in-tree) are ignored.
    pub fn slot_counts(&self, n_slots: usize) -> Vec<u64> {
        let mut counts = vec![0u64; n_slots];
        for &s in &self.slot {
            if let Some(c) = counts.get_mut(s as usize) {
                *c += 1;
            }
        }
        counts
    }

    /// Requests per region over `n_regions` regions.
    pub fn region_counts(&self, n_regions: usize) -> Vec<u64> {
        let mut counts = vec![0u64; n_regions];
        for &r in &self.region {
            if let Some(c) = counts.get_mut(r as usize) {
                *c += 1;
            }
        }
        counts
    }

    /// An order-sensitive FNV-1a digest over every lane — the bit-identity
    /// witness for the shard-count invariance gate. Two batches digest
    /// equal iff every request field matches in order (up to the
    /// astronomically unlikely 64-bit collision).
    pub fn digest(&self) -> u64 {
        let mut h = fnv_fold(FNV_OFFSET, self.len() as u64);
        for &v in &self.arrival_us {
            h = fnv_fold(h, u64::from(v));
        }
        for &v in &self.slot {
            h = fnv_fold(h, u64::from(v));
        }
        for &v in &self.region {
            h = fnv_fold(h, u64::from(v));
        }
        for &v in &self.work {
            h = fnv_fold(h, u64::from(v.to_bits()));
        }
        h
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one 64-bit word into an FNV-1a hash state.
pub(crate) fn fnv_fold(h: u64, v: u64) -> u64 {
    let mut h = h;
    for byte in v.to_le_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RequestBatch {
        let mut b = RequestBatch::new();
        b.push(10, 0, 1, 1.0);
        b.push(500, 3, 0, 0.25);
        b.push(999_999, 1, 3, 2.5);
        b
    }

    #[test]
    fn push_and_lanes_agree() {
        let b = sample();
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.arrival_us(), &[10, 500, 999_999]);
        assert_eq!(b.slot(), &[0, 3, 1]);
        assert_eq!(b.region(), &[1, 0, 3]);
        assert_eq!(b.work(), &[1.0, 0.25, 2.5]);
    }

    #[test]
    fn append_concatenates_in_order() {
        let mut a = sample();
        let b = sample();
        a.append(&b);
        assert_eq!(a.len(), 6);
        assert_eq!(a.slot(), &[0, 3, 1, 0, 3, 1]);
    }

    #[test]
    fn counts() {
        let b = sample();
        assert_eq!(b.slot_counts(4), vec![1, 1, 0, 1]);
        assert_eq!(b.region_counts(4), vec![1, 1, 0, 1]);
        // Out-of-range ids are ignored, not panicked on.
        assert_eq!(b.slot_counts(2), vec![1, 1]);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = sample();
        let mut reversed = RequestBatch::new();
        reversed.push(999_999, 1, 3, 2.5);
        reversed.push(500, 3, 0, 0.25);
        reversed.push(10, 0, 1, 1.0);
        assert_ne!(a.digest(), reversed.digest());
        assert_eq!(a.digest(), sample().digest());
    }

    #[test]
    fn digest_separates_empty_prefixes() {
        // Length is folded in, so an empty batch and a batch of zeros
        // differ, as do [0] and [0, 0].
        let empty = RequestBatch::new();
        let mut one = RequestBatch::new();
        one.push(0, 0, 0, 0.0);
        let mut two = one.clone();
        two.push(0, 0, 0, 0.0);
        assert_ne!(empty.digest(), one.digest());
        assert_ne!(one.digest(), two.digest());
    }
}

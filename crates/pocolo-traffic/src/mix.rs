//! Composable traffic mixes and the CLI `--traffic <mix>[:seed]` syntax.
//!
//! A [`TrafficMix`] layers three signals the generator samples per tick:
//!
//! - a **baseline** [`LoadTrace`] (diurnal curve, constant plateau) giving
//!   the cluster-wide demand fraction of peak;
//! - zero or more **flash crowds** — trapezoid envelopes (ramp, hold,
//!   decay) multiplying demand, optionally pinned to one region;
//! - **regional skew** — a rotating population imbalance across
//!   [`REGIONS`] regions that flash crowds sharpen further.
//!
//! Like [`pocolo_faults::Scenario`], a mix is pure in its `(kind, seed,
//! duration)` inputs, so `flashcrowd:7` names one exact workload forever.

use std::fmt;
use std::str::FromStr;

use pocolo_workloads::LoadTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of user regions the generator draws from.
pub const REGIONS: usize = 4;

/// How much a fully ramped flash crowd shifts the hot slots'
/// cache-hungriness (the model-drift coupling: flash-crowd requests touch
/// colder data, so capacity becomes more LLC-way sensitive).
const FLASH_DRIFT: f64 = 0.45;

/// A named, seed-parameterized traffic mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixKind {
    /// A constant plateau — the calibration baseline.
    Steady,
    /// A day/night sine over the run with mild regional skew.
    Diurnal,
    /// A steady baseline broken by one large regional flash crowd.
    FlashCrowd,
    /// A diurnal baseline with strong rotating regional skew and a small
    /// roaming flash.
    Regional,
}

impl MixKind {
    /// All named mixes, in display order.
    pub const ALL: [MixKind; 4] = [
        MixKind::Steady,
        MixKind::Diurnal,
        MixKind::FlashCrowd,
        MixKind::Regional,
    ];

    /// The mix's CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            MixKind::Steady => "steady",
            MixKind::Diurnal => "diurnal",
            MixKind::FlashCrowd => "flashcrowd",
            MixKind::Regional => "regional",
        }
    }
}

impl fmt::Display for MixKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for MixKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        MixKind::ALL
            .iter()
            .copied()
            .find(|m| m.name() == s)
            .ok_or_else(|| {
                format!(
                    "unknown traffic mix {s:?} (expected steady | diurnal | flashcrowd | regional)"
                )
            })
    }
}

/// A parsed `--traffic` value: a mix plus an optional explicit seed (when
/// absent, the experiment's own seed is used) — same grammar as
/// [`pocolo_faults::FaultSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficSpec {
    /// The named mix.
    pub kind: MixKind,
    /// Explicit mix seed, if the user pinned one with `:seed`.
    pub seed: Option<u64>,
}

impl FromStr for TrafficSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once(':') {
            None => Ok(TrafficSpec {
                kind: s.parse()?,
                seed: None,
            }),
            Some((name, seed)) => Ok(TrafficSpec {
                kind: name.parse()?,
                seed: Some(
                    seed.parse()
                        .map_err(|e| format!("bad traffic seed {seed:?}: {e}"))?,
                ),
            }),
        }
    }
}

impl fmt::Display for TrafficSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.seed {
            None => write!(f, "{}", self.kind),
            Some(seed) => write!(f, "{}:{seed}", self.kind),
        }
    }
}

/// One flash crowd: a trapezoid demand envelope, optionally pinned to a
/// region.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashCrowd {
    /// Ramp start, seconds.
    pub start_s: f64,
    /// Ramp-up duration, seconds.
    pub ramp_s: f64,
    /// Hold duration at full strength, seconds.
    pub hold_s: f64,
    /// Decay duration back to baseline, seconds.
    pub decay_s: f64,
    /// Demand multiplier at full strength (`1.6` = 60 % extra load).
    pub mult: f64,
    /// Region the crowd concentrates in, if any.
    pub region: Option<usize>,
}

impl FlashCrowd {
    /// Envelope strength in `[0, 1]` at time `t`: 0 outside the crowd,
    /// 1 during the hold, linear on the ramp and decay.
    pub fn envelope(&self, t: f64) -> f64 {
        let dt = t - self.start_s;
        if dt <= 0.0 {
            0.0
        } else if dt < self.ramp_s {
            dt / self.ramp_s
        } else if dt < self.ramp_s + self.hold_s {
            1.0
        } else {
            let into_decay = dt - self.ramp_s - self.hold_s;
            (1.0 - into_decay / self.decay_s).max(0.0)
        }
    }
}

/// A planned traffic mix: baseline trace + flash crowds + regional skew.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficMix {
    kind: MixKind,
    baseline: LoadTrace,
    flashes: Vec<FlashCrowd>,
    /// Strength of the rotating regional imbalance in `[0, 1)`.
    skew: f64,
    /// Rotation period of the regional imbalance, seconds.
    skew_period_s: f64,
}

impl TrafficMix {
    /// Generates the mix for a run of `duration_s` seconds. Fully
    /// determined by the inputs: the same `(kind, seed, duration)` always
    /// yields the same mix.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not positive and finite.
    pub fn plan(kind: MixKind, seed: u64, duration_s: f64) -> Self {
        assert!(
            duration_s.is_finite() && duration_s > 0.0,
            "mix duration must be positive, got {duration_s}"
        );
        // Mix the kind into the stream so `steady:1` and `flashcrowd:1`
        // draw different randomness (same trick as fault scenarios).
        let tag = match kind {
            MixKind::Steady => 0x57u64,
            MixKind::Diurnal => 0xD1,
            MixKind::FlashCrowd => 0xF1,
            MixKind::Regional => 0x4E,
        };
        let mut rng = StdRng::seed_from_u64(seed ^ (tag << 56));
        let d = duration_s;
        match kind {
            MixKind::Steady => TrafficMix {
                kind,
                baseline: LoadTrace::Constant(rng.gen_range(0.55..0.70)),
                flashes: Vec::new(),
                skew: 0.0,
                skew_period_s: d,
            },
            MixKind::Diurnal => TrafficMix {
                kind,
                baseline: LoadTrace::diurnal(
                    rng.gen_range(0.15..0.30),
                    rng.gen_range(0.80..0.95),
                    d,
                ),
                flashes: Vec::new(),
                skew: 0.15,
                skew_period_s: d,
            },
            MixKind::FlashCrowd => {
                let base = rng.gen_range(0.45..0.55);
                let flash = FlashCrowd {
                    start_s: rng.gen_range(0.28..0.36) * d,
                    ramp_s: 0.08 * d,
                    hold_s: rng.gen_range(0.30..0.38) * d,
                    decay_s: 0.10 * d,
                    mult: rng.gen_range(1.5..1.8),
                    region: Some(rng.gen_range(0..REGIONS)),
                };
                TrafficMix {
                    kind,
                    baseline: LoadTrace::Constant(base),
                    flashes: vec![flash],
                    skew: 0.25,
                    skew_period_s: d,
                }
            }
            MixKind::Regional => {
                let flash = FlashCrowd {
                    start_s: rng.gen_range(0.40..0.55) * d,
                    ramp_s: 0.05 * d,
                    hold_s: 0.15 * d,
                    decay_s: 0.05 * d,
                    mult: rng.gen_range(1.2..1.4),
                    region: Some(rng.gen_range(0..REGIONS)),
                };
                TrafficMix {
                    kind,
                    baseline: LoadTrace::diurnal(0.30, 0.70, d),
                    flashes: vec![flash],
                    skew: 0.55,
                    skew_period_s: d / 2.0,
                }
            }
        }
    }

    /// The mix's kind.
    pub fn kind(&self) -> MixKind {
        self.kind
    }

    /// The baseline load trace.
    pub fn baseline(&self) -> &LoadTrace {
        &self.baseline
    }

    /// The planned flash crowds.
    pub fn flashes(&self) -> &[FlashCrowd] {
        &self.flashes
    }

    /// Cluster-wide demand multiplier at time `t`, as a fraction of the
    /// per-user peak rate: baseline load times the stacked flash-crowd
    /// boosts. `1.0` means every user requests at the configured peak
    /// per-user rate.
    pub fn rate_multiplier_at(&self, t: f64) -> f64 {
        let mut m = self.baseline.load_at(t);
        for f in &self.flashes {
            m *= 1.0 + f.envelope(t) * (f.mult - 1.0);
        }
        m
    }

    /// Normalized region weights at time `t`: a rotating sine imbalance of
    /// strength `skew`, sharpened by any region-pinned flash crowd.
    pub fn region_weights_at(&self, t: f64) -> [f64; REGIONS] {
        let mut w = [0.0f64; REGIONS];
        let phase = t / self.skew_period_s * std::f64::consts::TAU;
        for (r, wr) in w.iter_mut().enumerate() {
            let offset = r as f64 / REGIONS as f64 * std::f64::consts::TAU;
            *wr = 1.0 + self.skew * (phase + offset).sin();
        }
        for f in &self.flashes {
            if let Some(r) = f.region {
                // The crowd's extra demand comes from its home region.
                w[r] *= 1.0 + f.envelope(t) * (f.mult - 1.0) * 2.0;
            }
        }
        let total: f64 = w.iter().sum();
        for wr in &mut w {
            *wr /= total;
        }
        w
    }

    /// How far the hot slots' capacity sensitivity has shifted toward LLC
    /// ways at time `t`, in `[0, FLASH_DRIFT]`: flash-crowd requests touch
    /// cold data, so a crowded slot's effective capacity gains an extra
    /// `ways_fraction^drift` factor the offline fit never saw.
    pub fn drift_at(&self, t: f64) -> f64 {
        let peak = self
            .flashes
            .iter()
            .map(|f| f.envelope(t))
            .fold(0.0f64, f64::max);
        peak * FLASH_DRIFT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for s in ["steady", "diurnal:3", "flashcrowd:7", "regional:0"] {
            let spec: TrafficSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("tsunami".parse::<TrafficSpec>().is_err());
        assert!("steady:abc".parse::<TrafficSpec>().is_err());
        assert!("".parse::<TrafficSpec>().is_err());
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        for kind in MixKind::ALL {
            let a = TrafficMix::plan(kind, 5, 60.0);
            let b = TrafficMix::plan(kind, 5, 60.0);
            assert_eq!(a, b, "{kind} not reproducible");
        }
        let a = TrafficMix::plan(MixKind::FlashCrowd, 5, 60.0);
        let c = TrafficMix::plan(MixKind::FlashCrowd, 6, 60.0);
        assert_ne!(a, c, "flashcrowd ignores its seed");
    }

    #[test]
    fn kinds_differ_under_same_seed() {
        let s = TrafficMix::plan(MixKind::Steady, 1, 60.0);
        let f = TrafficMix::plan(MixKind::FlashCrowd, 1, 60.0);
        assert_ne!(s, f);
    }

    #[test]
    fn flash_envelope_shape() {
        let f = FlashCrowd {
            start_s: 10.0,
            ramp_s: 4.0,
            hold_s: 6.0,
            decay_s: 5.0,
            mult: 1.6,
            region: None,
        };
        assert_eq!(f.envelope(0.0), 0.0);
        assert_eq!(f.envelope(10.0), 0.0);
        assert!((f.envelope(12.0) - 0.5).abs() < 1e-12);
        assert_eq!(f.envelope(15.0), 1.0);
        assert_eq!(f.envelope(19.0), 1.0);
        assert!((f.envelope(22.5) - 0.5).abs() < 1e-12);
        assert_eq!(f.envelope(30.0), 0.0);
    }

    #[test]
    fn flashcrowd_raises_demand_mid_run() {
        let mix = TrafficMix::plan(MixKind::FlashCrowd, 7, 100.0);
        let quiet = mix.rate_multiplier_at(1.0);
        let peak: f64 = (0..100)
            .map(|t| mix.rate_multiplier_at(t as f64))
            .fold(0.0, f64::max);
        assert!(
            peak > quiet * 1.4,
            "flash peak {peak} should tower over quiet {quiet}"
        );
        // And the drift signal is active exactly when the crowd is.
        assert_eq!(mix.drift_at(1.0), 0.0);
        let drift_peak: f64 = (0..100).map(|t| mix.drift_at(t as f64)).fold(0.0, f64::max);
        assert!(drift_peak > 0.3, "drift peak {drift_peak}");
    }

    #[test]
    fn region_weights_are_a_distribution() {
        for kind in MixKind::ALL {
            let mix = TrafficMix::plan(kind, 3, 80.0);
            for t in [0.0, 17.0, 40.0, 79.0] {
                let w = mix.region_weights_at(t);
                let sum: f64 = w.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "{kind} at {t}: sum {sum}");
                assert!(w.iter().all(|&x| x > 0.0), "{kind} at {t}: {w:?}");
            }
        }
    }

    #[test]
    fn regional_flash_concentrates_in_its_region() {
        let mix = TrafficMix::plan(MixKind::FlashCrowd, 7, 100.0);
        let home = mix.flashes()[0].region.unwrap();
        let t_hold = mix.flashes()[0].start_s + mix.flashes()[0].ramp_s + 1.0;
        let w = mix.region_weights_at(t_hold);
        let max = w.iter().cloned().fold(0.0, f64::max);
        assert_eq!(w[home], max, "crowd region is the hottest: {w:?}");
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn plan_rejects_bad_duration() {
        let _ = TrafficMix::plan(MixKind::Steady, 1, 0.0);
    }
}

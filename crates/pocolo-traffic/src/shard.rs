//! Sharded open-loop request generation with a deterministic merge.
//!
//! # The shard/merge contract
//!
//! Generation is defined over [`LOGICAL_STREAMS`] fixed *logical streams*,
//! not over shards. Stream `s` at tick `k` owns its own RNG, seeded purely
//! from `(seed, s, k)` — never from which shard ran it, never from the
//! previous tick. A run with `n` shards hands stream `s` to shard
//! `s mod n` and merges the per-stream sub-batches back in stream order,
//! so the merged batch is **bit-identical for every shard count** — the
//! same contract [`pocolo_sim::parallel::map`] gives the experiment
//! pipeline, witnessed here by [`RequestBatch::digest`].
//!
//! Per-stream work is fanned out through `parallel::map` itself, so the
//! execution knobs compose: `--shards` fixes the deterministic
//! decomposition, `--parallelism` fixes how many OS threads run it.

use pocolo_sim::parallel::{self, Parallelism};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::batch::RequestBatch;
use crate::mix::{TrafficMix, REGIONS};

/// Fixed number of logical RNG streams requests are drawn from. Shard
/// counts that do not divide it are fine; counts above it leave shards
/// idle.
pub const LOGICAL_STREAMS: usize = 64;

/// Golden-ratio multiplier decorrelating `(stream, tick)` seed indices.
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Everything a tick's generation needs, precomputed once per tick and
/// shared read-only across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct TickShape {
    /// Cluster-wide arrival rate this tick, requests/second.
    pub rate_rps: f64,
    /// Cumulative region distribution (last element = 1).
    pub region_cum: [f64; REGIONS],
    /// Cumulative LC-slot distribution (last element = 1).
    pub slot_cum: Vec<f64>,
}

/// The sharded open-loop request generator.
#[derive(Debug, Clone)]
pub struct TrafficGen {
    mix: TrafficMix,
    seed: u64,
    users: u64,
    rps_per_user: f64,
    tick_s: f64,
    /// Peak request rate of each LC slot (requests/s); the base share of
    /// traffic a slot attracts is proportional to its peak.
    slot_peaks: Vec<f64>,
    /// Home region per slot (slot `i` serves region `i mod REGIONS`).
    slot_region: Vec<usize>,
}

impl TrafficGen {
    /// A generator for `users` simulated users each issuing up to
    /// `rps_per_user` requests/second at full demand, split across LC
    /// slots proportionally to `slot_peaks`.
    ///
    /// # Panics
    ///
    /// Panics if `users`, `rps_per_user` or `tick_s` is not positive, if
    /// `slot_peaks` is empty, holds a non-positive peak, or has more than
    /// `u16::MAX` slots.
    pub fn new(
        mix: TrafficMix,
        seed: u64,
        users: u64,
        rps_per_user: f64,
        tick_s: f64,
        slot_peaks: &[f64],
    ) -> Self {
        assert!(users > 0, "need at least one user");
        assert!(
            rps_per_user.is_finite() && rps_per_user > 0.0,
            "per-user rate must be positive"
        );
        assert!(
            tick_s.is_finite() && tick_s > 0.0,
            "tick length must be positive"
        );
        assert!(!slot_peaks.is_empty(), "need at least one LC slot");
        assert!(
            slot_peaks.len() <= usize::from(u16::MAX),
            "slot ids are u16"
        );
        assert!(
            slot_peaks.iter().all(|&p| p.is_finite() && p > 0.0),
            "slot peaks must be positive"
        );
        let slot_region = (0..slot_peaks.len()).map(|i| i % REGIONS).collect();
        TrafficGen {
            mix,
            seed,
            users,
            rps_per_user,
            tick_s,
            slot_peaks: slot_peaks.to_vec(),
            slot_region,
        }
    }

    /// The mix driving the generator.
    pub fn mix(&self) -> &TrafficMix {
        &self.mix
    }

    /// Simulated users.
    pub fn users(&self) -> u64 {
        self.users
    }

    /// Tick length, seconds.
    pub fn tick_s(&self) -> f64 {
        self.tick_s
    }

    /// Number of LC slots traffic is split over.
    pub fn n_slots(&self) -> usize {
        self.slot_peaks.len()
    }

    /// Expected requests in tick `tick_idx` (the analytic Poisson mean).
    pub fn expected_requests(&self, tick_idx: u64) -> f64 {
        self.shape_at(tick_idx).rate_rps * self.tick_s
    }

    /// Precomputes the tick's arrival rate and sampling distributions:
    /// cluster rate from the mix multiplier, region weights from skew and
    /// flash crowds, and slot weights as `peak share × home-region heat`.
    pub fn shape_at(&self, tick_idx: u64) -> TickShape {
        let t = tick_idx as f64 * self.tick_s;
        let rate_rps = self.users as f64 * self.rps_per_user * self.mix.rate_multiplier_at(t);
        let region_w = self.mix.region_weights_at(t);

        let mut region_cum = [0.0f64; REGIONS];
        let mut acc = 0.0;
        for (cum, &w) in region_cum.iter_mut().zip(&region_w) {
            acc += w;
            *cum = acc;
        }
        region_cum[REGIONS - 1] = 1.0;

        let weights: Vec<f64> = self
            .slot_peaks
            .iter()
            .zip(&self.slot_region)
            .map(|(&peak, &region)| peak * region_w[region] * REGIONS as f64)
            .collect();
        let total: f64 = weights.iter().sum();
        let mut slot_cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            slot_cum.push(acc);
        }
        *slot_cum.last_mut().expect("at least one slot") = 1.0;

        TickShape {
            rate_rps,
            region_cum,
            slot_cum,
        }
    }

    /// Generates tick `tick_idx` split over `shards` shards, fanned out
    /// with `parallelism`, and returns the merged batch. Bit-identical for
    /// every `(shards, parallelism)` combination.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn tick(&self, tick_idx: u64, shards: usize, parallelism: Parallelism) -> RequestBatch {
        assert!(shards > 0, "need at least one shard");
        let shape = self.shape_at(tick_idx);
        let per_shard: Vec<Vec<RequestBatch>> = parallel::map(
            parallelism,
            (0..shards).collect(),
            |shard: usize| -> Vec<RequestBatch> {
                (shard..LOGICAL_STREAMS)
                    .step_by(shards)
                    .map(|stream| self.gen_stream(stream, tick_idx, &shape))
                    .collect()
            },
        );
        let total: usize = per_shard.iter().flatten().map(RequestBatch::len).sum();
        let mut merged = RequestBatch::with_capacity(total);
        for stream in 0..LOGICAL_STREAMS {
            merged.append(&per_shard[stream % shards][stream / shards]);
        }
        merged
    }

    /// Generates one logical stream's sub-batch for one tick. The RNG is
    /// seeded purely from `(seed, stream, tick_idx)` — shard-count and
    /// history independent by construction.
    fn gen_stream(&self, stream: usize, tick_idx: u64, shape: &TickShape) -> RequestBatch {
        let index = tick_idx
            .wrapping_mul(LOGICAL_STREAMS as u64)
            .wrapping_add(stream as u64);
        let mut rng = StdRng::seed_from_u64(self.seed ^ index.wrapping_mul(SEED_MIX));
        let lambda = shape.rate_rps * self.tick_s / LOGICAL_STREAMS as f64;
        let n = poisson(&mut rng, lambda);
        let tick_us = (self.tick_s * 1e6) as u32;
        let mut batch = RequestBatch::with_capacity(n);
        for _ in 0..n {
            let arrival = rng.gen_range(0..tick_us.max(1));
            let region = cum_pick(&shape.region_cum, rng.gen_range(0.0..1.0)) as u8;
            let slot = cum_pick(&shape.slot_cum, rng.gen_range(0.0..1.0)) as u16;
            let u: f64 = rng.gen_range(0.0..1.0);
            let work = (-(1.0 - u).ln()) as f32; // Exp(1): mean-1 work factor
            batch.push(arrival, slot, region, work);
        }
        batch
    }
}

/// Index of the first cumulative weight exceeding `u` (linear scan — slot
/// and region counts are single digits, so this beats a binary search).
fn cum_pick(cum: &[f64], u: f64) -> usize {
    cum.iter().position(|&c| u < c).unwrap_or(cum.len() - 1)
}

/// A Poisson draw with mean `lambda`: Knuth's product method for small
/// means, a continuity-corrected normal approximation (Irwin–Hall sum of
/// 12 uniforms) for large ones, where the relative error is far below the
/// sampling noise.
fn poisson(rng: &mut StdRng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 32.0 {
        let limit = (-lambda).exp();
        let mut k = 0usize;
        let mut product: f64 = rng.gen_range(0.0..1.0);
        while product > limit {
            k += 1;
            product *= rng.gen_range(0.0..1.0);
        }
        k
    } else {
        let z: f64 = (0..12).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() - 6.0;
        (lambda + lambda.sqrt() * z + 0.5).max(0.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::MixKind;

    fn gen(kind: MixKind, seed: u64, users: u64) -> TrafficGen {
        let mix = TrafficMix::plan(kind, seed, 60.0);
        TrafficGen::new(mix, seed, users, 2.0, 1.0, &[3500.0, 10.0, 4000.0, 8000.0])
    }

    #[test]
    fn merge_is_shard_count_invariant() {
        let g = gen(MixKind::FlashCrowd, 7, 50_000);
        let reference = g.tick(3, 1, Parallelism::Serial);
        for shards in [2, 3, 8, 64, 100] {
            let got = g.tick(3, shards, Parallelism::Serial);
            assert_eq!(got.digest(), reference.digest(), "{shards} shards diverged");
            assert_eq!(got, reference, "{shards} shards diverged beyond digest");
        }
    }

    #[test]
    fn parallelism_does_not_change_the_batch() {
        let g = gen(MixKind::Diurnal, 3, 30_000);
        let serial = g.tick(1, 8, Parallelism::Serial);
        let fixed = g.tick(1, 8, Parallelism::Fixed(4));
        assert_eq!(serial, fixed);
    }

    #[test]
    fn ticks_and_seeds_decorrelate() {
        let g = gen(MixKind::Steady, 1, 20_000);
        assert_ne!(
            g.tick(0, 1, Parallelism::Serial).digest(),
            g.tick(1, 1, Parallelism::Serial).digest()
        );
        let g2 = gen(MixKind::Steady, 2, 20_000);
        assert_ne!(
            g.tick(0, 1, Parallelism::Serial).digest(),
            g2.tick(0, 1, Parallelism::Serial).digest()
        );
    }

    #[test]
    fn arrival_count_tracks_the_analytic_rate() {
        let g = gen(MixKind::Steady, 5, 200_000);
        let expected = g.expected_requests(0);
        let got = g.tick(0, 4, Parallelism::Serial).len() as f64;
        // Poisson sd is sqrt(mean); allow 6 sigma.
        let tol = 6.0 * expected.sqrt();
        assert!(
            (got - expected).abs() < tol,
            "count {got} vs analytic {expected} (tol {tol})"
        );
    }

    #[test]
    fn slot_counts_follow_peak_shares() {
        let g = gen(MixKind::Steady, 9, 300_000);
        let batch = g.tick(0, 2, Parallelism::Serial);
        let counts = batch.slot_counts(4);
        let total: u64 = counts.iter().sum();
        // tpcc (peak 8000) must dominate sphinx (peak 10) by orders of
        // magnitude; shares only approximate because of regional skew.
        assert!(counts[3] > counts[1] * 100, "{counts:?}");
        assert_eq!(total, batch.len() as u64);
    }

    #[test]
    fn arrival_offsets_stay_inside_the_tick() {
        let g = gen(MixKind::Regional, 11, 10_000);
        let batch = g.tick(2, 8, Parallelism::Serial);
        assert!(batch.arrival_us().iter().all(|&a| a < 1_000_000));
        assert!(batch.work().iter().all(|&w| w >= 0.0 && w.is_finite()));
    }

    #[test]
    fn poisson_small_and_large_means_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let small: usize = (0..4000).map(|_| poisson(&mut rng, 3.0)).sum();
        let mean_small = small as f64 / 4000.0;
        assert!((mean_small - 3.0).abs() < 0.15, "small mean {mean_small}");
        let large: usize = (0..400).map(|_| poisson(&mut rng, 50_000.0)).sum();
        let mean_large = large as f64 / 400.0;
        assert!(
            (mean_large - 50_000.0).abs() < 100.0,
            "large mean {mean_large}"
        );
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let g = gen(MixKind::Steady, 1, 100);
        let _ = g.tick(0, 0, Parallelism::Serial);
    }

    #[test]
    #[should_panic(expected = "slot peaks must be positive")]
    fn bad_peaks_panic() {
        let mix = TrafficMix::plan(MixKind::Steady, 1, 10.0);
        let _ = TrafficGen::new(mix, 1, 10, 1.0, 1.0, &[100.0, 0.0]);
    }
}

//! # pocolo-traffic — sharded million-user request engine
//!
//! The level sweep in `pocolo-sim` asks "what if load were X?" at a
//! handful of fixed points. This crate asks the production question
//! instead: synthesize the requests of a million-user population tick by
//! tick — diurnal baselines, flash crowds, regional skew — push them
//! through the fleet's LC slots, and let the *measured* telemetry refit
//! the utility models that placement decisions hang off.
//!
//! Three layers:
//!
//! - [`mix`] — composable traffic shapes ([`TrafficMix`]): diurnal
//!   baselines reusing `pocolo-workloads`' load traces, trapezoidal
//!   flash crowds, rotating regional skew.
//! - [`shard`] + [`batch`] — the deterministic generator
//!   ([`TrafficGen`]): 64 logical RNG streams seeded purely by
//!   `(seed, stream, tick)` and dealt round-robin to shards, so the
//!   merged [`RequestBatch`] is bit-identical at any shard count and any
//!   [`Parallelism`](pocolo_sim::parallel::Parallelism) — the same
//!   contract `pocolo_sim::parallel` gives experiments.
//! - [`engine`] — the closed loop ([`run_traffic`]): requests drive
//!   `Mm1Queue`s per slot, measured p99/utilization feeds each slot's
//!   `OnlineFitter`, and drifted refits repair the BE placement through
//!   the incremental `ClusterManager` path.
//!
//! ```
//! use pocolo_traffic::{MixKind, TrafficGen, TrafficMix};
//!
//! let mix = TrafficMix::plan(MixKind::FlashCrowd, 7, 10.0);
//! let gen = TrafficGen::new(mix, 42, 50_000, 10.0, 1.0, &[3500.0, 10.0]);
//! let one = gen.tick(3, 1, pocolo_sim::parallel::Parallelism::Serial);
//! let eight = gen.tick(3, 8, pocolo_sim::parallel::Parallelism::Auto);
//! assert_eq!(one.digest(), eight.digest()); // bit-identical merge
//! ```

pub mod batch;
pub mod engine;
pub mod mix;
pub mod shard;

pub use batch::RequestBatch;
pub use engine::{run_traffic, SlotReport, TrafficConfig, TrafficReport};
pub use mix::{FlashCrowd, MixKind, TrafficMix, TrafficSpec, REGIONS};
pub use shard::{TrafficGen, LOGICAL_STREAMS};

//! The closed loop: synthesized traffic drives per-slot queues, measured
//! telemetry refits utility models online, and drifted models trigger
//! incremental replans.
//!
//! Each simulated tick the engine
//!
//! 1. generates the tick's request batch through the sharded
//!    [`TrafficGen`] (folding every batch digest into the run digest —
//!    the bit-identity witness the CI shard gate diffs),
//! 2. maps per-slot request counts to arrival rates and steps each LC
//!    slot's [`Mm1Queue`] under the allocation its *current* utility
//!    model demands within the (possibly browned-out) power budget,
//! 3. feeds the measured capacity / power / latency-slack triple into the
//!    slot's [`OnlineFitter`], and
//! 4. when a refit drifts far enough, adopts the fresh model and repairs
//!    the BE placement through
//!    [`ClusterManager::replan_after_refit`] — the PR 6 incremental path,
//!    not a from-scratch solve.
//!
//! With `online_fit` off the fitters still run (so the baseline pays the
//! same ingestion cost) but their models are never adopted: that is the
//! frozen-offline-fit baseline the acceptance test compares against.

use std::time::Instant;

use pocolo_cluster::placement::{ClusterManager, PlacementPlan};
use pocolo_core::fit::{FitOptions, OnlineFitter, ProfileSample};
use pocolo_core::units::Watts;
use pocolo_core::utility::IndirectUtility;
use pocolo_faults::{FaultEvent, FaultKind, FaultSpec};
use pocolo_sim::experiment::FittedCluster;
use pocolo_sim::parallel::Parallelism;
use pocolo_simserver::power::PowerDrawModel;
use pocolo_simserver::TenantAllocation;
use pocolo_workloads::profiler::ProfilerConfig;
use pocolo_workloads::reqsim::Mm1Queue;
use pocolo_workloads::LcModel;

use crate::batch::fnv_fold;
use crate::mix::{TrafficMix, TrafficSpec};
use crate::shard::TrafficGen;

/// Admit online samples down to this latency slack. The offline profiler
/// discards anything under +10 % slack as measured-too-close-to-SLO
/// (see [`FitOptions::default`]); the online loop inverts that logic —
/// overload ticks are exactly the evidence a stale model needs — but
/// still drops the absurd tail where the queue has effectively diverged.
const ONLINE_SLACK_FLOOR: f64 = -2.0;

/// Preference-vector total-variation drift beyond which an adopted refit
/// also triggers an incremental placement repair.
const REPLAN_DRIFT: f64 = 0.05;

/// Exploration offsets rotated per `(tick + slot)` so the online window
/// spans more than one allocation (a single-point window is singular and
/// would never refit successfully).
const EXPLORE: [(i64, i64); 4] = [(0, 0), (1, -2), (-1, 2), (-1, -2)];

/// Configuration for one traffic-engine run.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Which mix to synthesize, with an optional mix-specific seed.
    pub spec: TrafficSpec,
    /// Simulated user population (each contributes `rps_per_user`).
    pub users: u64,
    /// Open-loop request rate per user, requests per second.
    pub rps_per_user: f64,
    /// Number of simulated ticks.
    pub ticks: u64,
    /// Simulated seconds per tick.
    pub tick_s: f64,
    /// Generator shards; the batch stream is bit-identical for any value.
    pub shards: usize,
    /// Thread fan-out for shard generation.
    pub parallelism: Parallelism,
    /// Adopt refitted models and replan on drift. Off = frozen baseline.
    pub online_fit: bool,
    /// Optional fault scenario overlaid on the run.
    pub faults: Option<FaultSpec>,
    /// Run seed; also the mix seed unless `spec` carries its own.
    pub seed: u64,
}

impl TrafficConfig {
    /// Defaults sized for the demo: one million users for ten ticks.
    pub fn new(spec: TrafficSpec) -> Self {
        TrafficConfig {
            spec,
            users: 1_000_000,
            rps_per_user: 10.0,
            ticks: 10,
            tick_s: 1.0,
            shards: 1,
            parallelism: Parallelism::Auto,
            online_fit: false,
            faults: None,
            seed: 42,
        }
    }
}

/// Per-slot outcome of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotReport {
    /// LC application name.
    pub app: String,
    /// Requests routed to this slot over the whole run.
    pub requests: u64,
    /// Requests that arrived during SLO-violating ticks.
    pub violations: u64,
    /// Worst per-tick p99 latency observed, milliseconds.
    pub worst_p99_ms: f64,
    /// Cores held at the end of the run.
    pub cores: u32,
    /// LLC ways held at the end of the run.
    pub ways: u32,
}

pocolo_json::impl_to_json!(SlotReport {
    app,
    requests,
    violations,
    worst_p99_ms,
    cores,
    ways,
});

/// Outcome of [`run_traffic`]. Every serialized field is deterministic in
/// the config; wall-clock figures stay out of the JSON so the CI shard
/// gate can diff reports byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// Mix name.
    pub mix: String,
    /// Shard count the batches were generated with — an execution
    /// detail like parallelism, so not serialized (the report must be
    /// byte-identical at any shard count).
    pub shards: usize,
    /// Ticks simulated.
    pub ticks: u64,
    /// Simulated users.
    pub users: u64,
    /// Total requests generated.
    pub requests: u64,
    /// FNV-1a digest over every tick's batch, hex — identical across
    /// shard counts and parallelism settings.
    pub digest: String,
    /// Whether refitted models were adopted.
    pub online_fit: bool,
    /// Fault scenario overlaid, if any.
    pub faults: Option<String>,
    /// Request-weighted fraction of traffic landing in SLO-violating
    /// ticks.
    pub slo_violation_frac: f64,
    /// Successful online refits across all slots.
    pub refits: u64,
    /// Placement repairs triggered by model drift.
    pub replans: u64,
    /// BE migration intents those repairs emitted.
    pub migrations: u64,
    /// Per-slot outcomes, index-aligned with the LC fleet.
    pub slots: Vec<SlotReport>,
    /// Wall-clock seconds spent generating batches (not serialized).
    pub gen_seconds: f64,
    /// Generation throughput, requests per second (not serialized).
    pub gen_requests_per_s: f64,
}

pocolo_json::impl_to_json!(TrafficReport {
    mix,
    ticks,
    users,
    requests,
    digest,
    online_fit,
    faults,
    slo_violation_frac,
    refits,
    replans,
    migrations,
    slots,
});

/// One LC slot's mutable loop state.
struct SlotState {
    app: String,
    truth: LcModel,
    utility: IndirectUtility,
    fitter: OnlineFitter,
    queue: Mm1Queue,
    fault_drift: f64,
    requests: u64,
    violations: u64,
    worst_p99_ms: f64,
    cores: u32,
    ways: u32,
}

/// Runs the traffic engine end to end.
///
/// # Panics
///
/// Panics if the cluster placement cannot be constructed (the four-app
/// fleet in-tree always can) or the config is degenerate (zero shards).
pub fn run_traffic(config: &TrafficConfig) -> TrafficReport {
    assert!(config.shards > 0, "shard count must be positive");
    let fitted = FittedCluster::fit(&ProfilerConfig::default());
    let machine = fitted.machine().clone();
    let power = PowerDrawModel::new(machine.clone());
    let space = machine.resource_space();
    let duration_s = config.ticks as f64 * config.tick_s;

    let mix_seed = config.spec.seed.unwrap_or(config.seed);
    let mix = TrafficMix::plan(config.spec.kind, mix_seed, duration_s);
    let peaks: Vec<f64> = fitted
        .lc()
        .iter()
        .map(|(_, truth, _)| truth.peak_load_rps())
        .collect();
    let gen = TrafficGen::new(
        mix,
        config.seed,
        config.users,
        config.rps_per_user,
        config.tick_s,
        &peaks,
    );

    let mut mgr = ClusterManager::new(fitted.be_profiles(), fitted.server_profiles());
    let mut plan = mgr.plan_sparse(1e-3).expect("in-tree fleet is placeable");

    let fault_events = config
        .faults
        .as_ref()
        .map(|fs| {
            fs.scenario
                .plan(fs.seed.unwrap_or(config.seed), duration_s, peaks.len())
                .events()
                .to_vec()
        })
        .unwrap_or_default();

    let options = FitOptions {
        min_latency_slack: ONLINE_SLACK_FLOOR,
        ..FitOptions::default()
    };
    let mut slots: Vec<SlotState> = fitted
        .lc()
        .iter()
        .enumerate()
        .map(|(i, (app, truth, utility))| {
            let full = TenantAllocation::from_counts(&machine, machine.cores(), machine.llc_ways());
            SlotState {
                app: app.name().to_string(),
                truth: truth.clone(),
                utility: utility.clone(),
                fitter: OnlineFitter::new(space.clone(), options.clone(), 24, 3),
                queue: Mm1Queue::new(
                    truth.capacity_rps(&full),
                    config.seed ^ ((i as u64 + 1) << 48),
                ),
                fault_drift: 0.0,
                requests: 0,
                violations: 0,
                worst_p99_ms: 0.0,
                cores: machine.cores(),
                ways: machine.llc_ways(),
            }
        })
        .collect();

    // `requests per count unit` → rps at model scale: the slot weights are
    // proportional to the peak loads, so one tick's worth of baseline
    // traffic maps to `multiplier × peak` rps per slot.
    let total_peak: f64 = peaks.iter().sum();
    let scale = total_peak / (config.users as f64 * config.rps_per_user * config.tick_s);

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut total_requests = 0u64;
    let mut violating_requests = 0u64;
    let (mut refits, mut replans, mut migrations) = (0u64, 0u64, 0u64);
    let mut gen_seconds = 0.0f64;

    for tick in 0..config.ticks {
        let t = tick as f64 * config.tick_s;
        let started = Instant::now();
        let batch = gen.tick(tick, config.shards, config.parallelism);
        gen_seconds += started.elapsed().as_secs_f64();
        digest = fnv_fold(digest, batch.digest());
        total_requests += batch.len() as u64;
        let counts = batch.slot_counts(slots.len());

        let cap_factor = cap_factor_at(&fault_events, t);
        apply_fault_drift(&fault_events, t, config.tick_s, &mut slots);

        for (i, slot) in slots.iter_mut().enumerate() {
            let count = counts[i];
            slot.requests += count;
            let load_rps = count as f64 * scale / config.tick_s;

            // Allocate what the current model demands within the budget.
            let budget = Watts(
                (slot.truth.provisioned_power().0 * cap_factor)
                    .max(slot.utility.min_feasible_power().0),
            );
            let (mut cores, mut ways) = match slot.utility.demand_integral(budget) {
                Ok(a) => (a.amount(0).round() as i64, a.amount(1).round() as i64),
                Err(_) => (1, 1),
            };
            let (dc, dw) = EXPLORE[((tick + i as u64) % 4) as usize];
            cores = (cores + dc).clamp(1, i64::from(machine.cores()));
            ways = (ways + dw).clamp(1, i64::from(machine.llc_ways()));
            let alloc = TenantAllocation::from_counts(&machine, cores as u32, ways as u32);
            slot.cores = cores as u32;
            slot.ways = ways as u32;

            // Ground truth under drift: flash-crowd traffic is
            // cache-hungrier, so effective capacity gains a ways^drift
            // factor the offline fit never saw.
            let drift = gen.mix().drift_at(t) + slot.fault_drift;
            let ways_frac = f64::from(alloc.ways.count()) / f64::from(machine.llc_ways());
            let cap_eff = (slot.truth.capacity_rps(&alloc) * ways_frac.powf(drift)).max(1e-6);
            slot.queue.set_service_rate(cap_eff);

            let arrivals = (load_rps * config.tick_s).round() as usize;
            let stats = slot.queue.step_batch(arrivals, config.tick_s);
            let p99_ms = stats.p99 * 1e3;
            let slo_ms = slot.truth.slo_p99_ms();
            slot.worst_p99_ms = slot.worst_p99_ms.max(p99_ms);
            if p99_ms > slo_ms {
                slot.violations += count;
                violating_requests += count;
            }

            // Telemetry → online fitter: measured capacity backed out of
            // utilization when the tick carried signal, the drifted truth
            // otherwise.
            let cap_meas = if stats.utilization > 1e-6 && stats.utilization < 0.999 {
                load_rps / stats.utilization
            } else {
                cap_eff
            };
            let sample = ProfileSample::latency_critical(
                space
                    .allocation(vec![cores as f64, ways as f64])
                    .expect("clamped counts are in-space"),
                slot.truth.rho_slo() * cap_meas,
                slot.truth.power_draw(load_rps, &alloc, &power),
                (slo_ms - p99_ms) / slo_ms,
            );
            if slot.fitter.ingest(sample).is_some() {
                refits += 1;
                let drifted = slot.fitter.last_drift().unwrap_or(0.0);
                if config.online_fit {
                    let fresh = slot
                        .fitter
                        .model()
                        .expect("ingest returned a model")
                        .utility
                        .clone();
                    slot.utility = fresh.clone();
                    if drifted > REPLAN_DRIFT {
                        let intents = replan(&mut mgr, &mut plan, i, fresh, cap_factor);
                        replans += 1;
                        migrations += intents as u64;
                    }
                }
            }
        }
    }

    TrafficReport {
        mix: config.spec.kind.name().to_string(),
        shards: config.shards,
        ticks: config.ticks,
        users: config.users,
        requests: total_requests,
        digest: format!("{digest:016x}"),
        online_fit: config.online_fit,
        faults: config.faults.as_ref().map(|f| f.to_string()),
        slo_violation_frac: if total_requests == 0 {
            0.0
        } else {
            violating_requests as f64 / total_requests as f64
        },
        refits,
        replans,
        migrations,
        slots: slots
            .into_iter()
            .map(|s| SlotReport {
                app: s.app,
                requests: s.requests,
                violations: s.violations,
                worst_p99_ms: s.worst_p99_ms,
                cores: s.cores,
                ways: s.ways,
            })
            .collect(),
        gen_seconds,
        gen_requests_per_s: if gen_seconds > 0.0 {
            total_requests as f64 / gen_seconds
        } else {
            0.0
        },
    }
}

/// The brownout cap factor in force at time `t` (1.0 outside brownouts).
fn cap_factor_at(events: &[FaultEvent], t: f64) -> f64 {
    let mut factor = 1.0;
    for e in events {
        if e.at_s > t {
            break;
        }
        match e.kind {
            FaultKind::BrownoutStart { cap_factor } => factor = cap_factor,
            FaultKind::BrownoutEnd => factor = 1.0,
            _ => {}
        }
    }
    factor
}

/// Applies model-drift events that fire within this tick to the slots they
/// target (a `None` server drifts the whole fleet).
fn apply_fault_drift(events: &[FaultEvent], t: f64, tick_s: f64, slots: &mut [SlotState]) {
    for e in events {
        if e.at_s <= t && e.at_s > t - tick_s {
            if let FaultKind::ModelDrift { server, rel, .. } = e.kind {
                match server {
                    Some(i) => {
                        if let Some(slot) = slots.get_mut(i) {
                            slot.fault_drift += rel;
                        }
                    }
                    None => {
                        for slot in slots.iter_mut() {
                            slot.fault_drift += rel;
                        }
                    }
                }
            }
        }
    }
}

/// Repairs the placement around one refitted column; a repair that fails
/// (e.g. transiently infeasible under the shrunk caps) keeps the incumbent
/// rather than aborting the run.
fn replan(
    mgr: &mut ClusterManager,
    plan: &mut PlacementPlan,
    col: usize,
    utility: IndirectUtility,
    cap_factor: f64,
) -> usize {
    mgr.replan_after_refit(plan, col, utility, cap_factor)
        .map(|intents| intents.len())
        .unwrap_or(0)
}

//! Property tests for the shard/merge contract and the analytic arrival
//! rate — the checklist gates from the issue: merged generation at 1, 2
//! and 8 shards is bit-identical, and per-mix arrival counts track the
//! analytic rate within tolerance.

use proptest::prelude::*;

use pocolo_sim::parallel::Parallelism;
use pocolo_traffic::{MixKind, TrafficGen, TrafficMix, LOGICAL_STREAMS};

const PEAKS: [f64; 4] = [3500.0, 10.0, 4000.0, 8000.0];

fn generator(kind: MixKind, seed: u64, users: u64) -> TrafficGen {
    let mix = TrafficMix::plan(kind, seed, 16.0);
    TrafficGen::new(mix, seed ^ 0xA5A5, users, 4.0, 1.0, &PEAKS)
}

fn mix_kind() -> impl Strategy<Value = MixKind> {
    (0usize..MixKind::ALL.len()).prop_map(|i| MixKind::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The issue's headline gate: 1, 2 and 8 shards produce the same
    /// batch, bit for bit, for every mix, seed and tick — and serial vs
    /// threaded fan-out doesn't matter either.
    #[test]
    fn sharded_generation_is_bit_identical(
        kind in mix_kind(),
        seed in any::<u64>(),
        tick in 0u64..16,
    ) {
        let gen = generator(kind, seed, 20_000);
        let one = gen.tick(tick, 1, Parallelism::Serial);
        let two = gen.tick(tick, 2, Parallelism::Serial);
        let eight = gen.tick(tick, 8, Parallelism::Auto);
        prop_assert_eq!(one.digest(), two.digest());
        prop_assert_eq!(one.digest(), eight.digest());
        // Not just digest-equal: lane-for-lane equal.
        prop_assert_eq!(&one, &eight);
        // Odd, non-divisor shard counts obey the same contract.
        let seven = gen.tick(tick, 7, Parallelism::Fixed(3));
        prop_assert_eq!(&one, &seven);
        // More shards than logical streams still merges identically.
        let many = gen.tick(tick, LOGICAL_STREAMS + 9, Parallelism::Serial);
        prop_assert_eq!(&one, &many);
    }

    /// Arrival counts match the analytic rate: the generated count is a
    /// sum of 64 Poisson draws with mean `expected_requests`, so it must
    /// sit within a 6-sigma band of it for every mix.
    #[test]
    fn arrival_counts_match_analytic_rate(
        kind in mix_kind(),
        seed in any::<u64>(),
        tick in 0u64..16,
    ) {
        let gen = generator(kind, seed, 60_000);
        let expected = gen.expected_requests(tick);
        prop_assert!(expected > 0.0);
        let got = gen.tick(tick, 4, Parallelism::Serial).len() as f64;
        let sigma = expected.sqrt();
        prop_assert!(
            (got - expected).abs() < 6.0 * sigma + 64.0,
            "kind={} tick={}: got {} expected {} (sigma {})",
            kind, tick, got, expected, sigma
        );
    }

    /// Different seeds decorrelate the stream (astronomically unlikely to
    /// collide), while the same seed reproduces it exactly.
    #[test]
    fn seed_determinism(kind in mix_kind(), seed in any::<u64>()) {
        let a = generator(kind, seed, 10_000).tick(3, 2, Parallelism::Serial);
        let b = generator(kind, seed, 10_000).tick(3, 2, Parallelism::Serial);
        prop_assert_eq!(a.digest(), b.digest());
        let c = generator(kind, seed ^ 1, 10_000).tick(3, 2, Parallelism::Serial);
        prop_assert!(a.digest() != c.digest());
    }
}

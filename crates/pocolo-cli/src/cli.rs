//! Argument parsing and subcommand execution, hand-rolled (no external
//! argument-parsing dependency) and fully unit-tested.

use std::fmt::Write as _;

use pocolo::prelude::*;

/// Usage text.
pub const USAGE: &str = "\
pocolo — power optimized colocation (IISWC 2020 reproduction)

USAGE:
    pocolo <COMMAND> [OPTIONS]

COMMANDS:
    fit --app <name>         profile + fit one application's indirect utility
    convexity --app <name>   screen an app for framework suitability (§V-G)
    place                    compute the power-optimized placement
    simulate --policy <p>    run the 10-90% sweep under a policy
    clusterd                 run the POColo cluster daemon for one experiment
    agentd --connect <addr>  run one POM agent against a cluster daemon
    demo-net                 drive the experiment over real loopback TCP and
                             verify parity against the in-process engine
    demo-traffic             synthesize open-loop traffic through the fleet's
                             LC slots with online utility refit
    demo-fleet               run a seeded mixed-SKU fleet under chaos and
                             verify SKU-aware placement beats SKU-blind with
                             every class honoring its power cap
    demo-federation          run a seeded multi-region federation under a
                             regional brownout (and leader kill) and verify
                             the federated placer beats region-isolated
                             baselines with failover bit-identical to the
                             uninterrupted reference
    tco                      amortized monthly TCO comparison
    table2                   Table II: LC application characteristics
    help                     this text

OPTIONS:
    --app <name>       img-dnn | sphinx | xapian | tpcc | lstm | rnn | graph | pbzip
    --policy <p>       random | heracles | pom | pocolo    (default: pocolo)
    --solver <s>       lp | hungarian | exhaustive | fair | auction[:<eps>]
                       (default: lp; auction is the sparse fleet-scale path)
    --dwell <seconds>  seconds per load level          (default: 20)
    --seed <n>         RNG seed                        (default: 1)
    --parallelism <p>  serial | auto | <threads>       (default: auto)
    --faults <spec>    inject faults: brownout | crash | chaos | surge, with
                       an optional schedule seed as <scenario>:<seed>;
                       demo-federation instead takes region-brownout |
                       region-chaos (region-chaos adds a leader crash)
    --regions <n>      demo-federation: federated regions  (default: 3)
    --fleet <spec>     server fleet composition, as a preset (mixed3, xeon,
                       turbo, stepcell) or class terms like
                       xeon*2+turbo[/cores/ways], with an optional class-
                       assignment seed as <spec>:<seed>; a single-class
                       fleet reproduces the classic run bit-for-bit
    --traffic <spec>   demo-traffic mix: steady | diurnal | flashcrowd |
                       regional, with an optional seed as <mix>:<seed>
                       (default: flashcrowd)
    --shards <n>       demo-traffic generator shards    (default: 1)
    --users <n>        demo-traffic simulated users     (default: 1000000)
    --ticks <n>        demo-traffic simulated ticks     (default: 10)
    --online-fit       demo-traffic: adopt online refits and replan on drift
    --no-resilience    respond to faults naively (no degraded mode)
    --decision-log <path>  dump per-tick controller decisions as JSON lines
    --listen <addr>    clusterd bind address           (default: 127.0.0.1:7700)
    --connect <addr>   agentd: cluster daemon address  (default: 127.0.0.1:7700)
    --agent <name>     agentd: stable identity         (default: agent-<pid>)
    --lease-ttl-ms <n> clusterd/demo-net heartbeat lease TTL  (default: 1000)
    --kill-agent       demo-net: kill one agent mid-run to exercise lease
                       expiry -> degraded fallback -> re-registration
    --net-backend <b>  clusterd/demo-net transport: reactor | threads
                       (default: reactor)
    --agents <n>       demo-net: scale mode — run <n> swarm agents with
                       synthetic telemetry against one daemon event loop
    --heartbeats <n>   demo-net scale mode: telemetry frames per agent
                       (default: 5)
    --heartbeat-ms <n> demo-net scale mode: per-agent heartbeat pacing,
                       0 = closed-loop                 (default: 1000)
    --json             machine-readable output";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// The subcommand.
    pub command: String,
    /// `--app`.
    pub app: Option<String>,
    /// `--policy`.
    pub policy: String,
    /// `--solver`.
    pub solver: String,
    /// `--dwell`.
    pub dwell: f64,
    /// `--seed`.
    pub seed: u64,
    /// `--parallelism`.
    pub parallelism: Parallelism,
    /// `--faults` (raw `<scenario>[:<seed>]` spec).
    pub faults: Option<String>,
    /// `--fleet` (raw `<spec>[:<seed>]` fleet composition).
    pub fleet: Option<String>,
    /// `--regions` (demo-federation region count).
    pub regions: usize,
    /// `--no-resilience`.
    pub no_resilience: bool,
    /// `--decision-log` (path for the JSON-lines decision trace).
    pub decision_log: Option<String>,
    /// `--listen` (clusterd bind address).
    pub listen: String,
    /// `--connect` (agentd cluster-daemon address).
    pub connect: String,
    /// `--agent` (agentd identity).
    pub agent: Option<String>,
    /// `--lease-ttl-ms` (heartbeat lease TTL).
    pub lease_ttl_ms: u64,
    /// `--kill-agent` (demo-net failure-path exercise).
    pub kill_agent: bool,
    /// `--net-backend` (clusterd/demo-net transport).
    pub net_backend: String,
    /// `--agents` (demo-net scale mode; 0 = classic parity demo).
    pub agents: usize,
    /// `--heartbeats` (demo-net scale mode telemetry frames per agent).
    pub heartbeats: u64,
    /// `--heartbeat-ms` (demo-net scale mode pacing; 0 = closed-loop).
    pub heartbeat_ms: u64,
    /// `--traffic` (raw `<mix>[:<seed>]` spec).
    pub traffic: Option<String>,
    /// `--shards` (traffic generator shards).
    pub shards: usize,
    /// `--users` (simulated user population).
    pub users: u64,
    /// `--ticks` (simulated ticks).
    pub ticks: u64,
    /// `--online-fit` (adopt refitted models).
    pub online_fit: bool,
    /// `--json`.
    pub json: bool,
}

/// Parses raw arguments.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands/flags or missing
/// values.
pub fn parse(args: &[String]) -> Result<Options, String> {
    let mut it = args.iter();
    let command = it.next().cloned().unwrap_or_else(|| "help".to_string());
    let mut opts = Options {
        command,
        app: None,
        policy: "pocolo".into(),
        solver: "lp".into(),
        dwell: 20.0,
        seed: 1,
        parallelism: Parallelism::default(),
        faults: None,
        fleet: None,
        regions: 3,
        no_resilience: false,
        decision_log: None,
        listen: "127.0.0.1:7700".into(),
        connect: "127.0.0.1:7700".into(),
        agent: None,
        lease_ttl_ms: 1000,
        kill_agent: false,
        net_backend: "reactor".into(),
        agents: 0,
        heartbeats: 5,
        heartbeat_ms: 1000,
        traffic: None,
        shards: 1,
        users: 1_000_000,
        ticks: 10,
        online_fit: false,
        json: false,
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--app" => {
                opts.app = Some(
                    it.next()
                        .ok_or_else(|| "--app needs a value".to_string())?
                        .clone(),
                )
            }
            "--policy" => {
                opts.policy = it
                    .next()
                    .ok_or_else(|| "--policy needs a value".to_string())?
                    .clone()
            }
            "--solver" => {
                opts.solver = it
                    .next()
                    .ok_or_else(|| "--solver needs a value".to_string())?
                    .clone()
            }
            "--dwell" => {
                opts.dwell = it
                    .next()
                    .ok_or_else(|| "--dwell needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("--dwell: {e}"))?
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or_else(|| "--seed needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--parallelism" => {
                opts.parallelism = it
                    .next()
                    .ok_or_else(|| "--parallelism needs a value".to_string())?
                    .parse()?
            }
            "--faults" => {
                opts.faults = Some(
                    it.next()
                        .ok_or_else(|| "--faults needs a value".to_string())?
                        .clone(),
                )
            }
            "--fleet" => {
                opts.fleet = Some(
                    it.next()
                        .ok_or_else(|| "--fleet needs a value".to_string())?
                        .clone(),
                )
            }
            "--regions" => {
                opts.regions = it
                    .next()
                    .ok_or_else(|| "--regions needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("--regions: {e}"))?;
                if opts.regions < 2 {
                    return Err("--regions needs at least 2 (nowhere to fail over to)".into());
                }
            }
            "--no-resilience" => opts.no_resilience = true,
            "--decision-log" => {
                opts.decision_log = Some(
                    it.next()
                        .ok_or_else(|| "--decision-log needs a path".to_string())?
                        .clone(),
                )
            }
            "--listen" => {
                opts.listen = it
                    .next()
                    .ok_or_else(|| "--listen needs an address".to_string())?
                    .clone()
            }
            "--connect" => {
                opts.connect = it
                    .next()
                    .ok_or_else(|| "--connect needs an address".to_string())?
                    .clone()
            }
            "--agent" => {
                opts.agent = Some(
                    it.next()
                        .ok_or_else(|| "--agent needs a name".to_string())?
                        .clone(),
                )
            }
            "--lease-ttl-ms" => {
                opts.lease_ttl_ms = it
                    .next()
                    .ok_or_else(|| "--lease-ttl-ms needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("--lease-ttl-ms: {e}"))?;
                if opts.lease_ttl_ms == 0 {
                    return Err("--lease-ttl-ms must be positive".into());
                }
            }
            "--kill-agent" => opts.kill_agent = true,
            "--net-backend" => {
                opts.net_backend = it
                    .next()
                    .ok_or_else(|| "--net-backend needs a value".to_string())?
                    .clone()
            }
            "--agents" => {
                opts.agents = it
                    .next()
                    .ok_or_else(|| "--agents needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("--agents: {e}"))?;
                if opts.agents == 0 {
                    return Err("--agents must be positive".into());
                }
            }
            "--heartbeats" => {
                opts.heartbeats = it
                    .next()
                    .ok_or_else(|| "--heartbeats needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("--heartbeats: {e}"))?
            }
            "--heartbeat-ms" => {
                opts.heartbeat_ms = it
                    .next()
                    .ok_or_else(|| "--heartbeat-ms needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("--heartbeat-ms: {e}"))?
            }
            "--traffic" => {
                opts.traffic = Some(
                    it.next()
                        .ok_or_else(|| "--traffic needs a value".to_string())?
                        .clone(),
                )
            }
            "--shards" => {
                opts.shards = it
                    .next()
                    .ok_or_else(|| "--shards needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if opts.shards == 0 {
                    return Err("--shards must be positive".into());
                }
            }
            "--users" => {
                opts.users = it
                    .next()
                    .ok_or_else(|| "--users needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("--users: {e}"))?;
                if opts.users == 0 {
                    return Err("--users must be positive".into());
                }
            }
            "--ticks" => {
                opts.ticks = it
                    .next()
                    .ok_or_else(|| "--ticks needs a value".to_string())?
                    .parse()
                    .map_err(|e| format!("--ticks: {e}"))?;
                if opts.ticks == 0 {
                    return Err("--ticks must be positive".into());
                }
            }
            "--online-fit" => opts.online_fit = true,
            "--json" => opts.json = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn solver_of(name: &str) -> Result<Solver, String> {
    // Same grammar as the wire format: hungarian, lp, exhaustive, fair,
    // random:<seed>, auction, auction:<eps>.
    name.parse()
}

fn policy_of(opts: &Options) -> Result<Policy, String> {
    match opts.policy.as_str() {
        "random" => Ok(Policy::Random { seed: opts.seed }),
        "heracles" => Ok(Policy::Heracles { seed: opts.seed }),
        "pom" => Ok(Policy::Pom { seed: opts.seed }),
        "pocolo" => Ok(Policy::Pocolo {
            solver: solver_of(&opts.solver)?,
        }),
        other => Err(format!("unknown policy {other:?}")),
    }
}

fn experiment_of(opts: &Options) -> Result<ExperimentConfig, String> {
    if opts.dwell.is_nan() || opts.dwell <= 0.0 {
        return Err("--dwell must be positive".into());
    }
    let faults: Option<FaultSpec> = match opts.faults.as_deref() {
        Some(raw) => Some(raw.parse()?),
        None => None,
    };
    Ok(ExperimentConfig {
        dwell_s: opts.dwell,
        seed: opts.seed,
        parallelism: opts.parallelism,
        faults,
        resilience: !opts.no_resilience,
        ..ExperimentConfig::default()
    })
}

fn format_result(result: &ExperimentResult, config: &ExperimentConfig, json: bool) -> String {
    if json {
        return pocolo_json::to_string_pretty(result);
    }
    let mut out = format!(
        "{}: BE throughput {:.4}, power utilization {:.1}%, capping {:.1}%, worst SLO violation {:.1}%\n",
        result.policy,
        result.summary.avg_be_throughput,
        100.0 * result.summary.avg_power_utilization,
        100.0 * result.summary.avg_capping_frac,
        100.0 * result.summary.worst_violation_frac,
    );
    if let Some(spec) = &config.faults {
        let _ = writeln!(
            out,
            "  faults: {spec} ({}) — SLO violations during faults {:.1}%, \
             time to recover {:.1} s, evictions {}",
            if config.resilience {
                "degraded-mode response"
            } else {
                "naive response"
            },
            100.0 * result.summary.slo_violation_frac_during_fault,
            result.summary.time_to_recover_s,
            result.summary.evictions,
        );
    }
    for p in &result.pairs {
        let _ = writeln!(
            out,
            "  {:>8} + {:<6} thpt {:.4}  util {:.1}%",
            p.lc,
            p.be,
            p.metrics.be_throughput_avg,
            100.0 * p.metrics.power_utilization()
        );
    }
    out.trim_end().to_string()
}

/// Executes the parsed command, returning the text to print.
///
/// # Errors
///
/// Returns a message for invalid arguments or (unexpected) model failures.
pub fn run(args: &[String]) -> Result<String, String> {
    let opts = parse(args)?;
    match opts.command.as_str() {
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        "table2" => cmd_table2(&opts),
        "fit" => cmd_fit(&opts),
        "convexity" => cmd_convexity(&opts),
        "place" => cmd_place(&opts),
        "simulate" => cmd_simulate(&opts),
        "clusterd" => cmd_clusterd(&opts),
        "agentd" => cmd_agentd(&opts),
        "demo-net" => cmd_demo_net(&opts),
        "demo-traffic" => cmd_demo_traffic(&opts),
        "demo-fleet" => cmd_demo_fleet(&opts),
        "demo-federation" => cmd_demo_federation(&opts),
        "tco" => cmd_tco(&opts),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn cmd_table2(opts: &Options) -> Result<String, String> {
    let machine = MachineSpec::xeon_e5_2650();
    let rows: Vec<pocolo_json::Value> = LcApp::ALL
        .iter()
        .map(|&app| {
            let m = LcModel::for_app(app, machine.clone());
            pocolo_json::json!({
                "app": app.name(),
                "peak_load_rps": m.peak_load_rps(),
                "p99_slo_ms": m.slo_p99_ms(),
                "peak_power_w": m.provisioned_power().0,
            })
        })
        .collect();
    if opts.json {
        return Ok(pocolo_json::to_string_pretty(&rows));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>10} {:>14} {:>12} {:>14}",
        "app", "peak load/s", "p99 SLO ms", "peak power W"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>10} {:>14} {:>12} {:>14}",
            r["app"].as_str().unwrap_or("?"),
            r["peak_load_rps"],
            r["p99_slo_ms"],
            r["peak_power_w"]
        );
    }
    Ok(out.trim_end().to_string())
}

fn cmd_fit(opts: &Options) -> Result<String, String> {
    let name = opts.app.as_deref().ok_or("fit requires --app <name>")?;
    let fitted = FittedCluster::fit(&ProfilerConfig::default());
    let (kind, utility) = fitted
        .lc()
        .iter()
        .find(|(a, _, _)| a.name() == name)
        .map(|(_, _, u)| ("latency-critical", u.clone()))
        .or_else(|| {
            fitted
                .be()
                .iter()
                .find(|(a, _, _)| a.name() == name)
                .map(|(_, _, u)| ("best-effort", u.clone()))
        })
        .ok_or_else(|| format!("unknown app {name:?} (see `pocolo help`)"))?;
    let pref = utility.preference_vector();
    let direct = utility.direct_preference_vector();
    if opts.json {
        return Ok(pocolo_json::to_string_pretty(&pocolo_json::json!({
            "app": name,
            "kind": kind,
            "alphas": utility.performance_model().alphas(),
            "alpha0": utility.performance_model().alpha0(),
            "p_static_w": utility.power_model().p_static().0,
            "p_dynamic": utility.power_model().p_dynamic(),
            "direct_preference": direct.weights(),
            "indirect_preference": pref.weights(),
        })));
    }
    Ok(format!(
        "{name} ({kind})\n  performance: {}\n  power:       {}\n  direct preference (cores:ways):   {direct}\n  indirect preference (per watt):   {pref}",
        utility.performance_model(),
        utility.power_model(),
    ))
}

fn cmd_convexity(opts: &Options) -> Result<String, String> {
    use pocolo_simserver::power::PowerDrawModel;
    let name = opts
        .app
        .as_deref()
        .ok_or("convexity requires --app <name>")?;
    let machine = MachineSpec::xeon_e5_2650();
    let power = PowerDrawModel::new(machine.clone());
    let space = machine.resource_space();
    let cfg = ProfilerConfig::default();
    let samples = if let Some(&app) = LcApp::ALL.iter().find(|a| a.name() == name) {
        profile_lc(
            &LcModel::for_app(app, machine.clone()),
            &power,
            &space,
            &cfg,
        )
    } else if let Some(&app) = BeApp::ALL.iter().find(|a| a.name() == name) {
        profile_be(
            &BeModel::for_app(app, machine.clone()),
            &power,
            &space,
            &cfg,
        )
    } else {
        return Err(format!("unknown app {name:?} (see `pocolo help`)"));
    };
    let report = check_convexity(&space, &samples, 0.10).map_err(|e| e.to_string())?;
    if opts.json {
        return Ok(pocolo_json::to_string_pretty(&report));
    }
    let mut out = format!(
        "{name}: {}
",
        if report.is_suitable(0.05) {
            "suitable for the Cobb-Douglas framework"
        } else {
            "NOT suitable — preferences violate convexity/monotonicity"
        }
    );
    for a in &report.axes {
        let _ = writeln!(
            out,
            "  {:>10}: {} triples, {:.1}% convexity violations, {:.1}% monotonicity violations",
            a.resource,
            a.triples,
            100.0 * a.convexity_violations,
            100.0 * a.monotonicity_violations
        );
    }
    Ok(out.trim_end().to_string())
}

fn cmd_place(opts: &Options) -> Result<String, String> {
    let solver = solver_of(&opts.solver)?;
    let fitted = FittedCluster::fit(&ProfilerConfig::default());
    let manager = ClusterManager::new(fitted.be_profiles(), fitted.server_profiles());
    let matrix = manager.performance_matrix().map_err(|e| e.to_string())?;
    let assignment = manager.place(solver).map_err(|e| e.to_string())?;
    let pairs: Vec<(String, String)> = assignment
        .pairs
        .iter()
        .map(|&(r, c)| {
            (
                matrix.row_labels()[r].clone(),
                matrix.col_labels()[c].clone(),
            )
        })
        .collect();
    if opts.json {
        return Ok(pocolo_json::to_string_pretty(&pocolo_json::json!({
            "solver": opts.solver,
            "pairs": pairs,
            "total": assignment.total,
        })));
    }
    let mut out = format!("{matrix}\nplacement ({}):\n", opts.solver);
    for (be, lc) in &pairs {
        let _ = writeln!(out, "  {be} -> {lc}");
    }
    let _ = write!(out, "total estimated throughput: {:.4}", assignment.total);
    Ok(out)
}

/// Parses a `--fleet <spec>[:<seed>]` value. The class-assignment seed
/// defaults to the calibrated demo seed so `--fleet mixed3` is
/// reproducible out of the box.
fn fleet_of(raw: &str) -> Result<(FleetSpec, u64), String> {
    let (spec, seed) = match raw.split_once(':') {
        Some((spec, seed)) => {
            let seed = seed.parse().map_err(|_| {
                format!("bad fleet seed {seed:?} in --fleet {raw:?} (want <spec>[:<u64>])")
            })?;
            (spec, seed)
        }
        None => (raw, DEMO_FLEET_SEED),
    };
    Ok((spec.parse()?, seed))
}

fn cmd_simulate_fleet(opts: &Options, raw: &str) -> Result<String, String> {
    let (spec, fleet_seed) = fleet_of(raw)?;
    if opts.policy != "pocolo" {
        return Err(format!(
            "--fleet runs the POColo policy (got --policy {})",
            opts.policy
        ));
    }
    if opts.decision_log.is_some() {
        return Err("--fleet does not support --decision-log".into());
    }
    let solver = solver_of(&opts.solver)?;
    let config = experiment_of(opts)?;
    let fleet = FittedFleet::fit(&config.profiler, spec, fleet_seed);
    let run = run_fleet_policy(&fleet, &config, solver, true);
    Ok(format_result(&run.result, &config, opts.json))
}

fn cmd_simulate(opts: &Options) -> Result<String, String> {
    if let Some(raw) = opts.fleet.as_deref() {
        return cmd_simulate_fleet(opts, raw);
    }
    let policy = policy_of(opts)?;
    let config = experiment_of(opts)?;
    // Fail fast on an unwritable log path — before the sweep runs, not
    // after it has burned minutes of simulation.
    if let Some(path) = &opts.decision_log {
        std::fs::File::create(path)
            .map_err(|e| format!("cannot write decision log {path}: {e}"))?;
    }
    let result = match &opts.decision_log {
        Some(path) => {
            let fitted = FittedCluster::fit(&config.profiler);
            let (result, traces) = run_experiment_traced(policy, &config, &fitted);
            write_decision_log(path, &traces)?;
            result
        }
        None => run_experiment(policy, &config),
    };
    Ok(format_result(&result, &config, opts.json))
}

fn net_backend_of(opts: &Options) -> Result<pocolo::net::NetBackend, String> {
    opts.net_backend.parse()
}

fn cmd_clusterd(opts: &Options) -> Result<String, String> {
    use pocolo::net::{default_fit, ClusterConfig, Clusterd, RunSpec};
    let policy = policy_of(opts)?;
    let config = experiment_of(opts)?;
    let listen: std::net::SocketAddr = opts
        .listen
        .parse()
        .map_err(|e| format!("--listen {:?}: {e}", opts.listen))?;
    let fitted = default_fit();
    let run = RunSpec::plan(policy, &config, fitted);
    let mut cluster_config = ClusterConfig::new(
        listen,
        std::time::Duration::from_millis(opts.lease_ttl_ms),
        run,
    );
    cluster_config.backend = net_backend_of(opts)?;
    let mut clusterd = Clusterd::spawn(cluster_config).map_err(|e| e.to_string())?;
    // Stderr so scripts capturing stdout still see only the result.
    eprintln!("clusterd listening on {}", clusterd.local_addr());
    let deadline = std::time::Duration::from_secs(24 * 3600);
    if !clusterd.wait_done(deadline) {
        return Err("clusterd: experiment did not complete within 24 h".into());
    }
    let result = clusterd
        .result()
        .ok_or_else(|| "clusterd: finished without full results".to_string())?;
    clusterd.shutdown();
    Ok(format_result(&result, &config, opts.json))
}

fn cmd_agentd(opts: &Options) -> Result<String, String> {
    use pocolo::net::{run_agent, AgentConfig};
    let connect: std::net::SocketAddr = opts
        .connect
        .parse()
        .map_err(|e| format!("--connect {:?}: {e}", opts.connect))?;
    let identity = opts
        .agent
        .clone()
        .unwrap_or_else(|| format!("agent-{}", std::process::id()));
    let report =
        run_agent(&AgentConfig::new(connect, identity.clone())).map_err(|e| e.to_string())?;
    if opts.json {
        return Ok(pocolo_json::to_string_pretty(&pocolo_json::json!({
            "agent": identity,
            "server": report.server,
            "degraded": report.degraded,
            "epochs": report.epochs,
            "completed": report.completed,
        })));
    }
    Ok(format!(
        "{identity}: ran server {} for {} epochs ({}{})",
        report.server,
        report.epochs,
        if report.completed {
            "completed"
        } else {
            "aborted"
        },
        if report.degraded {
            ", degraded re-run"
        } else {
            ""
        },
    ))
}

fn cmd_demo_net_scale(opts: &Options) -> Result<String, String> {
    use pocolo::net::{run_demo_scale, ScaleConfig};
    let mut config = ScaleConfig::new(opts.agents, opts.heartbeats);
    config.heartbeat_every = std::time::Duration::from_millis(opts.heartbeat_ms);
    config.lease_ttl = std::time::Duration::from_millis(opts.lease_ttl_ms.max(
        // A lease shorter than two heartbeats would expire mid-run by
        // construction; scale mode sizes the default up instead of
        // failing a healthy fleet.
        3 * opts.heartbeat_ms.max(1),
    ));
    config.backend = net_backend_of(opts)?;
    let report = run_demo_scale(&config).map_err(|e| e.to_string())?;
    if !report.parity {
        return Err("demo-net: scale run diverged from the timing-independent reference".into());
    }
    let completed = report.swarm.agents.iter().filter(|a| a.completed).count();
    if completed != opts.agents {
        return Err(format!(
            "demo-net: only {completed}/{} agents completed",
            opts.agents
        ));
    }
    if opts.json {
        return Ok(pocolo_json::to_string_pretty(&pocolo_json::json!({
            "agents": opts.agents,
            "heartbeats": opts.heartbeats,
            "backend": opts.net_backend.clone(),
            "parity": report.parity,
            "connect_wall_s": report.swarm.connect_wall.as_secs_f64(),
            "total_wall_s": report.swarm.total_wall.as_secs_f64(),
            "rtt_p50_us": report.swarm.rtt_quantile_us(0.50),
            "rtt_p99_us": report.swarm.rtt_quantile_us(0.99),
        })));
    }
    Ok(format!(
        "scale run verified: {} agents x {} heartbeats over {} backend\n  \
         all connected in {:.2} s, finished in {:.2} s\n  \
         telemetry RTT p50 {} us, p99 {} us ({} samples)\n  \
         result matches the timing-independent reference bit-for-bit",
        opts.agents,
        opts.heartbeats,
        opts.net_backend,
        report.swarm.connect_wall.as_secs_f64(),
        report.swarm.total_wall.as_secs_f64(),
        report.swarm.rtt_quantile_us(0.50),
        report.swarm.rtt_quantile_us(0.99),
        report.swarm.rtts_us.len(),
    ))
}

fn cmd_demo_net(opts: &Options) -> Result<String, String> {
    use pocolo::net::{run_demo, DemoConfig};
    if opts.agents > 0 {
        return cmd_demo_net_scale(opts);
    }
    let policy = policy_of(opts)?;
    let experiment = experiment_of(opts)?;
    let mut config = DemoConfig::new(policy, experiment);
    config.lease_ttl = std::time::Duration::from_millis(opts.lease_ttl_ms);
    config.backend = net_backend_of(opts)?;
    if opts.kill_agent {
        config.kill_after_epochs = Some(3);
    }
    let report = run_demo(&config).map_err(|e| e.to_string())?;
    // The demo is a verification gate, not a tour: any divergence from
    // the in-process engine is a hard error (nonzero exit for CI).
    if opts.kill_agent {
        if !report.degraded_parity() {
            return Err("demo-net: degraded slot diverged from its in-process reference".into());
        }
        if !report.cap_respected() {
            return Err("demo-net: a slot exceeded its in-process reference peak power".into());
        }
    } else if !report.parity() {
        return Err("demo-net: wire path diverged from the in-process engine".into());
    }
    if opts.json {
        return Ok(pocolo_json::to_string_pretty(&pocolo_json::json!({
            "parity": report.parity(),
            "placement": report.placement.clone(),
            "degraded_slots": report.degraded_slots.clone(),
            "reregistrations": report.reregistrations,
            "killed_slot": report.killed.as_ref().map(|k| k.server),
            "wire": report.wire.clone(),
        })));
    }
    let mut out = format!(
        "loopback wire path verified against the in-process engine ({})\n",
        if opts.kill_agent {
            "failure path: kill -> lease expiry -> degraded -> rejoin"
        } else {
            "clean run: bit-exact parity"
        }
    );
    if let Some(dead) = &report.killed {
        let _ = writeln!(
            out,
            "  killed agent on server {} after {} epochs; re-registrations: {}",
            dead.server, dead.epochs, report.reregistrations
        );
    }
    out.push_str(&format_result(&report.wire, &config.experiment, false));
    Ok(out)
}

/// Serializes every [`DecisionRecord`] as one compact JSON object per
/// line (JSON lines), tagged with the server it came from.
fn write_decision_log(path: &str, traces: &[DecisionTrace]) -> Result<(), String> {
    let mut out = String::new();
    for trace in traces {
        for r in &trace.records {
            let line = pocolo_json::to_string(&pocolo_json::json!({
                "server": trace.server,
                "lc": trace.lc.as_str(),
                "be": trace.be.as_str(),
                "t_s": r.now_s,
                "mode": r.mode.name(),
                "load_rps": r.load_rps,
                "slack": r.slack,
                "measured_w": r.measured_w,
                "effective_cap_w": r.effective_cap_w,
                "budget_w": r.budget_w,
                "cores": r.cores,
                "ways": r.ways,
                "governor_armed": r.governor_armed,
                "escalated": r.escalated,
                "ducked": r.ducked,
            }));
            out.push_str(&line);
            out.push('\n');
        }
    }
    std::fs::write(path, out).map_err(|e| format!("cannot write decision log {path}: {e}"))
}

fn cmd_demo_traffic(opts: &Options) -> Result<String, String> {
    let spec: TrafficSpec = opts.traffic.as_deref().unwrap_or("flashcrowd").parse()?;
    let mut config = TrafficConfig::new(spec);
    config.users = opts.users;
    config.ticks = opts.ticks;
    config.shards = opts.shards;
    config.parallelism = opts.parallelism;
    config.online_fit = opts.online_fit;
    config.seed = opts.seed;
    config.faults = match opts.faults.as_deref() {
        Some(raw) => Some(raw.parse()?),
        None => None,
    };
    let report = run_traffic(&config);
    // Wall-clock throughput goes to stderr: stdout must be identical
    // across shard counts so CI can diff it byte-for-byte.
    eprintln!(
        "generated {} requests in {:.3} s ({:.1}M req/s) across {} shard(s)",
        report.requests,
        report.gen_seconds,
        report.gen_requests_per_s / 1e6,
        report.shards,
    );
    if opts.json {
        return Ok(pocolo_json::to_string_pretty(&report));
    }
    let mut out = format!(
        "{} mix: {} requests over {} ticks ({} users), digest {}\n\
         SLO-violating traffic {:.2}%; refits {}, replans {}, migrations {}\n",
        report.mix,
        report.requests,
        report.ticks,
        report.users,
        report.digest,
        100.0 * report.slo_violation_frac,
        report.refits,
        report.replans,
        report.migrations,
    );
    for s in &report.slots {
        let _ = writeln!(
            out,
            "  {:>8} req {:>10}  violating {:>10}  worst p99 {:>9.2} ms  final {}c/{}w",
            s.app, s.requests, s.violations, s.worst_p99_ms, s.cores, s.ways
        );
    }
    Ok(out.trim_end().to_string())
}

fn cmd_demo_fleet(opts: &Options) -> Result<String, String> {
    let raw = opts.fleet.as_deref().unwrap_or("mixed3");
    let (spec, fleet_seed) = fleet_of(raw)?;
    let solver = solver_of(&opts.solver)?;
    let mut config = experiment_of(opts)?;
    if config.faults.is_none() {
        // The demo is about honoring power caps through an emergency:
        // default to the seeded chaos scenario unless the caller picked
        // their own faults.
        config.faults = Some(FaultSpec {
            scenario: FaultScenario::Chaos,
            seed: Some(DEMO_FAULT_SEED),
        });
    }
    let cmp = compare_fleet_policies(&spec, fleet_seed, &config, solver);
    let mixed = cmp.classes.iter().any(|c| *c != cmp.classes[0]);
    // The demo doubles as the CI gate: a nonzero exit means the fleet
    // contract broke, not that the CLI was misused.
    if cmp.cap_violations() > 0 {
        return Err(format!(
            "fleet demo failed: {} server(s) broke their power cap (fleet {}, seed {})",
            cmp.cap_violations(),
            cmp.fleet,
            cmp.seed,
        ));
    }
    if mixed && cmp.utility_margin() <= 0.0 {
        return Err(format!(
            "fleet demo failed: SKU-aware placement did not beat SKU-blind \
             (margin {:+.4} on fleet {}, seed {})",
            cmp.utility_margin(),
            cmp.fleet,
            cmp.seed,
        ));
    }
    if !mixed && cmp.utility_margin() != 0.0 {
        return Err(format!(
            "fleet demo failed: a single-class fleet must make SKU awareness moot \
             (margin {:+.4} on fleet {}, seed {})",
            cmp.utility_margin(),
            cmp.fleet,
            cmp.seed,
        ));
    }
    if opts.json {
        let mode_json = |run: &FleetRunResult| {
            pocolo_json::json!({
                "planned_value": run.planned_value,
                "placement": run
                    .placement
                    .iter()
                    .map(|be| be.name().to_string())
                    .collect::<Vec<String>>(),
                "avg_be_throughput": run.result.summary.avg_be_throughput,
                "avg_power_utilization": run.result.summary.avg_power_utilization,
                "worst_violation_frac": run.result.summary.worst_violation_frac,
                "cap_violations": run.cap_violations
            })
        };
        let value = pocolo_json::json!({
            "fleet": cmp.fleet.clone(),
            "seed": cmp.seed,
            "classes": cmp.classes.clone(),
            "utility_margin": cmp.utility_margin(),
            "cap_violations": cmp.cap_violations(),
            "aware": mode_json(&cmp.aware),
            "blind": mode_json(&cmp.blind)
        });
        return Ok(pocolo_json::to_string_pretty(&value));
    }
    let mut out = format!(
        "fleet {} (seed {}): SKU-aware planned utility beats SKU-blind by {:+.4}, \
         0 cap violations\n",
        cmp.fleet,
        cmp.seed,
        cmp.utility_margin(),
    );
    for (s, class) in cmp.classes.iter().enumerate() {
        let _ = writeln!(
            out,
            "  server {s} {:>8}: {:>7} hosts {:>5} (aware) vs {:>5} (blind)",
            class,
            cmp.aware.result.pairs[s].lc,
            cmp.aware.placement[s].name(),
            cmp.blind.placement[s].name(),
        );
    }
    let _ = writeln!(
        out,
        "  aware: planned {:.4}, BE throughput {:.4} | blind: planned {:.4}, BE throughput {:.4}",
        cmp.aware.planned_value,
        cmp.aware.result.summary.avg_be_throughput,
        cmp.blind.planned_value,
        cmp.blind.result.summary.avg_be_throughput,
    );
    Ok(out.trim_end().to_string())
}

fn cmd_demo_federation(opts: &Options) -> Result<String, String> {
    let faults: RegionFaultSpec = match opts.faults.as_deref() {
        Some(raw) => raw.parse()?,
        // Like demo-fleet, the demo is about surviving an emergency:
        // default to the seeded regional brownout.
        None => RegionFaultSpec {
            scenario: RegionScenario::RegionBrownout,
            seed: Some(DEMO_FAULT_SEED),
        },
    };
    let mut fed = FederationScenario::pinned(opts.regions, opts.seed);
    fed.faults = Some(faults);
    fed.parallelism = opts.parallelism;
    fed.kill_leader = true;
    // The uninterrupted reference ignores leader crashes; the isolated
    // baseline pins each region to its static share of the contract.
    let mut reference = fed.clone();
    reference.kill_leader = false;
    let mut iso = fed.clone();
    iso.federated = false;
    let (fed_r, ref_r, iso_r) = (fed.run(), reference.run(), iso.run());
    let plan = faults.scenario.plan(
        faults.seed.unwrap_or(opts.seed),
        fed.ticks,
        opts.regions,
        fed.replicas,
    );
    // The demo doubles as the CI gate: a nonzero exit means the
    // federation contract broke, not that the CLI was misused.
    if fed_r.cap_violations > 0 || iso_r.cap_violations > 0 {
        return Err(format!(
            "federation demo failed: cap breached (federated {}, isolated {}) under {faults}",
            fed_r.cap_violations, iso_r.cap_violations,
        ));
    }
    if fed_r.utility <= iso_r.utility {
        return Err(format!(
            "federation demo failed: federated utility {:.4} did not beat isolated {:.4} \
             under {faults} (seed {})",
            fed_r.utility, iso_r.utility, opts.seed,
        ));
    }
    if fed_r.slo_violation_frac >= iso_r.slo_violation_frac {
        return Err(format!(
            "federation demo failed: federated SLO violations {:.4} did not beat isolated \
             {:.4} under {faults} (seed {})",
            fed_r.slo_violation_frac, iso_r.slo_violation_frac, opts.seed,
        ));
    }
    let crashes = plan.leader_crashes();
    if !crashes.is_empty() && fed_r.promotions.is_empty() {
        return Err(format!(
            "federation demo failed: the leader died at tick {} but nobody was promoted",
            crashes[0].0,
        ));
    }
    if fed_r.decision_digest != ref_r.decision_digest
        || fed_r.decision_log != ref_r.decision_log
        || fed_r.utility.to_bits() != ref_r.utility.to_bits()
        || fed_r.final_version != ref_r.final_version
    {
        return Err(format!(
            "federation demo failed: leader-kill run diverged from the uninterrupted \
             reference (digest {} vs {}) under {faults}",
            fed_r.decision_digest, ref_r.decision_digest,
        ));
    }
    if let Some(path) = opts.decision_log.as_deref() {
        let mut out = String::new();
        for line in &fed_r.decision_log {
            out.push_str(line);
            out.push('\n');
        }
        std::fs::write(path, out).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if opts.json {
        let value = pocolo_json::json!({
            "regions": (opts.regions as u64),
            "seed": opts.seed,
            "faults": faults.to_string(),
            "federated": fed_r.to_json(),
            "isolated": iso_r.to_json(),
            "utility_margin": (fed_r.utility - iso_r.utility),
            "slo_improvement": (iso_r.slo_violation_frac - fed_r.slo_violation_frac),
            "failover_bit_identical": true
        });
        return Ok(pocolo_json::to_string_pretty(&value));
    }
    let mut out = format!(
        "federation {} regions (seed {}, faults {faults}): federated utility {:.4} beats \
         isolated {:.4} ({:+.4}), 0 cap violations\n",
        opts.regions,
        opts.seed,
        fed_r.utility,
        iso_r.utility,
        fed_r.utility - iso_r.utility,
    );
    let _ = writeln!(
        out,
        "  SLO violation fraction {:.4} vs {:.4} isolated; {} migrations over {} epochs",
        fed_r.slo_violation_frac, iso_r.slo_violation_frac, fed_r.migrations, fed_r.final_version,
    );
    match fed_r.promotions.as_slice() {
        [] => {
            let _ = writeln!(out, "  leader never challenged (no crash in {faults})");
        }
        promotions => {
            for &(tick, rank) in promotions {
                let _ = writeln!(
                    out,
                    "  leader killed: replica {rank} promoted at tick {tick}; report \
                     bit-identical to the uninterrupted reference (digest {})",
                    fed_r.decision_digest,
                );
            }
        }
    }
    Ok(out.trim_end().to_string())
}

fn cmd_tco(opts: &Options) -> Result<String, String> {
    let model = TcoModel::default();
    let scenarios = [
        ("Random(NoCap)", 185.0, 144.0, 1.0),
        ("Random", 150.5, 141.4, 1.0),
        ("POM", 150.5, 141.0, 1.126),
        ("POColo", 150.5, 141.2, 1.154),
    ];
    let costs: Vec<MonthlyCost> = scenarios
        .iter()
        .map(|&(name, cap, avg, rel)| {
            model.monthly_cost(&Scenario {
                name: name.into(),
                provisioned_per_server: Watts(cap),
                avg_power_per_server: Watts(avg),
                relative_throughput: rel,
            })
        })
        .collect();
    if opts.json {
        return Ok(pocolo_json::to_string_pretty(&costs));
    }
    let mut out = format!(
        "{:>14} {:>12} {:>12} {:>12} {:>12}\n",
        "policy", "servers $M", "infra $M", "energy $M", "total $M"
    );
    for c in &costs {
        let _ = writeln!(
            out,
            "{:>14} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            c.name,
            c.server_usd / 1e6,
            c.power_infra_usd / 1e6,
            c.energy_usd / 1e6,
            c.total() / 1e6
        );
    }
    Ok(out.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_defaults() {
        let o = parse(&argv("place")).unwrap();
        assert_eq!(o.command, "place");
        assert_eq!(o.solver, "lp");
        assert_eq!(o.policy, "pocolo");
        assert!(!o.json);
        assert_eq!(o.dwell, 20.0);
    }

    #[test]
    fn parse_flags() {
        let o = parse(&argv("simulate --policy pom --dwell 5 --seed 9 --json")).unwrap();
        assert_eq!(o.policy, "pom");
        assert_eq!(o.dwell, 5.0);
        assert_eq!(o.seed, 9);
        assert!(o.json);
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&argv("fit --app")).is_err());
        assert!(parse(&argv("fit --frobnicate")).is_err());
        assert!(parse(&argv("simulate --dwell abc")).is_err());
    }

    #[test]
    fn parse_parallelism() {
        assert_eq!(
            parse(&argv("simulate")).unwrap().parallelism,
            Parallelism::Auto
        );
        assert_eq!(
            parse(&argv("simulate --parallelism serial"))
                .unwrap()
                .parallelism,
            Parallelism::Serial
        );
        assert_eq!(
            parse(&argv("simulate --parallelism 4"))
                .unwrap()
                .parallelism,
            Parallelism::Fixed(4)
        );
        assert!(parse(&argv("simulate --parallelism 0")).is_err());
        assert!(parse(&argv("simulate --parallelism warp")).is_err());
        assert!(parse(&argv("simulate --parallelism")).is_err());
    }

    #[test]
    fn empty_args_is_help() {
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&argv("explode")).is_err());
    }

    #[test]
    fn table2_text_and_json() {
        let text = run(&argv("table2")).unwrap();
        assert!(text.contains("sphinx") && text.contains("182"));
        let json = run(&argv("table2 --json")).unwrap();
        let v: pocolo_json::Value = pocolo_json::from_str(&json).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 4);
    }

    #[test]
    fn fit_requires_app() {
        assert!(run(&argv("fit")).is_err());
        assert!(run(&argv("fit --app nosuch")).is_err());
    }

    #[test]
    fn fit_outputs_preferences() {
        let out = run(&argv("fit --app graph")).unwrap();
        assert!(out.contains("indirect preference"));
        let json = run(&argv("fit --app sphinx --json")).unwrap();
        let v: pocolo_json::Value = pocolo_json::from_str(&json).unwrap();
        let pref = v["indirect_preference"][0].as_f64().unwrap();
        assert!(pref < 0.35, "sphinx cores preference {pref}");
    }

    #[test]
    fn place_reports_paper_pairings() {
        let json = run(&argv("place --solver hungarian --json")).unwrap();
        let v: pocolo_json::Value = pocolo_json::from_str(&json).unwrap();
        let pairs = v["pairs"].as_array().unwrap();
        assert_eq!(pairs.len(), 4);
        let has = |be: &str, lc: &str| {
            pairs
                .iter()
                .any(|p| p[0].as_str() == Some(be) && p[1].as_str() == Some(lc))
        };
        assert!(has("graph", "sphinx"));
        assert!(has("lstm", "img-dnn"));
    }

    #[test]
    fn convexity_screen_runs() {
        let out = run(&argv("convexity --app sphinx")).unwrap();
        assert!(out.contains("suitable"));
        assert!(run(&argv("convexity")).is_err());
        assert!(run(&argv("convexity --app nosuch")).is_err());
        let json = run(&argv("convexity --app graph --json")).unwrap();
        let v: pocolo_json::Value = pocolo_json::from_str(&json).unwrap();
        assert_eq!(v["axes"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn simulate_quick_run() {
        let out = run(&argv("simulate --policy pom --dwell 2")).unwrap();
        assert!(out.contains("POM"));
        assert!(out.contains("img-dnn"));
    }

    #[test]
    fn parse_decision_log() {
        let o = parse(&argv("simulate --decision-log /tmp/dl.jsonl")).unwrap();
        assert_eq!(o.decision_log.as_deref(), Some("/tmp/dl.jsonl"));
        assert!(parse(&argv("simulate --decision-log")).is_err());
    }

    #[test]
    fn simulate_heracles_quick_run() {
        let out = run(&argv("simulate --policy heracles --dwell 2")).unwrap();
        assert!(out.contains("Heracles"));
        assert!(out.contains("img-dnn"));
    }

    #[test]
    fn simulate_writes_decision_log() {
        let path = std::env::temp_dir().join("pocolo_cli_decision_log_test.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let out = run(&argv(&format!(
            "simulate --policy pocolo --dwell 2 --decision-log {path_str}"
        )))
        .unwrap();
        assert!(out.contains("POColo"));
        let log = std::fs::read_to_string(&path).unwrap();
        let first = log.lines().next().expect("log has at least one line");
        let v: pocolo_json::Value = pocolo_json::from_str(first).unwrap();
        assert!(v["mode"].as_str().is_some());
        assert!(v["lc"].as_str().is_some());
        assert!(v["t_s"].as_f64().is_some());
        // Every server appears in the trace.
        let servers: std::collections::BTreeSet<u64> = log
            .lines()
            .map(|l| {
                pocolo_json::from_str(l).unwrap()["server"]
                    .as_u64()
                    .unwrap()
            })
            .collect();
        assert_eq!(servers.len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn simulate_rejects_bad_input() {
        assert!(run(&argv("simulate --policy warp")).is_err());
        assert!(run(&argv("simulate --dwell -1")).is_err());
        assert!(run(&argv("place --solver quantum")).is_err());
    }

    #[test]
    fn malformed_auction_eps_is_a_one_line_error() {
        let err = run(&argv("place --solver auction:zero")).unwrap_err();
        assert!(
            err.contains("auction eps"),
            "error names the bad eps: {err}"
        );
        assert!(!err.contains('\n'), "error is one line: {err:?}");
        assert!(run(&argv("place --solver auction:-0.5")).is_err());
        // Well-formed variants parse and place.
        assert!(run(&argv("place --solver auction")).is_ok());
        assert!(run(&argv("place --solver auction:0.01")).is_ok());
    }

    #[test]
    fn unknown_faults_scenario_is_a_one_line_error() {
        let err = run(&argv("simulate --dwell 2 --faults meteor")).unwrap_err();
        assert!(
            err.contains("meteor"),
            "error names the bad scenario: {err}"
        );
        assert!(!err.contains('\n'), "error is one line: {err:?}");
    }

    #[test]
    fn unwritable_decision_log_fails_before_the_run() {
        let started = std::time::Instant::now();
        let err = run(&argv(
            "simulate --policy pocolo --decision-log /no/such/dir/x.jsonl",
        ))
        .unwrap_err();
        assert!(err.contains("decision log"), "{err}");
        assert!(!err.contains('\n'), "error is one line: {err:?}");
        // Pre-flight check, not post-run: the default 20 s dwell sweep
        // never started.
        assert!(started.elapsed() < std::time::Duration::from_secs(2));
    }

    #[test]
    fn decision_log_schema_is_stable() {
        let path = std::env::temp_dir().join("pocolo_cli_decision_schema_test.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        run(&argv(&format!(
            "simulate --policy pocolo --dwell 2 --decision-log {path_str}"
        )))
        .unwrap();
        // The decision log is a stable external interface: every line is
        // one JSON object whose field names and order are the published
        // schema. Renaming or reordering a field is a breaking change and
        // must update this snapshot.
        const SCHEMA: [&str; 15] = [
            "server",
            "lc",
            "be",
            "t_s",
            "mode",
            "load_rps",
            "slack",
            "measured_w",
            "effective_cap_w",
            "budget_w",
            "cores",
            "ways",
            "governor_armed",
            "escalated",
            "ducked",
        ];
        let log = std::fs::read_to_string(&path).unwrap();
        assert!(log.lines().count() > 20, "trace covers the sweep");
        for line in log.lines() {
            let v: pocolo_json::Value = pocolo_json::from_str(line).expect("line parses");
            let keys: Vec<&str> = v
                .as_object()
                .expect("line is an object")
                .iter()
                .map(|(k, _)| k.as_str())
                .collect();
            assert_eq!(keys, SCHEMA, "decision-log schema drifted");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_net_flags() {
        let o = parse(&argv(
            "demo-net --listen 0.0.0.0:9 --connect 10.0.0.1:7700 --agent rack3 \
             --lease-ttl-ms 250 --kill-agent",
        ))
        .unwrap();
        assert_eq!(o.listen, "0.0.0.0:9");
        assert_eq!(o.connect, "10.0.0.1:7700");
        assert_eq!(o.agent.as_deref(), Some("rack3"));
        assert_eq!(o.lease_ttl_ms, 250);
        assert!(o.kill_agent);
        assert!(parse(&argv("agentd --connect")).is_err());
        assert!(parse(&argv("clusterd --lease-ttl-ms 0")).is_err());
        assert!(parse(&argv("clusterd --lease-ttl-ms soon")).is_err());
    }

    #[test]
    fn daemons_reject_bad_addresses() {
        assert!(run(&argv("clusterd --listen not-an-addr")).is_err());
        assert!(run(&argv("agentd --connect not-an-addr")).is_err());
        assert!(run(&argv("demo-net --policy warp")).is_err());
        assert!(run(&argv("demo-net --faults meteor")).is_err());
    }

    #[test]
    fn demo_net_loopback_quick_run() {
        let out = run(&argv("demo-net --policy pocolo --dwell 2 --seed 1")).unwrap();
        assert!(out.contains("bit-exact parity"), "{out}");
        assert!(out.contains("POColo"));
        let json = run(&argv("demo-net --policy random --dwell 2 --seed 1 --json")).unwrap();
        let v: pocolo_json::Value = pocolo_json::from_str(&json).unwrap();
        assert_eq!(v["parity"].as_bool(), Some(true));
        assert_eq!(v["placement"].as_array().unwrap().len(), 4);
        assert_eq!(v["reregistrations"].as_u64(), Some(0));
    }

    #[test]
    fn parse_traffic_flags() {
        let o = parse(&argv(
            "demo-traffic --traffic diurnal:9 --shards 8 --users 50000 --ticks 6 --online-fit",
        ))
        .unwrap();
        assert_eq!(o.traffic.as_deref(), Some("diurnal:9"));
        assert_eq!(o.shards, 8);
        assert_eq!(o.users, 50_000);
        assert_eq!(o.ticks, 6);
        assert!(o.online_fit);
        assert!(parse(&argv("demo-traffic --shards 0")).is_err());
        assert!(parse(&argv("demo-traffic --users 0")).is_err());
        assert!(parse(&argv("demo-traffic --ticks 0")).is_err());
        assert!(parse(&argv("demo-traffic --traffic")).is_err());
    }

    #[test]
    fn demo_traffic_rejects_bad_specs() {
        let err = run(&argv("demo-traffic --traffic tsunami")).unwrap_err();
        assert!(err.contains("tsunami"), "error names the bad mix: {err}");
        assert!(!err.contains('\n'), "error is one line: {err:?}");
        assert!(run(&argv("demo-traffic --faults meteor")).is_err());
    }

    #[test]
    fn demo_traffic_stdout_is_shard_invariant() {
        // The CI gate in miniature: the deterministic report (stdout) must
        // not depend on how generation was sharded or threaded.
        let base = "demo-traffic --traffic flashcrowd:7 --users 20000 --ticks 4 --seed 3";
        let one = run(&argv(&format!("{base} --shards 1 --parallelism serial"))).unwrap();
        let eight = run(&argv(&format!("{base} --shards 8"))).unwrap();
        assert_eq!(one, eight);
        assert!(one.contains("digest"), "{one}");
        let json = run(&argv(&format!("{base} --shards 3 --json"))).unwrap();
        let v: pocolo_json::Value = pocolo_json::from_str(&json).unwrap();
        assert_eq!(v["slots"].as_array().unwrap().len(), 4);
        assert_eq!(v["mix"].as_str(), Some("flashcrowd"));
        assert!(v["digest"].as_str().is_some());
    }

    #[test]
    fn demo_traffic_online_fit_runs_surge() {
        let out = run(&argv(
            "demo-traffic --traffic flashcrowd:7 --faults surge:7 --users 20000 --ticks 6 \
             --online-fit --shards 2",
        ))
        .unwrap();
        assert!(out.contains("refits"), "{out}");
    }

    #[test]
    fn parse_fleet_flag() {
        let o = parse(&argv("simulate --fleet mixed3:7")).unwrap();
        assert_eq!(o.fleet.as_deref(), Some("mixed3:7"));
        assert!(parse(&argv("simulate --fleet")).is_err());
    }

    #[test]
    fn fleet_rejects_bad_specs() {
        let one_line = |args: &str, token: &str| {
            let err = run(&argv(args)).unwrap_err();
            assert!(err.contains(token), "error names the bad token: {err}");
            assert!(!err.contains('\n'), "error is one line: {err:?}");
        };
        one_line("simulate --fleet warp9", "warp9");
        one_line("simulate --fleet xeon/0/8", "xeon/0/8");
        one_line("simulate --fleet xeon*0", "zero weight");
        one_line("simulate --fleet mixed3:abc", "abc");
        one_line("simulate --fleet mixed3 --policy pom", "pom");
        one_line(
            "simulate --fleet mixed3 --decision-log /tmp/dl.jsonl",
            "decision-log",
        );
    }

    #[test]
    fn homogeneous_fleet_simulate_is_byte_identical_to_legacy() {
        // A single-class fleet must degenerate to the classic experiment
        // path exactly — same placement, same physics, same formatting.
        let legacy = run(&argv("simulate --dwell 2")).unwrap();
        let fleet = run(&argv("simulate --fleet xeon --dwell 2")).unwrap();
        assert_eq!(legacy, fleet);
        let legacy_json = run(&argv("simulate --dwell 2 --json")).unwrap();
        let fleet_json = run(&argv("simulate --fleet xeon --dwell 2 --json")).unwrap();
        assert_eq!(legacy_json, fleet_json);
    }

    #[test]
    fn demo_fleet_mixed_margin_and_caps() {
        let json = run(&argv("demo-fleet --dwell 2 --json")).unwrap();
        let v: pocolo_json::Value = pocolo_json::from_str(&json).unwrap();
        assert_eq!(v["classes"].as_array().unwrap().len(), 4);
        assert!(v["utility_margin"].as_f64().unwrap() > 0.0);
        assert_eq!(v["cap_violations"].as_f64(), Some(0.0));
        assert_eq!(v["aware"]["placement"].as_array().unwrap().len(), 4);
    }

    #[test]
    fn demo_fleet_single_class_margin_is_moot() {
        let out = run(&argv("demo-fleet --fleet xeon --dwell 2")).unwrap();
        assert!(out.contains("+0.0000"), "{out}");
    }

    #[test]
    fn parse_regions_flag() {
        let o = parse(&argv("demo-federation --regions 5")).unwrap();
        assert_eq!(o.regions, 5);
        assert!(parse(&argv("demo-federation --regions")).is_err());
        assert!(parse(&argv("demo-federation --regions 1")).is_err());
        assert!(parse(&argv("demo-federation --regions two")).is_err());
    }

    #[test]
    fn demo_federation_beats_isolated_and_survives_leader_kill() {
        let json = run(&argv("demo-federation --faults region-chaos:5 --json")).unwrap();
        let v: pocolo_json::Value = pocolo_json::from_str(&json).unwrap();
        assert!(v["utility_margin"].as_f64().unwrap() > 0.0);
        assert!(v["slo_improvement"].as_f64().unwrap() > 0.0);
        assert_eq!(v["federated"]["cap_violations"].as_f64(), Some(0.0));
        assert_eq!(v["isolated"]["cap_violations"].as_f64(), Some(0.0));
        assert_eq!(
            v["federated"]["promotions"].as_array().unwrap().len(),
            1,
            "the chaos leader kill must promote exactly one follower"
        );
        assert_eq!(v["failover_bit_identical"].as_bool(), Some(true));
    }

    #[test]
    fn demo_federation_rejects_server_scenarios() {
        let err = run(&argv("demo-federation --faults chaos")).unwrap_err();
        assert!(err.contains("chaos"), "error names the bad token: {err}");
    }

    #[test]
    fn tco_outputs_four_scenarios() {
        let out = run(&argv("tco")).unwrap();
        assert!(out.contains("POColo") && out.contains("Random(NoCap)"));
        let json = run(&argv("tco --json")).unwrap();
        let v: pocolo_json::Value = pocolo_json::from_str(&json).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 4);
    }
}

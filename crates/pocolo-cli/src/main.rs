//! `pocolo` — command-line interface to the Pocolo stack.
//!
//! ```text
//! pocolo fit --app sphinx [--json]      fit a model, print parameters
//! pocolo place [--solver lp] [--json]   power-optimized placement
//! pocolo simulate --policy pocolo       run the §V-D sweep, print summary
//! pocolo tco                            amortized monthly TCO comparison
//! pocolo table2                         Table II characteristics
//! pocolo help
//! ```

mod cli;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `pocolo help` for usage");
            ExitCode::FAILURE
        }
    }
}

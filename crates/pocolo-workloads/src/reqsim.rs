//! Request-level queueing simulation — validation substrate for the
//! analytic tail-latency model.
//!
//! [`LcModel`](crate::lc::LcModel) uses the M/M/1 closed form `p99(ρ) = p99(0)/(1−ρ)`. This
//! module simulates an actual FIFO queue at the request level (Poisson
//! arrivals, exponential service, Lindley's recursion) and measures tail
//! latency with the streaming P² estimator, so tests can confirm the
//! analytic blow-up shape instead of assuming it.

use pocolo_simserver::p2::P2Quantile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Measured latency statistics from a simulation run, in the same time
/// unit as the service rate's inverse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of simulated requests.
    pub requests: usize,
    /// Mean response time.
    pub mean: f64,
    /// Median response time.
    pub p50: f64,
    /// 95th percentile response time.
    pub p95: f64,
    /// 99th percentile response time.
    pub p99: f64,
    /// Measured server utilization (busy fraction).
    pub utilization: f64,
}

/// An M/M/1 FIFO queue simulated at the request level.
///
/// The simulation is **deterministic in the seed**: two sims built with
/// the same `(service_rate, seed)` produce bit-identical statistics for
/// the same `run` arguments, so measured latencies are reproducible
/// across runs, threads and machines.
///
/// ```
/// use pocolo_workloads::reqsim::Mm1Sim;
/// let sim = Mm1Sim::new(1000.0, 7); // 1000 req/s service rate
/// let stats = sim.run(500.0, 50_000); // offered load 500 req/s (ρ = 0.5)
/// // M/M/1: mean response = 1/(μ−λ) = 2 ms.
/// assert!((stats.mean - 0.002).abs() < 0.0004);
/// // Same seed, same run arguments: bit-identical statistics.
/// assert_eq!(stats, Mm1Sim::new(1000.0, 7).run(500.0, 50_000));
/// ```
#[derive(Debug, Clone)]
pub struct Mm1Sim {
    service_rate: f64,
    seed: u64,
}

impl Mm1Sim {
    /// A queue with exponential service at `service_rate` requests/second.
    ///
    /// # Panics
    ///
    /// Panics unless `service_rate` is positive and finite.
    pub fn new(service_rate: f64, seed: u64) -> Self {
        assert!(
            service_rate.is_finite() && service_rate > 0.0,
            "service rate must be positive"
        );
        Mm1Sim { service_rate, seed }
    }

    /// The configured service rate.
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// Simulates `n` requests arriving as a Poisson process at
    /// `arrival_rate` and returns response-time statistics (seconds).
    ///
    /// The first 10 % of requests are treated as warm-up and excluded from
    /// the statistics.
    ///
    /// # Panics
    ///
    /// Panics if `arrival_rate` is not positive or `n == 0`.
    pub fn run(&self, arrival_rate: f64, n: usize) -> LatencyStats {
        assert!(
            arrival_rate.is_finite() && arrival_rate > 0.0,
            "arrival rate must be positive"
        );
        assert!(n > 0, "need at least one request");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut exp = |rate: f64| -> f64 {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            -u.ln() / rate
        };

        let warmup = n / 10;
        let mut wait = 0.0f64; // Lindley: waiting time of current request
        let mut busy_time = 0.0f64;
        let mut clock = 0.0f64;
        let mut sum = 0.0f64;
        let mut count = 0usize;
        let mut q50 = P2Quantile::new(0.50);
        let mut q95 = P2Quantile::new(0.95);
        let mut q99 = P2Quantile::new(0.99);

        for i in 0..n {
            let interarrival = exp(arrival_rate);
            let service = exp(self.service_rate);
            clock += interarrival;
            busy_time += service;
            // Lindley's recursion: W_{k+1} = max(0, W_k + S_k − A_{k+1}).
            let response = wait + service;
            wait = (wait + service - interarrival).max(0.0);
            if i >= warmup {
                sum += response;
                count += 1;
                q50.observe(response);
                q95.observe(response);
                q99.observe(response);
            }
        }
        LatencyStats {
            requests: count,
            mean: sum / count as f64,
            p50: q50.estimate().unwrap_or(0.0),
            p95: q95.estimate().unwrap_or(0.0),
            p99: q99.estimate().unwrap_or(0.0),
            utilization: (busy_time / clock).min(1.0),
        }
    }

    /// Batch-arrival constructor: a stateful [`Mm1Queue`] with this sim's
    /// service rate and seed, for callers (like `pocolo-traffic`'s
    /// per-slot queues) that feed arrivals tick by tick instead of as one
    /// closed run.
    pub fn batch_queue(&self) -> Mm1Queue {
        Mm1Queue::new(self.service_rate, self.seed)
    }
}

/// Per-tick statistics from [`Mm1Queue::step_batch`], in the same time
/// unit as the service rate's inverse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickStats {
    /// Arrivals simulated this tick.
    pub arrivals: usize,
    /// Mean response time this tick.
    pub mean: f64,
    /// 99th percentile response time this tick (exact below five samples,
    /// P² estimate above).
    pub p99: f64,
    /// Busy fraction of the tick.
    pub utilization: f64,
}

impl TickStats {
    fn idle(arrivals: usize) -> Self {
        TickStats {
            arrivals,
            mean: 0.0,
            p99: 0.0,
            utilization: 0.0,
        }
    }
}

/// A stateful M/M/1 queue advanced in per-tick arrival batches.
///
/// Unlike [`Mm1Sim::run`] — one closed experiment over a fixed request
/// count — a `Mm1Queue` carries its backlog (the Lindley waiting time)
/// across ticks and lets the service rate be retuned between ticks, which
/// is exactly what a traffic engine needs when allocations (and therefore
/// capacity) change while requests keep arriving. The same seed contract
/// holds: identical `(service_rate, seed)` and identical tick sequences
/// produce bit-identical statistics.
///
/// ```
/// use pocolo_workloads::reqsim::Mm1Sim;
/// let mut q = Mm1Sim::new(1000.0, 7).batch_queue();
/// let stats = q.step_batch(500, 1.0); // 500 arrivals in a 1 s tick
/// assert!(stats.utilization > 0.4 && stats.utilization < 0.6);
/// ```
#[derive(Debug, Clone)]
pub struct Mm1Queue {
    service_rate: f64,
    rng: StdRng,
    /// Lindley waiting time carried across ticks (the backlog).
    wait: f64,
}

impl Mm1Queue {
    /// A queue with exponential service at `service_rate` requests/second.
    ///
    /// # Panics
    ///
    /// Panics unless `service_rate` is positive and finite.
    pub fn new(service_rate: f64, seed: u64) -> Self {
        assert!(
            service_rate.is_finite() && service_rate > 0.0,
            "service rate must be positive"
        );
        Mm1Queue {
            service_rate,
            rng: StdRng::seed_from_u64(seed),
            wait: 0.0,
        }
    }

    /// The current service rate.
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// Retunes the service rate (a reallocation between ticks); backlog is
    /// preserved.
    ///
    /// # Panics
    ///
    /// Panics unless `service_rate` is positive and finite.
    pub fn set_service_rate(&mut self, service_rate: f64) {
        assert!(
            service_rate.is_finite() && service_rate > 0.0,
            "service rate must be positive"
        );
        self.service_rate = service_rate;
    }

    /// The waiting time the next arrival would experience (seconds) — the
    /// backlog carried from previous ticks.
    pub fn backlog_s(&self) -> f64 {
        self.wait
    }

    /// Simulates one tick of `dt` seconds with `arrivals` Poisson arrivals
    /// (Lindley's recursion, per-tick P² p99). A tick with zero arrivals
    /// drains backlog at the service head for `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `dt` is positive and finite.
    pub fn step_batch(&mut self, arrivals: usize, dt: f64) -> TickStats {
        assert!(dt.is_finite() && dt > 0.0, "tick length must be positive");
        if arrivals == 0 {
            self.wait = (self.wait - dt).max(0.0);
            return TickStats::idle(0);
        }
        let arrival_rate = arrivals as f64 / dt;
        let mut q99 = P2Quantile::new(0.99);
        let mut sum = 0.0f64;
        let mut busy = 0.0f64;
        for _ in 0..arrivals {
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            let interarrival = -u.ln() / arrival_rate;
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            let service = -u.ln() / self.service_rate;
            let response = self.wait + service;
            self.wait = (self.wait + service - interarrival).max(0.0);
            busy += service;
            sum += response;
            q99.observe(response);
        }
        TickStats {
            arrivals,
            mean: sum / arrivals as f64,
            p99: q99.estimate().unwrap_or(0.0),
            utilization: (busy / dt).min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LcApp, LcModel};
    use pocolo_core::units::Frequency;
    use pocolo_simserver::{CoreSet, MachineSpec, TenantAllocation, WayMask};

    #[test]
    fn mm1_mean_matches_closed_form() {
        // E[T] = 1/(μ − λ).
        let sim = Mm1Sim::new(100.0, 1);
        for rho in [0.3, 0.5, 0.7] {
            let stats = sim.run(100.0 * rho, 200_000);
            let expected = 1.0 / (100.0 * (1.0 - rho));
            assert!(
                (stats.mean - expected).abs() / expected < 0.05,
                "rho={rho}: mean {} vs {expected}",
                stats.mean
            );
        }
    }

    #[test]
    fn mm1_p99_matches_closed_form() {
        // Response time is exponential(μ−λ): p99 = ln(100)/(μ−λ).
        let sim = Mm1Sim::new(100.0, 2);
        for rho in [0.4, 0.6, 0.8] {
            let stats = sim.run(100.0 * rho, 300_000);
            let expected = (100.0f64).ln() / (100.0 * (1.0 - rho));
            assert!(
                (stats.p99 - expected).abs() / expected < 0.10,
                "rho={rho}: p99 {} vs {expected}",
                stats.p99
            );
        }
    }

    #[test]
    fn utilization_tracks_offered_load() {
        let sim = Mm1Sim::new(50.0, 3);
        let stats = sim.run(30.0, 100_000);
        assert!((stats.utilization - 0.6).abs() < 0.03, "{stats:?}");
    }

    #[test]
    fn tail_blowup_shape_matches_the_analytic_model() {
        // The LcModel claims p99(ρ)/p99(ρ₀) = (1−ρ₀)/(1−ρ). Verify the
        // request-level simulation reproduces that ratio curve.
        let sim = Mm1Sim::new(200.0, 4);
        let base = sim.run(200.0 * 0.3, 300_000).p99;
        for rho in [0.5, 0.7, 0.85] {
            let measured = sim.run(200.0 * rho, 300_000).p99;
            let predicted_ratio = (1.0 - 0.3) / (1.0 - rho);
            let measured_ratio = measured / base;
            assert!(
                (measured_ratio - predicted_ratio).abs() / predicted_ratio < 0.12,
                "rho={rho}: measured ratio {measured_ratio} vs analytic {predicted_ratio}"
            );
        }
    }

    #[test]
    fn lc_model_p99_curve_is_mm1_consistent() {
        // Normalized against the 50%-utilization point, the LcModel's p99
        // curve must coincide with a simulated M/M/1's.
        let machine = MachineSpec::xeon_e5_2650();
        let model = LcModel::for_app(LcApp::Xapian, machine.clone());
        let alloc =
            TenantAllocation::new(CoreSet::first_n(6), WayMask::first_n(10), Frequency(2.2));
        let capacity = model.capacity_rps(&alloc);
        let sim = Mm1Sim::new(capacity, 6);
        let model_base = model.p99_latency_ms(0.5 * capacity, &alloc);
        let sim_base = sim.run(0.5 * capacity, 300_000).p99;
        for rho in [0.7, 0.8, 0.9] {
            let model_ratio = model.p99_latency_ms(rho * capacity, &alloc) / model_base;
            let sim_ratio = sim.run(rho * capacity, 300_000).p99 / sim_base;
            assert!(
                (model_ratio - sim_ratio).abs() / model_ratio < 0.15,
                "rho={rho}: model ratio {model_ratio} vs simulated {sim_ratio}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Mm1Sim::new(100.0, 9).run(50.0, 10_000);
        let b = Mm1Sim::new(100.0, 9).run(50.0, 10_000);
        assert_eq!(a, b);
        let c = Mm1Sim::new(100.0, 10).run(50.0, 10_000);
        assert_ne!(a, c);
    }

    #[test]
    fn batch_queue_matches_closed_form_at_steady_state() {
        // Feeding the same offered load tick after tick must reproduce the
        // M/M/1 mean response 1/(μ−λ) once warm.
        let mut q = Mm1Sim::new(100.0, 11).batch_queue();
        let mut sum = 0.0;
        let mut ticks = 0;
        for tick in 0..200 {
            let stats = q.step_batch(50, 1.0); // rho = 0.5
            if tick >= 20 {
                sum += stats.mean;
                ticks += 1;
            }
        }
        let mean = sum / ticks as f64;
        let expected = 1.0 / (100.0 - 50.0);
        assert!(
            (mean - expected).abs() / expected < 0.10,
            "steady-state mean {mean} vs {expected}"
        );
    }

    #[test]
    fn batch_queue_is_deterministic_per_seed() {
        let run = |seed| {
            let mut q = Mm1Queue::new(200.0, seed);
            (0..20).map(|_| q.step_batch(120, 1.0)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn idle_tick_drains_backlog() {
        let mut q = Mm1Queue::new(10.0, 3);
        // Overload builds a real backlog...
        q.step_batch(100, 1.0);
        let backlog = q.backlog_s();
        assert!(backlog > 1.0, "overload should queue up, got {backlog}");
        // ...which idle ticks drain at the service head.
        let stats = q.step_batch(0, 1.0);
        assert_eq!(stats, TickStats::idle(0));
        assert!((q.backlog_s() - (backlog - 1.0)).abs() < 1e-12);
        while q.backlog_s() > 0.0 {
            q.step_batch(0, 10.0);
        }
        assert_eq!(q.backlog_s(), 0.0);
    }

    #[test]
    fn retuning_service_rate_shifts_the_tail() {
        let mut fast = Mm1Queue::new(100.0, 7);
        let mut slow = Mm1Queue::new(100.0, 7);
        slow.set_service_rate(60.0);
        assert_eq!(slow.service_rate(), 60.0);
        let f = fast.step_batch(50, 1.0);
        let s = slow.step_batch(50, 1.0);
        assert!(
            s.p99 > f.p99,
            "slower service must lengthen the tail: {} vs {}",
            s.p99,
            f.p99
        );
        assert!(s.utilization > f.utilization);
    }

    #[test]
    fn batch_queue_agrees_with_mm1sim_tail() {
        // Same physics, different drivers: across many warm ticks the
        // batch queue's p99 must match the closed run's.
        let sim = Mm1Sim::new(100.0, 13);
        let closed = sim.run(70.0, 300_000).p99;
        let mut q = sim.batch_queue();
        let mut sum = 0.0;
        let mut ticks = 0;
        for tick in 0..300 {
            let stats = q.step_batch(700, 10.0); // rho = 0.7
            if tick >= 30 {
                sum += stats.p99;
                ticks += 1;
            }
        }
        let tail = sum / ticks as f64;
        assert!(
            (tail - closed).abs() / closed < 0.15,
            "batch p99 {tail} vs closed-run p99 {closed}"
        );
    }

    #[test]
    #[should_panic(expected = "service rate must be positive")]
    fn invalid_queue_rate_panics() {
        let mut q = Mm1Queue::new(10.0, 0);
        q.set_service_rate(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "tick length must be positive")]
    fn invalid_tick_length_panics() {
        let _ = Mm1Queue::new(10.0, 0).step_batch(5, 0.0);
    }

    #[test]
    #[should_panic(expected = "service rate must be positive")]
    fn invalid_service_rate_panics() {
        let _ = Mm1Sim::new(0.0, 0);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn invalid_arrival_rate_panics() {
        let _ = Mm1Sim::new(10.0, 0).run(0.0, 10);
    }
}

//! Ground-truth models of the four latency-critical primary applications
//! (Table II of the paper).

use pocolo_core::units::Watts;
use pocolo_simserver::power::{PowerDrawModel, PowerIntensity};
use pocolo_simserver::{MachineSpec, TenantAllocation};

use crate::app::LcApp;
use crate::ces::CesSurface;

/// Ground-truth performance/power model of a latency-critical application.
///
/// Capacity (max request rate the allocation can serve) follows a CES
/// surface over normalized cores and ways, scaled by DVFS; p99 latency
/// blows up M/M/1-style as utilization approaches 1, hitting the SLO at
/// [`LcModel::rho_slo`] utilization. Peak load, SLO latencies and
/// provisioned peak power reproduce Table II.
///
/// ```
/// use pocolo_workloads::{LcModel, LcApp};
/// use pocolo_simserver::MachineSpec;
/// let m = LcModel::for_app(LcApp::Xapian, MachineSpec::xeon_e5_2650());
/// assert_eq!(m.peak_load_rps(), 4000.0);
/// assert_eq!(m.provisioned_power().0.round(), 154.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LcModel {
    app: LcApp,
    machine: MachineSpec,
    peak_load_rps: f64,
    slo_p99_ms: f64,
    rho_slo: f64,
    surface: CesSurface,
    freq_exp_perf: f64,
    intensity: PowerIntensity,
}

impl LcModel {
    /// The calibrated ground-truth model for `app` on `machine`.
    ///
    /// Calibration targets (see DESIGN.md §2): Table II peak loads, SLOs and
    /// peak powers; §III/§V-C preference vectors (sphinx cache-preferring
    /// per watt, img-dnn core-preferring, xapian/tpcc balanced).
    pub fn for_app(app: LcApp, machine: MachineSpec) -> Self {
        let (peak_load_rps, slo_p99_ms, surface, freq_exp_perf, intensity) = match app {
            LcApp::ImgDnn => (
                3500.0,
                20.0,
                CesSurface::with_saturation(0.92, -0.4, 0.88, 1.2, 1.0),
                0.9,
                PowerIntensity {
                    core_watts: 4.75,
                    way_watts: 1.0,
                    uncore_watts: 6.0,
                    freq_exponent: 2.5,
                },
            ),
            LcApp::Sphinx => (
                10.0,
                3030.0,
                CesSurface::with_saturation(0.60, -0.4, 0.85, 1.2, 1.0),
                0.7,
                PowerIntensity {
                    core_watts: 8.0,
                    way_watts: 1.5,
                    uncore_watts: 6.0,
                    freq_exponent: 2.4,
                },
            ),
            LcApp::Xapian => (
                4000.0,
                4.020,
                CesSurface::with_saturation(0.89, -0.4, 0.88, 1.1, 1.0),
                0.8,
                PowerIntensity {
                    core_watts: 6.75,
                    way_watts: 0.85,
                    uncore_watts: 6.0,
                    freq_exponent: 2.4,
                },
            ),
            LcApp::TpcC => (
                8000.0,
                707.0,
                CesSurface::with_saturation(0.83, -0.4, 0.80, 1.2, 1.0),
                0.6,
                PowerIntensity {
                    core_watts: 5.0,
                    way_watts: 0.85,
                    uncore_watts: 6.0,
                    freq_exponent: 2.3,
                },
            ),
        };
        LcModel {
            app,
            machine,
            peak_load_rps,
            slo_p99_ms,
            rho_slo: 0.9,
            surface,
            freq_exp_perf,
            intensity,
        }
    }

    /// The application this model describes.
    pub fn app(&self) -> LcApp {
        self.app
    }

    /// The machine the model is calibrated for.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Table II peak load: the max request rate served within SLO at full
    /// allocation.
    pub fn peak_load_rps(&self) -> f64 {
        self.peak_load_rps
    }

    /// The p99 latency SLO in milliseconds.
    pub fn slo_p99_ms(&self) -> f64 {
        self.slo_p99_ms
    }

    /// Utilization at which p99 exactly hits the SLO (0.9).
    pub fn rho_slo(&self) -> f64 {
        self.rho_slo
    }

    /// The application's power-intensity coefficients.
    pub fn intensity(&self) -> &PowerIntensity {
        &self.intensity
    }

    /// Raw service capacity of an allocation in requests/second — the rate
    /// at which utilization would reach 1.0.
    pub fn capacity_rps(&self, alloc: &TenantAllocation) -> f64 {
        let x = alloc.cores.count() as f64 / self.machine.cores() as f64;
        let y = alloc.ways.count() as f64 / self.machine.llc_ways() as f64;
        let f = alloc.frequency.fraction_of(self.machine.freq_max());
        (self.peak_load_rps / self.rho_slo)
            * self.surface.evaluate(x, y)
            * f.powf(self.freq_exp_perf)
            * alloc.cpu_quota.clamp(0.0, 1.0)
    }

    /// Max load sustainable within the SLO: `rho_slo × capacity`.
    ///
    /// At the full allocation and max frequency this equals
    /// [`LcModel::peak_load_rps`] (Table II).
    pub fn sustainable_load_rps(&self, alloc: &TenantAllocation) -> f64 {
        self.rho_slo * self.capacity_rps(alloc)
    }

    /// Utilization `ρ = load / capacity` of the allocation at `load_rps`.
    pub fn utilization(&self, load_rps: f64, alloc: &TenantAllocation) -> f64 {
        let cap = self.capacity_rps(alloc);
        if cap <= 0.0 {
            f64::INFINITY
        } else {
            (load_rps / cap).max(0.0)
        }
    }

    /// p99 tail latency in milliseconds at `load_rps` on `alloc`.
    ///
    /// Returns `f64::INFINITY` once utilization reaches 1 (queue divergence).
    pub fn p99_latency_ms(&self, load_rps: f64, alloc: &TenantAllocation) -> f64 {
        let rho = self.utilization(load_rps, alloc);
        if rho >= 1.0 {
            return f64::INFINITY;
        }
        let base = self.slo_p99_ms * (1.0 - self.rho_slo);
        base / (1.0 - rho)
    }

    /// Fractional latency slack versus the SLO: `(SLO − p99)/SLO`.
    ///
    /// Positive means headroom; negative means violation; clamped at −1 for
    /// diverged queues.
    pub fn latency_slack(&self, load_rps: f64, alloc: &TenantAllocation) -> f64 {
        let p99 = self.p99_latency_ms(load_rps, alloc);
        if !p99.is_finite() {
            return -1.0;
        }
        ((self.slo_p99_ms - p99) / self.slo_p99_ms).max(-1.0)
    }

    /// True if the allocation serves `load_rps` within the SLO.
    pub fn meets_slo(&self, load_rps: f64, alloc: &TenantAllocation) -> bool {
        self.latency_slack(load_rps, alloc) >= 0.0
    }

    /// Power the application draws at `load_rps` on `alloc`.
    pub fn power_draw(
        &self,
        load_rps: f64,
        alloc: &TenantAllocation,
        power: &PowerDrawModel,
    ) -> Watts {
        let util = self.utilization(load_rps, alloc).min(1.0);
        power.tenant_power(&self.intensity, alloc, util)
    }

    /// The right-sized provisioned server power for this application:
    /// idle power plus the app's full-allocation, full-utilization draw
    /// (Table II's "peak server power").
    pub fn provisioned_power(&self) -> Watts {
        let full = TenantAllocation::new(
            pocolo_simserver::CoreSet::first_n(self.machine.cores()),
            pocolo_simserver::WayMask::first_n(self.machine.llc_ways()),
            self.machine.freq_max(),
        );
        let power = PowerDrawModel::new(self.machine.clone());
        power.server_power([power.tenant_power(&self.intensity, &full, 1.0)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_core::units::Frequency;
    use pocolo_simserver::{CoreSet, WayMask};

    fn machine() -> MachineSpec {
        MachineSpec::xeon_e5_2650()
    }

    fn full_alloc() -> TenantAllocation {
        TenantAllocation::new(CoreSet::first_n(12), WayMask::first_n(20), Frequency(2.2))
    }

    fn alloc(c: u32, w: u32, f: f64) -> TenantAllocation {
        TenantAllocation::new(CoreSet::first_n(c), WayMask::first_n(w), Frequency(f))
    }

    #[test]
    fn table2_peak_loads_reproduced() {
        for (app, peak) in [
            (LcApp::ImgDnn, 3500.0),
            (LcApp::Sphinx, 10.0),
            (LcApp::Xapian, 4000.0),
            (LcApp::TpcC, 8000.0),
        ] {
            let m = LcModel::for_app(app, machine());
            let sustainable = m.sustainable_load_rps(&full_alloc());
            assert!(
                (sustainable - peak).abs() / peak < 1e-9,
                "{app}: sustainable {sustainable} != {peak}"
            );
        }
    }

    #[test]
    fn table2_peak_powers_reproduced() {
        for (app, watts) in [
            (LcApp::ImgDnn, 133.0),
            (LcApp::Sphinx, 182.0),
            (LcApp::Xapian, 154.0),
            (LcApp::TpcC, 133.0),
        ] {
            let m = LcModel::for_app(app, machine());
            let p = m.provisioned_power();
            assert!(
                (p.0 - watts).abs() < 0.5,
                "{app}: provisioned {p} != {watts} W"
            );
        }
    }

    #[test]
    fn table2_slos_reproduced() {
        assert_eq!(
            LcModel::for_app(LcApp::ImgDnn, machine()).slo_p99_ms(),
            20.0
        );
        assert_eq!(
            LcModel::for_app(LcApp::Sphinx, machine()).slo_p99_ms(),
            3030.0
        );
        assert_eq!(
            LcModel::for_app(LcApp::Xapian, machine()).slo_p99_ms(),
            4.020
        );
        assert_eq!(LcModel::for_app(LcApp::TpcC, machine()).slo_p99_ms(), 707.0);
    }

    #[test]
    fn capacity_monotone_in_resources() {
        let m = LcModel::for_app(LcApp::Xapian, machine());
        let base = m.capacity_rps(&alloc(4, 8, 2.2));
        assert!(m.capacity_rps(&alloc(5, 8, 2.2)) > base);
        assert!(m.capacity_rps(&alloc(4, 9, 2.2)) > base);
        assert!(m.capacity_rps(&alloc(4, 8, 1.8)) < base);
    }

    #[test]
    fn latency_blows_up_near_capacity() {
        let m = LcModel::for_app(LcApp::Xapian, machine());
        let a = alloc(6, 10, 2.2);
        let cap = m.capacity_rps(&a);
        let low = m.p99_latency_ms(cap * 0.3, &a);
        let mid = m.p99_latency_ms(cap * 0.7, &a);
        let hi = m.p99_latency_ms(cap * 0.95, &a);
        assert!(low < mid && mid < hi);
        assert!(m.p99_latency_ms(cap * 1.01, &a).is_infinite());
    }

    #[test]
    fn slo_hit_exactly_at_rho_slo() {
        let m = LcModel::for_app(LcApp::Sphinx, machine());
        let a = alloc(8, 12, 2.2);
        let cap = m.capacity_rps(&a);
        let p99 = m.p99_latency_ms(cap * m.rho_slo(), &a);
        assert!((p99 - m.slo_p99_ms()).abs() / m.slo_p99_ms() < 1e-9);
        assert!(m.meets_slo(cap * 0.89, &a));
        assert!(!m.meets_slo(cap * 0.91, &a));
    }

    #[test]
    fn slack_sign_and_clamp() {
        let m = LcModel::for_app(LcApp::TpcC, machine());
        let a = alloc(6, 10, 2.2);
        let cap = m.capacity_rps(&a);
        assert!(m.latency_slack(cap * 0.5, &a) > 0.0);
        assert!(m.latency_slack(cap * 0.95, &a) < 0.0);
        assert_eq!(m.latency_slack(cap * 2.0, &a), -1.0);
    }

    #[test]
    fn xapian_low_load_example_from_paper() {
        // §II-C: xapian at 10 % load needs ~1 core, 2 ways at 2.2 GHz and
        // draws ~64 W total.
        let m = LcModel::for_app(LcApp::Xapian, machine());
        let a = alloc(1, 2, 2.2);
        let load = 0.1 * m.peak_load_rps();
        assert!(
            m.meets_slo(load, &a),
            "1c/2w should serve 10% load: slack {}",
            m.latency_slack(load, &a)
        );
        let power = PowerDrawModel::new(machine());
        let total = power.server_power([m.power_draw(load, &a, &power)]);
        assert!(
            (total.0 - 64.0).abs() < 10.0,
            "total power {total} should be in the ~64 W ballpark"
        );
    }

    #[test]
    fn power_scales_with_load() {
        let m = LcModel::for_app(LcApp::Sphinx, machine());
        let power = PowerDrawModel::new(machine());
        let a = alloc(8, 12, 2.2);
        let lo = m.power_draw(0.1 * m.peak_load_rps(), &a, &power);
        let hi = m.power_draw(0.5 * m.peak_load_rps(), &a, &power);
        assert!(hi > lo);
    }

    #[test]
    fn quota_and_zero_capacity_edge() {
        let m = LcModel::for_app(LcApp::Xapian, machine());
        let mut a = alloc(4, 8, 2.2);
        let cap_full = m.capacity_rps(&a);
        a.cpu_quota = 0.5;
        assert!((m.capacity_rps(&a) - cap_full * 0.5).abs() < 1e-9);
        assert!(m.utilization(100.0, &a).is_finite());
    }

    #[test]
    fn preference_vectors_match_paper_targets() {
        // Fit the Cobb-Douglas indirect utility to noiseless profiles and
        // check the scaled preference vectors land near the paper's.
        use pocolo_core::fit::{fit_indirect_utility, FitOptions, ProfileSample};
        let machine = machine();
        let power = PowerDrawModel::new(machine.clone());
        let space = machine.resource_space();
        let check = |app: LcApp, want_cores: f64, tol: f64| {
            let m = LcModel::for_app(app, machine.clone());
            let mut samples = Vec::new();
            for c in 1..=12u32 {
                for w in (2..=20u32).step_by(2) {
                    let a = alloc(c, w, 2.2);
                    let perf = m.sustainable_load_rps(&a);
                    // Operate at 80 % of sustainable for power measurement.
                    let p = m.power_draw(0.8 * perf, &a, &power);
                    let sa = space.allocation(vec![c as f64, w as f64]).unwrap();
                    samples.push(ProfileSample::latency_critical(sa, perf, p, 0.3));
                }
            }
            let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default()).unwrap();
            let pv = fitted.utility.preference_vector();
            assert!(
                (pv.weight(0) - want_cores).abs() < tol,
                "{app}: cores preference {} (want ~{want_cores})",
                pv.weight(0)
            );
        };
        check(LcApp::Sphinx, 0.22, 0.08); // paper: 0.2
        check(LcApp::ImgDnn, 0.68, 0.10); // core-preferring
        check(LcApp::Xapian, 0.52, 0.10); // balanced
        check(LcApp::TpcC, 0.48, 0.10); // balanced
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pocolo_simserver::{CoreSet, WayMask};
    use proptest::prelude::*;

    proptest! {
        /// Capacity is monotone in cores, ways and frequency for every app.
        #[test]
        fn capacity_is_monotone(
            app_idx in 0usize..4,
            c in 1u32..12,
            w in 1u32..20,
            f in 1.2f64..2.1,
        ) {
            let machine = MachineSpec::xeon_e5_2650();
            let m = LcModel::for_app(LcApp::ALL[app_idx], machine);
            let alloc = |c: u32, w: u32, f: f64| {
                TenantAllocation::new(
                    CoreSet::first_n(c),
                    WayMask::first_n(w),
                    pocolo_core::units::Frequency(f),
                )
            };
            let base = m.capacity_rps(&alloc(c, w, f));
            prop_assert!(m.capacity_rps(&alloc(c + 1, w, f)) > base);
            prop_assert!(m.capacity_rps(&alloc(c, w + 1, f)) > base);
            prop_assert!(m.capacity_rps(&alloc(c, w, f + 0.1)) > base);
        }

        /// Latency slack decreases monotonically with load, crossing zero
        /// exactly at the sustainable load.
        #[test]
        fn slack_is_monotone_in_load(
            app_idx in 0usize..4,
            c in 2u32..=12,
            w in 2u32..=20,
        ) {
            let machine = MachineSpec::xeon_e5_2650();
            let m = LcModel::for_app(LcApp::ALL[app_idx], machine);
            let alloc = TenantAllocation::new(
                CoreSet::first_n(c),
                WayMask::first_n(w),
                pocolo_core::units::Frequency(2.2),
            );
            let sustainable = m.sustainable_load_rps(&alloc);
            let mut prev = f64::INFINITY;
            for frac in [0.2, 0.5, 0.8, 0.99, 1.01] {
                let slack = m.latency_slack(frac * sustainable, &alloc);
                prop_assert!(slack <= prev + 1e-12);
                prev = slack;
            }
            prop_assert!(m.latency_slack(0.99 * sustainable, &alloc) > 0.0);
            prop_assert!(m.latency_slack(1.01 * sustainable, &alloc) < 0.0);
        }
    }
}

//! The CES (constant elasticity of substitution) production function used
//! as ground truth for all workload performance surfaces.
//!
//! `CES(x, y) = [θ·x^ρ + (1−θ)·y^ρ]^(η/ρ)` for ρ ≠ 0; the ρ → 0 limit is
//! the Cobb-Douglas `x^(θη)·y^((1−θ)η)`. Using CES ground truth (ρ < 0,
//! mild complementarity) means the paper's Cobb-Douglas fit is a good but
//! imperfect approximation — matching the reported R² band of Fig. 8.

/// Parameters of a two-input CES production function with optional
/// saturation (diminishing parallel returns) on each input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CesSurface {
    /// Input share of the first resource (cores), in `(0, 1)`.
    pub theta: f64,
    /// Substitution parameter ρ. `0` selects the Cobb-Douglas limit;
    /// negative values make inputs complements.
    pub rho: f64,
    /// Returns to scale η > 0.
    pub eta: f64,
    /// Saturation strength on the first input (0 disables).
    pub sat_x: f64,
    /// Saturation strength on the second input (0 disables).
    pub sat_y: f64,
}

/// Saturating transform `(1 − e^{−k·x}) / (1 − e^{−k})`: identity-like at
/// `k → 0`, increasingly concave as `k` grows, fixed at `f(1) = 1`.
///
/// Models parallel-scaling limits (synchronization, memory-bandwidth
/// ceilings) that make real applications deviate from clean power-law
/// scaling — the misspecification that keeps Cobb-Douglas fits in the
/// paper's R² band instead of at 1.0.
pub fn saturate(x: f64, k: f64) -> f64 {
    if k <= 1e-9 {
        x
    } else {
        (1.0 - (-k * x).exp()) / (1.0 - (-k).exp())
    }
}

impl CesSurface {
    /// Creates a surface without saturation, validating parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if `theta ∉ (0, 1)`, `eta ≤ 0`, or any parameter is
    /// non-finite. (These are programmer-supplied calibration constants,
    /// not user input.)
    pub fn new(theta: f64, rho: f64, eta: f64) -> Self {
        Self::with_saturation(theta, rho, eta, 0.0, 0.0)
    }

    /// Creates a surface with saturation strengths `sat_x`, `sat_y` on the
    /// two inputs.
    ///
    /// # Panics
    ///
    /// Same conditions as [`CesSurface::new`], plus negative saturation.
    pub fn with_saturation(theta: f64, rho: f64, eta: f64, sat_x: f64, sat_y: f64) -> Self {
        assert!(
            theta.is_finite() && theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        assert!(rho.is_finite(), "rho must be finite");
        assert!(
            eta.is_finite() && eta > 0.0,
            "eta must be positive, got {eta}"
        );
        assert!(
            sat_x >= 0.0 && sat_y >= 0.0,
            "saturation strengths must be non-negative"
        );
        CesSurface {
            theta,
            rho,
            eta,
            sat_x,
            sat_y,
        }
    }

    /// Evaluates the surface at normalized inputs `x, y ∈ (0, 1]`.
    ///
    /// Inputs are clamped below at a small epsilon to keep the function
    /// defined at zero allocations.
    pub fn evaluate(&self, x: f64, y: f64) -> f64 {
        const EPS: f64 = 1e-6;
        let x = saturate(x.max(EPS), self.sat_x);
        let y = saturate(y.max(EPS), self.sat_y);
        if self.rho.abs() < 1e-9 {
            // Cobb-Douglas limit.
            (x.powf(self.theta) * y.powf(1.0 - self.theta)).powf(self.eta)
        } else {
            let inner = self.theta * x.powf(self.rho) + (1.0 - self.theta) * y.powf(self.rho);
            inner.powf(self.eta / self.rho)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_inputs_give_unit_output() {
        for rho in [-0.8, -0.4, 0.0, 0.4] {
            let s = CesSurface::new(0.6, rho, 0.8);
            assert!((s.evaluate(1.0, 1.0) - 1.0).abs() < 1e-9, "rho={rho}");
        }
    }

    #[test]
    fn monotone_in_each_input() {
        let s = CesSurface::new(0.7, -0.4, 0.8);
        assert!(s.evaluate(0.6, 0.5) > s.evaluate(0.5, 0.5));
        assert!(s.evaluate(0.5, 0.6) > s.evaluate(0.5, 0.5));
    }

    #[test]
    fn rho_zero_matches_cobb_douglas() {
        let s = CesSurface::new(0.6, 0.0, 0.9);
        let x: f64 = 0.4;
        let y: f64 = 0.7;
        let expected = (x.powf(0.6) * y.powf(0.4)).powf(0.9);
        assert!((s.evaluate(x, y) - expected).abs() < 1e-12);
    }

    #[test]
    fn small_rho_approaches_cobb_douglas() {
        let cd = CesSurface::new(0.6, 0.0, 0.9);
        let near = CesSurface::new(0.6, 1e-12, 0.9);
        // |rho| < 1e-9 takes the limit branch.
        assert!((cd.evaluate(0.3, 0.8) - near.evaluate(0.3, 0.8)).abs() < 1e-9);
    }

    #[test]
    fn negative_rho_penalizes_imbalance() {
        // Complements: an unbalanced mix yields less than Cobb-Douglas.
        let ces = CesSurface::new(0.5, -1.0, 1.0);
        let cd = CesSurface::new(0.5, 0.0, 1.0);
        assert!(ces.evaluate(0.9, 0.1) < cd.evaluate(0.9, 0.1));
        // Balanced inputs are unaffected.
        assert!((ces.evaluate(0.5, 0.5) - cd.evaluate(0.5, 0.5)).abs() < 1e-9);
    }

    #[test]
    fn zero_input_is_safe() {
        let s = CesSurface::new(0.6, -0.4, 0.8);
        let v = s.evaluate(0.0, 0.5);
        assert!(v.is_finite());
        assert!(v >= 0.0);
    }

    #[test]
    fn saturation_preserves_normalization_and_concavity() {
        assert!((saturate(1.0, 2.0) - 1.0).abs() < 1e-12);
        assert!((saturate(0.4, 0.0) - 0.4).abs() < 1e-12);
        // Concave: low inputs boosted, mid-range compressed relative gains.
        assert!(saturate(0.1, 2.0) > 0.1);
        assert!(saturate(0.5, 2.0) > 0.5);
        let gain_low = saturate(0.2, 2.0) - saturate(0.1, 2.0);
        let gain_high = saturate(1.0, 2.0) - saturate(0.9, 2.0);
        assert!(gain_low > gain_high, "marginal returns must diminish");
    }

    #[test]
    fn saturated_surface_still_normalized() {
        let s = CesSurface::with_saturation(0.7, -0.4, 0.8, 1.5, 0.8);
        assert!((s.evaluate(1.0, 1.0) - 1.0).abs() < 1e-9);
        assert!(s.evaluate(0.5, 0.5) > CesSurface::new(0.7, -0.4, 0.8).evaluate(0.5, 0.5));
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn invalid_theta_panics() {
        let _ = CesSurface::new(1.5, -0.4, 0.8);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_saturation_panics() {
        let _ = CesSurface::with_saturation(0.5, 0.0, 1.0, -1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "eta must be positive")]
    fn invalid_eta_panics() {
        let _ = CesSurface::new(0.5, -0.4, 0.0);
    }
}

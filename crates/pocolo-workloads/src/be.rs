//! Ground-truth models of the four best-effort secondary applications
//! (§V-A of the paper).

use pocolo_core::units::Watts;
use pocolo_simserver::power::{PowerDrawModel, PowerIntensity};
use pocolo_simserver::{MachineSpec, TenantAllocation};

use crate::app::BeApp;
use crate::ces::CesSurface;

/// Ground-truth throughput/power model of a best-effort application.
///
/// Throughput is **normalized**: `1.0` is the app's throughput with the full
/// machine at max frequency and no quota. This matches the paper's
/// presentation, where Fig. 3 shows all BE apps at "similar throughput"
/// absent power constraints and policies are compared on relative
/// throughput.
///
/// ```
/// use pocolo_workloads::{BeModel, BeApp};
/// use pocolo_simserver::{MachineSpec, TenantAllocation, CoreSet, WayMask};
/// use pocolo_core::units::Frequency;
///
/// let m = BeModel::for_app(BeApp::Graph, MachineSpec::xeon_e5_2650());
/// let full = TenantAllocation::new(CoreSet::first_n(12), WayMask::first_n(20),
///                                  Frequency(2.2));
/// assert!((m.throughput(&full) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BeModel {
    app: BeApp,
    machine: MachineSpec,
    surface: CesSurface,
    freq_exp_perf: f64,
    intensity: PowerIntensity,
    /// Maximum cores the application can exploit (informational; all four
    /// evaluation apps scale to the socket on this machine).
    parallel_limit: u32,
}

impl BeModel {
    /// The calibrated ground-truth model for `app` on `machine`.
    ///
    /// Calibration targets (DESIGN.md §2): the §III / §V-C indirect
    /// preference vectors — LSTM ≈ 0.13:0.87 (cache-preferring per watt),
    /// Graph ≈ 0.8:0.2 (core-preferring), RNN/Pbzip near-balanced — and the
    /// Fig. 3 throughput drops under a 70 W budget (LSTM/RNN ≈ −3 %,
    /// Pbzip ≈ −8 %, Graph ≈ −20 %), which are governed by each app's
    /// frequency sensitivity `γp` and power draw.
    pub fn for_app(app: BeApp, machine: MachineSpec) -> Self {
        let (surface, freq_exp_perf, intensity, parallel_limit) = match app {
            // Memory-bound LSTM training: cache-hungry for both performance
            // and power; nearly insensitive to core frequency; limited
            // parallelism (Keras CPU training is largely serial).
            BeApp::Lstm => (
                CesSurface::with_saturation(0.26, -0.3, 0.85, 1.0, 1.0),
                0.10,
                PowerIntensity {
                    core_watts: 6.0,
                    way_watts: 1.9,
                    uncore_watts: 6.0,
                    freq_exponent: 2.4,
                },
                12,
            ),
            // RNN training: modest working set, balanced per-watt needs,
            // limited parallelism.
            BeApp::Rnn => (
                CesSurface::with_saturation(0.815, -0.3, 0.85, 1.0, 1.0),
                0.12,
                PowerIntensity {
                    core_watts: 6.5,
                    way_watts: 1.2,
                    uncore_watts: 5.0,
                    freq_exponent: 2.4,
                },
                12,
            ),
            // PageRank over a graph far larger than the LLC: extra ways
            // barely help performance but burn power (thrashing); scales
            // with cores and frequency.
            BeApp::Graph => (
                CesSurface::with_saturation(0.93, -0.3, 0.85, 1.0, 1.0),
                0.70,
                PowerIntensity {
                    core_watts: 6.5,
                    way_watts: 1.6,
                    uncore_watts: 8.0,
                    freq_exponent: 2.2,
                },
                12,
            ),
            // pbzip2: embarrassingly parallel, compute- and
            // frequency-sensitive, tiny cache footprint.
            BeApp::Pbzip => (
                CesSurface::with_saturation(0.75, -0.3, 0.85, 1.0, 1.0),
                0.47,
                PowerIntensity {
                    core_watts: 6.0,
                    way_watts: 2.0,
                    uncore_watts: 4.0,
                    freq_exponent: 2.6,
                },
                12,
            ),
        };
        BeModel {
            app,
            machine,
            surface,
            freq_exp_perf,
            intensity,
            parallel_limit,
        }
    }

    /// Maximum number of cores the application can keep busy.
    pub fn parallel_limit(&self) -> u32 {
        self.parallel_limit
    }

    /// The application this model describes.
    pub fn app(&self) -> BeApp {
        self.app
    }

    /// The machine the model is calibrated for.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// The application's power-intensity coefficients.
    pub fn intensity(&self) -> &PowerIntensity {
        &self.intensity
    }

    /// Normalized throughput on `alloc` (1.0 = full machine, max frequency,
    /// full quota).
    pub fn throughput(&self, alloc: &TenantAllocation) -> f64 {
        let x = alloc.cores.count() as f64 / self.machine.cores() as f64;
        let y = alloc.ways.count() as f64 / self.machine.llc_ways() as f64;
        let f = alloc.frequency.fraction_of(self.machine.freq_max());
        self.surface.evaluate(x, y) * f.powf(self.freq_exp_perf) * alloc.cpu_quota.clamp(0.0, 1.0)
    }

    /// Power the application draws on `alloc` (BE apps run flat out, so
    /// utilization is 1 and only the quota throttles busy time).
    pub fn power_draw(&self, alloc: &TenantAllocation, power: &PowerDrawModel) -> Watts {
        power.tenant_power(&self.intensity, alloc, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_core::units::Frequency;
    use pocolo_simserver::{CoreSet, WayMask};

    fn machine() -> MachineSpec {
        MachineSpec::xeon_e5_2650()
    }

    fn alloc(c: u32, w: u32, f: f64) -> TenantAllocation {
        TenantAllocation::new(CoreSet::first_n(c), WayMask::first_n(w), Frequency(f))
    }

    #[test]
    fn full_machine_throughput_is_one() {
        for app in BeApp::ALL {
            let m = BeModel::for_app(app, machine());
            assert!(
                (m.throughput(&alloc(12, 20, 2.2)) - 1.0).abs() < 1e-9,
                "{app}"
            );
        }
    }

    #[test]
    fn throughput_monotone() {
        for app in BeApp::ALL {
            let m = BeModel::for_app(app, machine());
            let base = m.throughput(&alloc(6, 10, 2.0));
            assert!(m.throughput(&alloc(7, 10, 2.0)) > base, "{app} cores");
            assert!(m.throughput(&alloc(6, 11, 2.0)) > base, "{app} ways");
            assert!(m.throughput(&alloc(6, 10, 2.2)) > base, "{app} freq");
        }
    }

    #[test]
    fn quota_scales_throughput_linearly() {
        let m = BeModel::for_app(BeApp::Pbzip, machine());
        let mut a = alloc(8, 10, 2.2);
        let full = m.throughput(&a);
        a.cpu_quota = 0.5;
        assert!((m.throughput(&a) - 0.5 * full).abs() < 1e-9);
    }

    #[test]
    fn graph_is_cache_insensitive_lstm_is_cache_hungry() {
        let g = BeModel::for_app(BeApp::Graph, machine());
        let l = BeModel::for_app(BeApp::Lstm, machine());
        // Relative gain from quadrupling ways at fixed cores.
        let g_gain = g.throughput(&alloc(6, 16, 2.2)) / g.throughput(&alloc(6, 4, 2.2));
        let l_gain = l.throughput(&alloc(6, 16, 2.2)) / l.throughput(&alloc(6, 4, 2.2));
        assert!(
            l_gain > g_gain + 0.2,
            "lstm way-gain {l_gain} should exceed graph's {g_gain}"
        );
        // And the reverse for cores.
        let g_core = g.throughput(&alloc(12, 8, 2.2)) / g.throughput(&alloc(3, 8, 2.2));
        let l_core = l.throughput(&alloc(12, 8, 2.2)) / l.throughput(&alloc(3, 8, 2.2));
        assert!(g_core > l_core);
    }

    #[test]
    fn frequency_sensitivity_ordering() {
        // graph > pbzip > rnn ~ lstm, per the Fig. 3 calibration.
        let drop = |app: BeApp| {
            let m = BeModel::for_app(app, machine());
            m.throughput(&alloc(8, 10, 1.2)) / m.throughput(&alloc(8, 10, 2.2))
        };
        let graph = drop(BeApp::Graph);
        let pbzip = drop(BeApp::Pbzip);
        let rnn = drop(BeApp::Rnn);
        let lstm = drop(BeApp::Lstm);
        assert!(
            graph < pbzip && pbzip < rnn && rnn <= lstm + 0.02,
            "freq retention graph={graph} pbzip={pbzip} rnn={rnn} lstm={lstm}"
        );
    }

    #[test]
    fn uncapped_draws_beside_idle_xapian_match_fig2_band() {
        // Fig. 2: each BE app on 11 cores/18 ways pushes a ~60 W base server
        // into the 138–155 W range (i.e. BE draws roughly 78–96 W).
        let power = PowerDrawModel::new(machine());
        for app in BeApp::ALL {
            let m = BeModel::for_app(app, machine());
            let a = alloc(11, 18, 2.2);
            let draw = m.power_draw(&a, &power);
            assert!(
                draw.0 > 75.0 && draw.0 < 110.0,
                "{app} draw {draw} outside Fig-2 band"
            );
        }
    }

    #[test]
    fn preference_vectors_match_paper_targets() {
        use pocolo_core::fit::{fit_indirect_utility, FitOptions, ProfileSample};
        let machine = machine();
        let power = PowerDrawModel::new(machine.clone());
        let space = machine.resource_space();
        let check = |app: BeApp, want_cores: f64, tol: f64| {
            let m = BeModel::for_app(app, machine.clone());
            let mut samples = Vec::new();
            for c in 1..=12u32 {
                for w in (2..=20u32).step_by(2) {
                    let a = alloc(c, w, 2.2);
                    let sa = space.allocation(vec![c as f64, w as f64]).unwrap();
                    samples.push(ProfileSample::best_effort(
                        sa,
                        m.throughput(&a),
                        m.power_draw(&a, &power),
                    ));
                }
            }
            let fitted = fit_indirect_utility(&space, &samples, &FitOptions::default()).unwrap();
            let pv = fitted.utility.preference_vector();
            assert!(
                (pv.weight(0) - want_cores).abs() < tol,
                "{app}: cores preference {} (want ~{want_cores})",
                pv.weight(0)
            );
        };
        check(BeApp::Lstm, 0.13, 0.08); // paper: 0.13
        check(BeApp::Graph, 0.80, 0.08); // paper: 0.80
        check(BeApp::Rnn, 0.45, 0.10);
        check(BeApp::Pbzip, 0.55, 0.10);
    }
}

//! Load traces for latency-critical applications: diurnal curves, steps,
//! constant loads and the paper's uniform 10–90 % evaluation sweep.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic load trace: load fraction of peak (`0..=1`) as a function
/// of time.
///
/// ```
/// use pocolo_workloads::LoadTrace;
/// let trace = LoadTrace::diurnal(0.1, 0.9, 86_400.0);
/// let noon = trace.load_at(43_200.0);
/// let midnight = trace.load_at(0.0);
/// assert!(noon > midnight);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LoadTrace {
    /// Constant load fraction.
    Constant(f64),
    /// Sinusoidal day/night curve between `min` and `max` with the trough at
    /// `t = 0`.
    Diurnal {
        /// Minimum (night-time) load fraction.
        min: f64,
        /// Maximum (peak-hour) load fraction.
        max: f64,
        /// Period of one day in seconds.
        period_s: f64,
    },
    /// Piecewise-constant steps of `(duration_s, load)`; cycles after the
    /// last step.
    Steps(Vec<(f64, f64)>),
    /// The paper's evaluation distribution: uniform steps through
    /// `levels` load fractions, `dwell_s` seconds each (§V-D uses
    /// 10 %–90 % in steps of 10).
    UniformSweep {
        /// The load levels visited in order.
        levels: Vec<f64>,
        /// Time spent at each level, seconds.
        dwell_s: f64,
    },
    /// Replays recorded `(timestamp_s, load)` samples with step
    /// interpolation, cycling after the last sample — production traces
    /// exported from telemetry.
    Replay(Vec<(f64, f64)>),
    /// Bursty traffic: a square wave spending `duty` of each period at
    /// `peak` and the rest at `base` — flash crowds, cron fan-outs.
    Burst {
        /// Baseline load fraction.
        base: f64,
        /// Burst load fraction.
        peak: f64,
        /// Period of one burst cycle, seconds.
        period_s: f64,
        /// Fraction of the period spent at `peak`, in `(0, 1)`.
        duty: f64,
    },
}

impl LoadTrace {
    /// A diurnal trace from `min` to `max` over `period_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ min ≤ max ≤ 1` and `period_s > 0`.
    pub fn diurnal(min: f64, max: f64, period_s: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&min) && (0.0..=1.0).contains(&max) && min <= max,
            "diurnal bounds must satisfy 0 <= min <= max <= 1"
        );
        assert!(period_s > 0.0, "period must be positive");
        LoadTrace::Diurnal { min, max, period_s }
    }

    /// A bursty square wave: `duty` of each period at `peak`, else `base`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ base ≤ peak ≤ 1`, `period_s > 0` and
    /// `0 < duty < 1`.
    pub fn burst(base: f64, peak: f64, period_s: f64, duty: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&base) && (0.0..=1.0).contains(&peak) && base <= peak,
            "burst bounds must satisfy 0 <= base <= peak <= 1"
        );
        assert!(period_s > 0.0, "period must be positive");
        assert!(duty > 0.0 && duty < 1.0, "duty must be in (0, 1)");
        LoadTrace::Burst {
            base,
            peak,
            period_s,
            duty,
        }
    }

    /// A replay trace from recorded `(timestamp_s, load)` samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or timestamps are not strictly
    /// increasing from a non-negative start.
    pub fn replay(samples: Vec<(f64, f64)>) -> Self {
        assert!(!samples.is_empty(), "replay trace needs samples");
        assert!(samples[0].0 >= 0.0, "timestamps start at or after zero");
        assert!(
            samples.windows(2).all(|w| w[1].0 > w[0].0),
            "timestamps must be strictly increasing"
        );
        LoadTrace::Replay(samples)
    }

    /// The paper's 10–90 % uniform sweep in steps of 10 %, one step per
    /// `dwell_s` seconds.
    pub fn paper_sweep(dwell_s: f64) -> Self {
        LoadTrace::UniformSweep {
            levels: (1..=9).map(|i| i as f64 / 10.0).collect(),
            dwell_s,
        }
    }

    /// Load fraction of peak at time `t` seconds, always clamped to `[0, 1]`.
    pub fn load_at(&self, t: f64) -> f64 {
        let v = match self {
            LoadTrace::Constant(l) => *l,
            LoadTrace::Diurnal { min, max, period_s } => {
                // Trough at t = 0, peak at half period.
                let phase = (t / period_s) * std::f64::consts::TAU;
                let s = 0.5 - 0.5 * phase.cos();
                min + (max - min) * s
            }
            LoadTrace::Steps(steps) => {
                if steps.is_empty() {
                    return 0.0;
                }
                let total: f64 = steps.iter().map(|(d, _)| d).sum();
                if total <= 0.0 {
                    return steps[0].1.clamp(0.0, 1.0);
                }
                let mut rem = t.rem_euclid(total);
                for &(d, l) in steps {
                    if rem < d {
                        return l.clamp(0.0, 1.0);
                    }
                    rem -= d;
                }
                steps.last().map(|&(_, l)| l).unwrap_or(0.0)
            }
            LoadTrace::UniformSweep { levels, dwell_s } => {
                if levels.is_empty() || *dwell_s <= 0.0 {
                    return 0.0;
                }
                let idx =
                    ((t / dwell_s).floor() as usize).rem_euclid(levels.len().max(1)) % levels.len();
                levels[idx]
            }
            LoadTrace::Burst {
                base,
                peak,
                period_s,
                duty,
            } => {
                let phase = (t / period_s).rem_euclid(1.0);
                if phase < *duty {
                    *peak
                } else {
                    *base
                }
            }
            LoadTrace::Replay(samples) => {
                let last_t = samples.last().expect("validated non-empty").0;
                let span = if last_t > 0.0 { last_t } else { 1.0 };
                let t = t.rem_euclid(span + f64::EPSILON);
                // Step interpolation: the most recent sample at or before t.
                match samples.iter().rev().find(|&&(ts, _)| ts <= t) {
                    Some(&(_, l)) => l,
                    None => samples[0].1,
                }
            }
        };
        v.clamp(0.0, 1.0)
    }

    /// Samples the trace at `interval_s` spacing for `duration_s`, with
    /// optional multiplicative noise (seeded, deterministic).
    pub fn sample(
        &self,
        duration_s: f64,
        interval_s: f64,
        noise: f64,
        seed: u64,
    ) -> Vec<(f64, f64)> {
        assert!(interval_s > 0.0, "sample interval must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let mut t = 0.0;
        while t < duration_s {
            let base = self.load_at(t);
            let eps = if noise > 0.0 {
                rng.gen_range(-noise..=noise)
            } else {
                0.0
            };
            out.push((t, (base * (1.0 + eps)).clamp(0.0, 1.0)));
            t += interval_s;
        }
        out
    }

    /// The average load fraction over one full cycle (closed form where
    /// available, otherwise numeric).
    pub fn mean_load(&self) -> f64 {
        match self {
            LoadTrace::Constant(l) => l.clamp(0.0, 1.0),
            LoadTrace::Diurnal { min, max, .. } => (min + max) / 2.0,
            LoadTrace::Steps(steps) => {
                let total: f64 = steps.iter().map(|(d, _)| d).sum();
                if total <= 0.0 {
                    return 0.0;
                }
                steps
                    .iter()
                    .map(|&(d, l)| d * l.clamp(0.0, 1.0))
                    .sum::<f64>()
                    / total
            }
            LoadTrace::UniformSweep { levels, .. } => {
                if levels.is_empty() {
                    0.0
                } else {
                    levels.iter().map(|l| l.clamp(0.0, 1.0)).sum::<f64>() / levels.len() as f64
                }
            }
            LoadTrace::Burst {
                base, peak, duty, ..
            } => duty * peak.clamp(0.0, 1.0) + (1.0 - duty) * base.clamp(0.0, 1.0),
            LoadTrace::Replay(samples) => {
                // Time-weighted mean with step interpolation over one cycle.
                let last_t = samples.last().expect("validated non-empty").0;
                if last_t <= 0.0 || samples.len() == 1 {
                    return samples[0].1.clamp(0.0, 1.0);
                }
                let mut acc = 0.0;
                for w in samples.windows(2) {
                    acc += w[0].1.clamp(0.0, 1.0) * (w[1].0 - w[0].0);
                }
                acc / last_t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace() {
        let t = LoadTrace::Constant(0.4);
        assert_eq!(t.load_at(0.0), 0.4);
        assert_eq!(t.load_at(1e6), 0.4);
        assert_eq!(t.mean_load(), 0.4);
    }

    #[test]
    fn constant_clamps() {
        assert_eq!(LoadTrace::Constant(1.5).load_at(0.0), 1.0);
        assert_eq!(LoadTrace::Constant(-0.5).load_at(0.0), 0.0);
    }

    #[test]
    fn diurnal_shape() {
        let t = LoadTrace::diurnal(0.1, 0.9, 86_400.0);
        assert!((t.load_at(0.0) - 0.1).abs() < 1e-9);
        assert!((t.load_at(43_200.0) - 0.9).abs() < 1e-9);
        assert!((t.load_at(86_400.0) - 0.1).abs() < 1e-9);
        // Quarter period: midpoint.
        assert!((t.load_at(21_600.0) - 0.5).abs() < 1e-9);
        assert!((t.mean_load() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "diurnal bounds")]
    fn diurnal_validates_bounds() {
        let _ = LoadTrace::diurnal(0.9, 0.1, 86_400.0);
    }

    #[test]
    fn steps_cycle() {
        let t = LoadTrace::Steps(vec![(10.0, 0.2), (5.0, 0.8)]);
        assert_eq!(t.load_at(0.0), 0.2);
        assert_eq!(t.load_at(9.9), 0.2);
        assert_eq!(t.load_at(10.0), 0.8);
        assert_eq!(t.load_at(14.9), 0.8);
        assert_eq!(t.load_at(15.0), 0.2); // cycled
        assert!((t.mean_load() - (10.0 * 0.2 + 5.0 * 0.8) / 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_steps_are_zero() {
        let t = LoadTrace::Steps(vec![]);
        assert_eq!(t.load_at(3.0), 0.0);
        assert_eq!(t.mean_load(), 0.0);
    }

    #[test]
    fn paper_sweep_levels() {
        let t = LoadTrace::paper_sweep(100.0);
        assert!((t.load_at(0.0) - 0.1).abs() < 1e-9);
        assert!((t.load_at(150.0) - 0.2).abs() < 1e-9);
        assert!((t.load_at(850.0) - 0.9).abs() < 1e-9);
        assert!((t.load_at(900.0) - 0.1).abs() < 1e-9); // wraps
        assert!((t.mean_load() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn replay_steps_and_cycles() {
        let t = LoadTrace::replay(vec![(0.0, 0.2), (10.0, 0.8), (20.0, 0.4)]);
        assert_eq!(t.load_at(0.0), 0.2);
        assert_eq!(t.load_at(9.9), 0.2);
        assert_eq!(t.load_at(10.0), 0.8);
        assert_eq!(t.load_at(19.9), 0.8);
        // Cycles after the last timestamp.
        assert_eq!(t.load_at(25.0), 0.2);
        // Time-weighted mean: (0.2*10 + 0.8*10)/20 = 0.5.
        assert!((t.mean_load() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn replay_single_sample_is_constant() {
        let t = LoadTrace::replay(vec![(0.0, 0.7)]);
        assert_eq!(t.load_at(123.0), 0.7);
        assert_eq!(t.mean_load(), 0.7);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn replay_validates_order() {
        let _ = LoadTrace::replay(vec![(0.0, 0.1), (0.0, 0.2)]);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn replay_validates_nonempty() {
        let _ = LoadTrace::replay(vec![]);
    }

    #[test]
    fn burst_square_wave() {
        let t = LoadTrace::burst(0.2, 0.9, 100.0, 0.3);
        assert_eq!(t.load_at(0.0), 0.9);
        assert_eq!(t.load_at(29.9), 0.9);
        assert_eq!(t.load_at(30.0), 0.2);
        assert_eq!(t.load_at(99.9), 0.2);
        assert_eq!(t.load_at(100.0), 0.9); // next cycle
        assert!((t.mean_load() - (0.3 * 0.9 + 0.7 * 0.2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duty must be in")]
    fn burst_validates_duty() {
        let _ = LoadTrace::burst(0.2, 0.9, 100.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "burst bounds")]
    fn burst_validates_bounds() {
        let _ = LoadTrace::burst(0.9, 0.2, 100.0, 0.5);
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let t = LoadTrace::diurnal(0.2, 0.8, 1000.0);
        let a = t.sample(500.0, 10.0, 0.05, 7);
        let b = t.sample(500.0, 10.0, 0.05, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        for &(_, l) in &a {
            assert!((0.0..=1.0).contains(&l));
        }
        let c = t.sample(500.0, 10.0, 0.05, 8);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn noiseless_sampling_matches_load_at() {
        let t = LoadTrace::paper_sweep(50.0);
        for (ts, l) in t.sample(400.0, 25.0, 0.0, 0) {
            assert_eq!(l, t.load_at(ts));
        }
    }
}

//! Three-resource workloads: cores, LLC ways **and memory bandwidth**.
//!
//! The paper's prototype manages two direct resources but the framework is
//! k-dimensional, and §V-G explicitly lists memory bandwidth as the next
//! substitutable resource ("our solution can be applied for resources that
//! can be substituted within an application (e.g. memory bandwidth...)").
//! This module provides a ground-truth three-resource application (an
//! analytics mix whose performance responds to compute, cache *and* memory
//! bandwidth, as under Intel MBA throttling) plus a profiler, so the
//! economics layer can be exercised end-to-end at k = 3.

use pocolo_core::fit::ProfileSample;
use pocolo_core::resources::{ResourceDescriptor, ResourceSpace};
use pocolo_core::units::Watts;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ces::saturate;

/// A synthetic three-resource application: normalized throughput over
/// (cores, llc_ways, membw_gbps) with per-axis saturation, and an additive
/// power model.
///
/// ```
/// use pocolo_workloads::membw::ThreeResourceApp;
/// let app = ThreeResourceApp::analytics_mix();
/// assert_eq!(app.space().len(), 3);
/// let full: Vec<f64> = app.space().iter().map(|d| d.max()).collect();
/// assert!((app.throughput(&full) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThreeResourceApp {
    space: ResourceSpace,
    /// Per-axis exponents.
    alphas: [f64; 3],
    /// Per-axis saturation strengths.
    sats: [f64; 3],
    /// Static power.
    p_static: Watts,
    /// Per-unit marginal power (W per core, per way, per GB/s).
    p_dyn: [f64; 3],
}

impl ThreeResourceApp {
    /// The reference three-resource workload: an analytics mix that wants
    /// bandwidth about as much as cores, with caches third.
    pub fn analytics_mix() -> Self {
        ThreeResourceApp {
            space: three_resource_space(),
            alphas: [0.45, 0.15, 0.40],
            sats: [1.2, 0.8, 1.0],
            p_static: Watts(8.0),
            p_dyn: [6.0, 1.2, 0.9],
        }
    }

    /// A bandwidth-insensitive compute kernel, for contrast.
    pub fn compute_kernel() -> Self {
        ThreeResourceApp {
            space: three_resource_space(),
            alphas: [0.80, 0.12, 0.08],
            sats: [1.0, 0.6, 0.5],
            p_static: Watts(5.0),
            p_dyn: [7.0, 1.0, 0.5],
        }
    }

    /// The resource space: cores 1–12, ways 1–20, membw 1–40 GB/s.
    pub fn space(&self) -> &ResourceSpace {
        &self.space
    }

    /// Ground-truth normalized throughput at raw amounts
    /// `(cores, ways, membw)`.
    ///
    /// # Panics
    ///
    /// Panics unless exactly three amounts are supplied.
    pub fn throughput(&self, amounts: &[f64]) -> f64 {
        assert_eq!(amounts.len(), 3, "three resources expected");
        let mut perf = 1.0;
        for ((&r, d), (&a, &k)) in amounts
            .iter()
            .zip(self.space.iter())
            .zip(self.alphas.iter().zip(&self.sats))
        {
            let x = saturate((r / d.max()).clamp(0.0, 1.0), k);
            perf *= x.powf(a);
        }
        perf
    }

    /// Ground-truth power draw at raw amounts.
    ///
    /// # Panics
    ///
    /// Panics unless exactly three amounts are supplied.
    pub fn power(&self, amounts: &[f64]) -> Watts {
        assert_eq!(amounts.len(), 3, "three resources expected");
        self.p_static + Watts(amounts.iter().zip(&self.p_dyn).map(|(&r, &p)| r * p).sum())
    }

    /// Profiles the app over a coarse 3-D grid with multiplicative noise.
    pub fn profile(&self, noise: f64, seed: u64) -> Vec<ProfileSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::new();
        for c in [1.0f64, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0] {
            for w in [2.0f64, 6.0, 10.0, 14.0, 18.0] {
                for m in [2.0f64, 8.0, 16.0, 24.0, 32.0, 40.0] {
                    let amounts = vec![c, w, m];
                    let eps = |rng: &mut StdRng| {
                        if noise > 0.0 {
                            rng.gen_range(-noise..=noise)
                        } else {
                            0.0
                        }
                    };
                    let perf = self.throughput(&amounts) * (1.0 + eps(&mut rng));
                    let power = self.power(&amounts) * (1.0 + eps(&mut rng));
                    samples.push(ProfileSample::best_effort(
                        self.space.allocation(amounts).expect("grid within space"),
                        perf.max(1e-9),
                        power,
                    ));
                }
            }
        }
        samples
    }
}

/// The three-dimensional resource space used by [`ThreeResourceApp`].
pub fn three_resource_space() -> ResourceSpace {
    ResourceSpace::builder()
        .resource(ResourceDescriptor::integral("cores", 1.0, 12.0))
        .resource(ResourceDescriptor::integral("llc_ways", 1.0, 20.0))
        .resource(ResourceDescriptor::continuous("membw_gbps", 1.0, 40.0))
        .build()
        .expect("static descriptors are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocolo_core::fit::{fit_indirect_utility, FitOptions};
    use pocolo_core::units::Watts;

    #[test]
    fn normalized_at_full_allocation() {
        for app in [
            ThreeResourceApp::analytics_mix(),
            ThreeResourceApp::compute_kernel(),
        ] {
            let full: Vec<f64> = app.space().iter().map(|d| d.max()).collect();
            assert!((app.throughput(&full) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn monotone_in_every_resource() {
        let app = ThreeResourceApp::analytics_mix();
        let base = app.throughput(&[6.0, 10.0, 20.0]);
        assert!(app.throughput(&[7.0, 10.0, 20.0]) > base);
        assert!(app.throughput(&[6.0, 11.0, 20.0]) > base);
        assert!(app.throughput(&[6.0, 10.0, 24.0]) > base);
    }

    #[test]
    fn fit_and_demand_at_k3() {
        let app = ThreeResourceApp::analytics_mix();
        let samples = app.profile(0.03, 7);
        let fitted = fit_indirect_utility(app.space(), &samples, &FitOptions::default()).unwrap();
        assert!(fitted.performance_r2 > 0.9, "{}", fitted.performance_r2);
        assert!(fitted.power_r2 > 0.99);
        // Demand splits the budget across three dimensions.
        let demand = fitted.utility.demand(Watts(80.0)).unwrap();
        assert_eq!(demand.len(), 3);
        let power = fitted.utility.power_model().power_of(&demand);
        assert!(power <= Watts(80.0 + 1e-6));
        // Analytics mix values bandwidth: it should buy a non-trivial share.
        assert!(
            demand.amount(2) > 8.0,
            "bandwidth demand {} too small",
            demand.amount(2)
        );
    }

    #[test]
    fn preference_vectors_distinguish_apps() {
        let analytics = ThreeResourceApp::analytics_mix();
        let kernel = ThreeResourceApp::compute_kernel();
        let fit = |app: &ThreeResourceApp| {
            fit_indirect_utility(app.space(), &app.profile(0.02, 11), &FitOptions::default())
                .unwrap()
                .utility
                .preference_vector()
        };
        let pa = fit(&analytics);
        let pk = fit(&kernel);
        assert_eq!(pa.len(), 3);
        assert!(
            pa.weight(2) > pk.weight(2) + 0.1,
            "analytics ({}) should want bandwidth more than the kernel ({})",
            pa.weight(2),
            pk.weight(2)
        );
        assert!(pk.weight(0) > pa.weight(0), "kernel wants cores more");
        assert!(pa.complementarity(&pk) > 0.15);
    }

    #[test]
    fn profile_is_deterministic() {
        let app = ThreeResourceApp::analytics_mix();
        assert_eq!(app.profile(0.03, 1), app.profile(0.03, 1));
        assert_ne!(app.profile(0.03, 1), app.profile(0.03, 2));
        assert_eq!(app.profile(0.0, 1).len(), 7 * 5 * 6);
    }

    #[test]
    #[should_panic(expected = "three resources")]
    fn wrong_arity_panics() {
        let app = ThreeResourceApp::analytics_mix();
        let _ = app.throughput(&[1.0, 2.0]);
    }
}

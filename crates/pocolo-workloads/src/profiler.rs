//! Profiling sweeps: sampling performance and power across allocations,
//! as the paper's telemetry pipeline does (§IV-A).
//!
//! For latency-critical apps the profiler measures at several operating
//! loads per allocation. Measurements taken with little latency slack are
//! *biased low* (the measured "max achievable load" is polluted by
//! saturation) — which is exactly why the paper guards the fit with a
//! minimum-slack filter.

use pocolo_core::fit::ProfileSample;
use pocolo_core::resources::ResourceSpace;
use pocolo_core::units::Frequency;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pocolo_simserver::power::PowerDrawModel;
use pocolo_simserver::{CoreSet, TenantAllocation, WayMask};

use crate::be::BeModel;
use crate::lc::LcModel;

/// Configuration of a profiling sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilerConfig {
    /// Stride through core counts (1 = every count).
    pub core_stride: u32,
    /// Stride through way counts.
    pub way_stride: u32,
    /// Relative measurement noise on performance (±fraction).
    pub perf_noise: f64,
    /// Relative measurement noise on power (±fraction).
    pub power_noise: f64,
    /// RNG seed for reproducible noise.
    pub seed: u64,
    /// For LC apps: fractions of the sustainable load at which to take the
    /// measurement (each produces one sample per allocation).
    pub operating_points: Vec<f64>,
    /// Profiling frequency (defaults to the machine maximum at build time).
    pub frequency: Option<Frequency>,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            core_stride: 1,
            way_stride: 2,
            perf_noise: 0.07,
            power_noise: 0.03,
            seed: 0xB0C0,
            operating_points: vec![0.7, 0.85, 1.0],
            frequency: None,
        }
    }
}

fn grid(machine_cores: u32, machine_ways: u32, cfg: &ProfilerConfig) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut c = 1;
    while c <= machine_cores {
        let mut w = 2.min(machine_ways);
        while w <= machine_ways {
            out.push((c, w));
            w += cfg.way_stride.max(1);
        }
        c += cfg.core_stride.max(1);
    }
    out
}

/// Profiles a latency-critical application over the allocation grid.
///
/// Each allocation yields one sample per operating point in
/// [`ProfilerConfig::operating_points`]. Samples taken with less than 10 %
/// latency slack report a biased (15 % low) performance estimate,
/// modelling saturation pollution.
pub fn profile_lc(
    model: &LcModel,
    power: &PowerDrawModel,
    space: &ResourceSpace,
    cfg: &ProfilerConfig,
) -> Vec<ProfileSample> {
    let machine = model.machine();
    let freq = cfg.frequency.unwrap_or_else(|| machine.freq_max());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut samples = Vec::new();
    for (c, w) in grid(machine.cores(), machine.llc_ways(), cfg) {
        let alloc = TenantAllocation::new(CoreSet::first_n(c), WayMask::first_n(w), freq);
        let sustainable = model.sustainable_load_rps(&alloc);
        for &phi in &cfg.operating_points {
            let load = phi * sustainable;
            let slack = model.latency_slack(load, &alloc);
            let bias = if slack < 0.10 { 0.85 } else { 1.0 };
            let perf_eps = noise(&mut rng, cfg.perf_noise);
            let power_eps = noise(&mut rng, cfg.power_noise);
            let measured_perf = sustainable * bias * (1.0 + perf_eps);
            // The LC app owns the server: its apportioned power includes the
            // platform idle power.
            let true_power =
                power.server_power([model.power_draw(load.min(sustainable), &alloc, power)]);
            let measured_power = true_power * (1.0 + power_eps);
            let sa = space
                .allocation(vec![c as f64, w as f64])
                .expect("grid stays within the machine's space");
            samples.push(ProfileSample::latency_critical(
                sa,
                measured_perf.max(1e-9),
                measured_power,
                slack,
            ));
        }
    }
    samples
}

/// Profiles a best-effort application over the allocation grid.
///
/// BE power is reported *apportioned*: only the application's own draw,
/// without the platform idle power (which the primary owns). Fitted BE
/// models therefore take the colocation power *headroom* directly as their
/// budget.
pub fn profile_be(
    model: &BeModel,
    power: &PowerDrawModel,
    space: &ResourceSpace,
    cfg: &ProfilerConfig,
) -> Vec<ProfileSample> {
    let machine = model.machine();
    let freq = cfg.frequency.unwrap_or_else(|| machine.freq_max());
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EC0_17D0);
    let mut samples = Vec::new();
    for (c, w) in grid(machine.cores(), machine.llc_ways(), cfg) {
        let alloc = TenantAllocation::new(CoreSet::first_n(c), WayMask::first_n(w), freq);
        let perf_eps = noise(&mut rng, cfg.perf_noise);
        let power_eps = noise(&mut rng, cfg.power_noise);
        let measured_perf = model.throughput(&alloc) * (1.0 + perf_eps);
        let measured_power = model.power_draw(&alloc, power) * (1.0 + power_eps);
        let sa = space
            .allocation(vec![c as f64, w as f64])
            .expect("grid stays within the machine's space");
        samples.push(ProfileSample::best_effort(
            sa,
            measured_perf.max(1e-9),
            measured_power,
        ));
    }
    samples
}

fn noise(rng: &mut StdRng, amplitude: f64) -> f64 {
    if amplitude > 0.0 {
        rng.gen_range(-amplitude..=amplitude)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{BeApp, LcApp};
    use pocolo_core::fit::{fit_indirect_utility, FitOptions};
    use pocolo_simserver::MachineSpec;

    fn setup() -> (MachineSpec, PowerDrawModel, ResourceSpace) {
        let m = MachineSpec::xeon_e5_2650();
        let p = PowerDrawModel::new(m.clone());
        let s = m.resource_space();
        (m, p, s)
    }

    #[test]
    fn lc_profile_shape() {
        let (m, p, s) = setup();
        let model = LcModel::for_app(LcApp::Xapian, m);
        let cfg = ProfilerConfig::default();
        let samples = profile_lc(&model, &p, &s, &cfg);
        // 12 core counts × 10 way counts × 3 operating points.
        assert_eq!(samples.len(), 12 * 10 * 3);
        for smp in &samples {
            assert!(smp.performance > 0.0);
            assert!(smp.power.0 > 50.0, "LC samples include idle power");
            assert!(smp.latency_slack.is_some());
        }
    }

    #[test]
    fn be_profile_shape() {
        let (m, p, s) = setup();
        let model = BeModel::for_app(BeApp::Graph, m);
        let samples = profile_be(&model, &p, &s, &ProfilerConfig::default());
        assert_eq!(samples.len(), 12 * 10);
        for smp in &samples {
            assert!(smp.latency_slack.is_none());
            assert!(smp.power.0 < 120.0, "BE power is apportioned (no idle)");
        }
    }

    #[test]
    fn profiles_are_deterministic_per_seed() {
        let (m, p, s) = setup();
        let model = BeModel::for_app(BeApp::Lstm, m);
        let a = profile_be(&model, &p, &s, &ProfilerConfig::default());
        let b = profile_be(&model, &p, &s, &ProfilerConfig::default());
        assert_eq!(a, b);
        let cfg = ProfilerConfig {
            seed: ProfilerConfig::default().seed + 1,
            ..ProfilerConfig::default()
        };
        let c = profile_be(&model, &p, &s, &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn fits_land_in_paper_r2_band() {
        // Fig. 8: R² between 0.8 and 0.98 for all eight apps.
        let (m, p, s) = setup();
        let cfg = ProfilerConfig::default();
        for app in LcApp::ALL {
            let model = LcModel::for_app(app, m.clone());
            let samples = profile_lc(&model, &p, &s, &cfg);
            let fitted = fit_indirect_utility(&s, &samples, &FitOptions::default()).unwrap();
            assert!(
                fitted.performance_r2 > 0.8 && fitted.performance_r2 < 0.995,
                "{app}: perf R² {} out of band",
                fitted.performance_r2
            );
            assert!(
                fitted.power_r2 > 0.8,
                "{app}: power R² {} out of band",
                fitted.power_r2
            );
        }
        for app in BeApp::ALL {
            let model = BeModel::for_app(app, m.clone());
            let samples = profile_be(&model, &p, &s, &cfg);
            let fitted = fit_indirect_utility(&s, &samples, &FitOptions::default()).unwrap();
            assert!(
                fitted.performance_r2 > 0.8,
                "{app}: perf R² {} out of band",
                fitted.performance_r2
            );
            assert!(
                fitted.power_r2 > 0.8,
                "{app}: power R² {} out of band",
                fitted.power_r2
            );
        }
    }

    #[test]
    fn slack_filter_improves_fit() {
        // Including near-saturation (biased) samples should hurt R².
        let (m, p, s) = setup();
        let model = LcModel::for_app(LcApp::Sphinx, m);
        let cfg = ProfilerConfig {
            operating_points: vec![0.5, 0.8, 1.0, 1.05],
            ..ProfilerConfig::default()
        };
        let samples = profile_lc(&model, &p, &s, &cfg);
        let strict = fit_indirect_utility(&s, &samples, &FitOptions::default()).unwrap();
        let lax = fit_indirect_utility(
            &s,
            &samples,
            &FitOptions {
                min_latency_slack: -10.0,
                ..FitOptions::default()
            },
        )
        .unwrap();
        assert!(strict.samples_used < lax.samples_used);
        assert!(
            strict.performance_r2 > lax.performance_r2,
            "filtered fit {} should beat unfiltered {}",
            strict.performance_r2,
            lax.performance_r2
        );
    }

    #[test]
    fn custom_strides_shrink_grid() {
        let (m, p, s) = setup();
        let model = BeModel::for_app(BeApp::Rnn, m);
        let cfg = ProfilerConfig {
            core_stride: 3,
            way_stride: 6,
            ..ProfilerConfig::default()
        };
        let samples = profile_be(&model, &p, &s, &cfg);
        // cores 1,4,7,10 × ways 2,8,14,20.
        assert_eq!(samples.len(), 16);
    }
}

#[cfg(test)]
mod calibration {
    //! Run with `cargo test -p pocolo-workloads calibration -- --ignored
    //! --nocapture` to print the fitted parameters for every app.
    use super::*;
    use crate::app::{BeApp, LcApp};
    use pocolo_core::fit::{fit_indirect_utility, FitOptions};
    use pocolo_simserver::MachineSpec;

    #[test]
    #[ignore = "calibration report, not a check"]
    fn print_fitted_parameters() {
        let m = MachineSpec::xeon_e5_2650();
        let p = PowerDrawModel::new(m.clone());
        let s = m.resource_space();
        let cfg = ProfilerConfig::default();
        println!("app       perfR2 powR2  a_c    a_w    p_st   p_c    p_w    pref_c pref_w dir_c");
        for app in LcApp::ALL {
            let model = LcModel::for_app(app, m.clone());
            let samples = profile_lc(&model, &p, &s, &cfg);
            let f = fit_indirect_utility(&s, &samples, &FitOptions::default()).unwrap();
            let u = &f.utility;
            let pv = u.preference_vector();
            let dv = u.direct_preference_vector();
            println!(
                "{:9} {:.3}  {:.3}  {:.3}  {:.3}  {:5.1}  {:.3}  {:.3}  {:.3}  {:.3}  {:.3}",
                app.name(),
                f.performance_r2,
                f.power_r2,
                u.performance_model().alphas()[0],
                u.performance_model().alphas()[1],
                u.power_model().p_static().0,
                u.power_model().p_dynamic()[0],
                u.power_model().p_dynamic()[1],
                pv.weight(0),
                pv.weight(1),
                dv.weight(0)
            );
        }
        for app in BeApp::ALL {
            let model = BeModel::for_app(app, m.clone());
            let samples = profile_be(&model, &p, &s, &cfg);
            let f = fit_indirect_utility(&s, &samples, &FitOptions::default()).unwrap();
            let u = &f.utility;
            let pv = u.preference_vector();
            let dv = u.direct_preference_vector();
            println!(
                "{:9} {:.3}  {:.3}  {:.3}  {:.3}  {:5.1}  {:.3}  {:.3}  {:.3}  {:.3}  {:.3}",
                app.name(),
                f.performance_r2,
                f.power_r2,
                u.performance_model().alphas()[0],
                u.performance_model().alphas()[1],
                u.power_model().p_static().0,
                u.power_model().p_dynamic()[0],
                u.power_model().p_dynamic()[1],
                pv.weight(0),
                pv.weight(1),
                dv.weight(0)
            );
        }
    }
}

//! # pocolo-workloads
//!
//! Ground-truth workload models standing in for the paper's evaluation
//! applications:
//!
//! - **Latency-critical (LC)** primaries from TailBench and TPC-C:
//!   `img-dnn`, `sphinx`, `xapian`, `tpcc` ([`lc::LcModel`], Table II).
//! - **Best-effort (BE)** secondaries: Keras `LSTM`/`RNN` training,
//!   `graph` analytics (PageRank) and `pbzip2` compression
//!   ([`be::BeModel`]).
//!
//! # Modelling approach
//!
//! Each application's ground-truth performance surface is a **CES
//! (constant-elasticity-of-substitution) production function** over
//! normalized cores and LLC ways, scaled by a DVFS term and (for BE apps)
//! the CPU quota:
//!
//! ```text
//! perf(c, w, f) = peak · [θ·(c/C)^ρ + (1−θ)·(w/W)^ρ]^(η/ρ) · (f/f_max)^γp · quota
//! ```
//!
//! CES is deliberately *not* Cobb-Douglas (Cobb-Douglas is its ρ→0 limit),
//! so fitting the paper's Cobb-Douglas model to profiled samples yields the
//! good-but-imperfect R² ∈ [0.8, 0.98] the paper reports (Fig. 8), rather
//! than a trivially perfect fit.
//!
//! Tail latency follows an M/M/1-style blow-up
//! `p99(ρ) = L₀ / (1 − ρ)` with `L₀` chosen so the SLO is hit at
//! ρ = 90 % utilization; "maximum load within SLO" is therefore 0.9× the
//! capacity surface, which reproduces the Table II peak loads at full
//! allocation.
//!
//! Power intensities per app are calibrated so full-allocation peak server
//! power matches Table II (133–182 W), and so the *indirect preference
//! vectors* `(α/p)` land where the paper reports them (§III, §V-C):
//! sphinx ≈ 0.2:0.8 cores:ways, Graph ≈ 0.8:0.2, LSTM ≈ 0.13:0.87.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod be;
pub mod ces;
pub mod lc;
pub mod membw;
pub mod profiler;
pub mod reqsim;
pub mod traces;

pub use app::{AppId, BeApp, LcApp};
pub use be::BeModel;
pub use lc::LcModel;
pub use profiler::{profile_be, profile_lc, ProfilerConfig};
pub use traces::LoadTrace;

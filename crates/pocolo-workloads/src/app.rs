//! Application identities for the paper's eight evaluation workloads.

use std::fmt;

/// The four latency-critical primary applications (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LcApp {
    /// `img-dnn` — DNN image inference on MNIST (TailBench).
    ImgDnn,
    /// `sphinx` — HMM continuous speech recognition on AN4 (TailBench).
    Sphinx,
    /// `xapian` — web-search leaf node over an English Wikipedia index
    /// (TailBench).
    Xapian,
    /// `TPC-C` — OLTP against a MySQL backend.
    TpcC,
}

impl LcApp {
    /// All four LC apps in the paper's column order.
    pub const ALL: [LcApp; 4] = [LcApp::ImgDnn, LcApp::Sphinx, LcApp::Xapian, LcApp::TpcC];

    /// The application's short name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            LcApp::ImgDnn => "img-dnn",
            LcApp::Sphinx => "sphinx",
            LcApp::Xapian => "xapian",
            LcApp::TpcC => "tpcc",
        }
    }
}

impl fmt::Display for LcApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The four best-effort secondary applications (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BeApp {
    /// Keras LSTM training for IMDB sentiment classification.
    Lstm,
    /// Keras RNN training (learning addition).
    Rnn,
    /// PageRank over the Twitter graph (CloudSuite-style analytics).
    Graph,
    /// `pbzip2` parallel compression.
    Pbzip,
}

impl BeApp {
    /// All four BE apps in the paper's order.
    pub const ALL: [BeApp; 4] = [BeApp::Lstm, BeApp::Rnn, BeApp::Graph, BeApp::Pbzip];

    /// The application's short name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            BeApp::Lstm => "lstm",
            BeApp::Rnn => "rnn",
            BeApp::Graph => "graph",
            BeApp::Pbzip => "pbzip",
        }
    }
}

impl fmt::Display for BeApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Either kind of application — useful for telemetry keys and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    /// A latency-critical primary.
    Lc(LcApp),
    /// A best-effort secondary.
    Be(BeApp),
}

impl AppId {
    /// The application's short name.
    pub fn name(self) -> &'static str {
        match self {
            AppId::Lc(a) => a.name(),
            AppId::Be(a) => a.name(),
        }
    }

    /// True for latency-critical applications.
    pub fn is_latency_critical(self) -> bool {
        matches!(self, AppId::Lc(_))
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<LcApp> for AppId {
    fn from(a: LcApp) -> AppId {
        AppId::Lc(a)
    }
}

impl From<BeApp> for AppId {
    fn from(a: BeApp) -> AppId {
        AppId::Be(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(LcApp::ImgDnn.name(), "img-dnn");
        assert_eq!(LcApp::Sphinx.to_string(), "sphinx");
        assert_eq!(BeApp::Pbzip.name(), "pbzip");
        assert_eq!(AppId::from(BeApp::Graph).to_string(), "graph");
    }

    #[test]
    fn all_arrays_cover_each_variant() {
        assert_eq!(LcApp::ALL.len(), 4);
        assert_eq!(BeApp::ALL.len(), 4);
        let mut names: Vec<&str> = LcApp::ALL.iter().map(|a| a.name()).collect();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn appid_classification() {
        assert!(AppId::Lc(LcApp::Xapian).is_latency_critical());
        assert!(!AppId::Be(BeApp::Rnn).is_latency_critical());
        assert_eq!(AppId::from(LcApp::TpcC), AppId::Lc(LcApp::TpcC));
    }
}

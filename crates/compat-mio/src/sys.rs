//! Backend selectors: raw-syscall epoll on Linux x86_64/aarch64, and a
//! portable scan fallback everywhere (always compiled, reachable via
//! `Poll::new_fallback` so it stays tested on epoll platforms).

use crate::{Event, Interest, Source, Token};
use std::io;
use std::time::Duration;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub(crate) mod epoll;
pub(crate) mod scan;

/// Probe handle the scan fallback uses to test readiness without
/// consuming data: a cloned socket it can `peek`, a listener it must
/// report speculatively, or a source that is always ready.
#[derive(Debug)]
pub enum Probe {
    /// A cloned, nonblocking stream socket; `peek` tests read readiness.
    Stream(std::net::TcpStream),
    /// A listener; cannot be probed without accepting, reported ready
    /// on every scan pass (callers tolerate `WouldBlock` from accept).
    Listener,
    /// Always reported ready for the registered interest.
    Always,
}

#[derive(Debug)]
pub(crate) enum Selector {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Epoll(epoll::EpollSelector),
    Scan(scan::ScanSelector),
}

#[derive(Debug)]
pub(crate) enum WakerImpl {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Epoll(epoll::EventFdWaker),
    Scan(scan::FlagWaker),
}

impl WakerImpl {
    pub(crate) fn wake(&self) -> io::Result<()> {
        match self {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            WakerImpl::Epoll(w) => w.wake(),
            WakerImpl::Scan(w) => w.wake(),
        }
    }
}

impl Selector {
    pub(crate) fn new() -> io::Result<Selector> {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            return Ok(Selector::Epoll(epoll::EpollSelector::new()?));
        }
        #[allow(unreachable_code)]
        Self::new_fallback()
    }

    pub(crate) fn new_fallback() -> io::Result<Selector> {
        Ok(Selector::Scan(scan::ScanSelector::new()))
    }

    pub(crate) fn register<S: Source>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        match self {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Selector::Epoll(s) => s.register(source.raw_fd(), token, interest),
            Selector::Scan(s) => s.register(source.probe()?, token, interest),
        }
    }

    pub(crate) fn reregister<S: Source>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        match self {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Selector::Epoll(s) => s.reregister(source.raw_fd(), token, interest),
            Selector::Scan(s) => s.reregister(token, interest),
        }
    }

    pub(crate) fn deregister<S: Source>(&self, source: &S, token: Token) -> io::Result<()> {
        match self {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Selector::Epoll(s) => s.deregister(source.raw_fd(), token),
            Selector::Scan(s) => s.deregister(token),
        }
    }

    pub(crate) fn select(
        &self,
        events: &mut Vec<Event>,
        cap: usize,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        match self {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Selector::Epoll(s) => s.select(events, cap, timeout),
            Selector::Scan(s) => s.select(events, cap, timeout),
        }
    }

    pub(crate) fn make_waker(&self, token: Token) -> io::Result<WakerImpl> {
        match self {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Selector::Epoll(s) => Ok(WakerImpl::Epoll(s.make_waker(token)?)),
            Selector::Scan(s) => Ok(WakerImpl::Scan(s.make_waker(token))),
        }
    }
}

//! Level-triggered epoll selector driven by raw syscalls.
//!
//! The workspace vendors no `libc`, so the four syscalls epoll needs
//! (`epoll_create1`, `epoll_ctl`, `epoll_wait`/`epoll_pwait`,
//! `eventfd2`, plus `read`/`write`/`close` for the eventfd waker) are
//! issued directly with `core::arch::asm!`. Kernel ABI facts this file
//! hard-codes: syscall return values in `[-4095, -1]` are `-errno`;
//! `struct epoll_event` is packed (12 bytes) on x86_64 and naturally
//! aligned (16 bytes) everywhere else.

use crate::{Event, Interest, Token};
use std::collections::HashMap;
use std::io;
use std::os::unix::io::RawFd;
use std::sync::Mutex;
use std::time::Duration;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;

const EPOLL_CLOEXEC: usize = 0x80000;
const EFD_CLOEXEC: usize = 0x80000;
const EFD_NONBLOCK: usize = 0x800;

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const EPOLL_WAIT: usize = 232;
    pub const EPOLL_CTL: usize = 233;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    // aarch64 has no epoll_wait; epoll_pwait with a null sigmask is it.
    pub const EPOLL_PWAIT: usize = 22;
    pub const EPOLL_CTL: usize = 21;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
}

#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: usize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") n => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        in("r8") a5,
        in("r9") a6,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret as isize
}

#[cfg(target_arch = "aarch64")]
#[inline]
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: usize;
    core::arch::asm!(
        "svc 0",
        in("x8") n,
        inlateout("x0") a1 => ret,
        in("x1") a2,
        in("x2") a3,
        in("x3") a4,
        in("x4") a5,
        in("x5") a6,
        options(nostack),
    );
    ret as isize
}

/// Maps a raw syscall return to `io::Result<usize>`.
fn check(ret: isize) -> io::Result<usize> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

fn sys_close(fd: RawFd) {
    // Nothing sensible to do with a failed close on drop.
    let _ = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
}

#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

fn interest_mask(interest: Interest) -> u32 {
    let mut mask = EPOLLRDHUP;
    if interest.is_readable() {
        mask |= EPOLLIN;
    }
    if interest.is_writable() {
        mask |= EPOLLOUT;
    }
    mask
}

#[derive(Debug)]
pub(crate) struct EpollSelector {
    epfd: RawFd,
    /// token → waker eventfd, so select() can drain a fired waker and
    /// keep level-triggered polling from re-reporting it forever.
    wakers: Mutex<HashMap<usize, RawFd>>,
}

impl EpollSelector {
    pub(crate) fn new() -> io::Result<EpollSelector> {
        let epfd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(EpollSelector {
            epfd: epfd as RawFd,
            wakers: Mutex::new(HashMap::new()),
        })
    }

    fn ctl(&self, op: usize, fd: RawFd, mask: u32, token: usize) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: mask,
            data: token as u64,
        };
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.epfd as usize,
                op,
                fd as usize,
                &mut ev as *mut EpollEvent as usize,
                0,
                0,
            )
        })?;
        Ok(())
    }

    pub(crate) fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest_mask(interest), token.0)
    }

    pub(crate) fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest_mask(interest), token.0)
    }

    pub(crate) fn deregister(&self, fd: RawFd, _token: Token) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    pub(crate) fn select(
        &self,
        events: &mut Vec<Event>,
        cap: usize,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        let cap = cap.min(1024);
        let mut buf = vec![EpollEvent { events: 0, data: 0 }; cap];
        let timeout_ms: isize = match timeout {
            // Round sub-millisecond timeouts up so a 100 µs request
            // doesn't degenerate into a zero-timeout spin.
            Some(d) => (d.as_millis() as isize)
                .max(isize::from(!d.is_zero()))
                .min(i32::MAX as isize),
            None => -1,
        };
        let n = loop {
            #[cfg(target_arch = "x86_64")]
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_WAIT,
                    self.epfd as usize,
                    buf.as_mut_ptr() as usize,
                    cap,
                    timeout_ms as usize,
                    0,
                    0,
                )
            };
            #[cfg(target_arch = "aarch64")]
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.epfd as usize,
                    buf.as_mut_ptr() as usize,
                    cap,
                    timeout_ms as usize,
                    0, // null sigmask
                    8, // sigsetsize
                )
            };
            match check(ret) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        let wakers = self.wakers.lock().unwrap();
        for raw in buf.iter().take(n) {
            let mask = { raw.events };
            let token = { raw.data } as usize;
            if let Some(&efd) = wakers.get(&token) {
                drain_eventfd(efd);
            }
            events.push(Event::new(
                Token(token),
                mask & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0,
                mask & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                mask & (EPOLLRDHUP | EPOLLHUP) != 0,
                mask & EPOLLERR != 0,
            ));
        }
        Ok(())
    }

    pub(crate) fn make_waker(&self, token: Token) -> io::Result<EventFdWaker> {
        let efd =
            check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })?
                as RawFd;
        if let Err(e) = self.ctl(EPOLL_CTL_ADD, efd, EPOLLIN, token.0) {
            sys_close(efd);
            return Err(e);
        }
        self.wakers.lock().unwrap().insert(token.0, efd);
        Ok(EventFdWaker { efd })
    }
}

impl Drop for EpollSelector {
    fn drop(&mut self) {
        sys_close(self.epfd);
    }
}

fn drain_eventfd(efd: RawFd) {
    let mut count = [0u8; 8];
    // Nonblocking eventfd: EAGAIN just means another drain got there first.
    let _ = unsafe {
        syscall6(
            nr::READ,
            efd as usize,
            count.as_mut_ptr() as usize,
            8,
            0,
            0,
            0,
        )
    };
}

/// An `eventfd(2)`-backed waker: `wake` writes an 8-byte counter
/// increment, making the registered epoll entry read-ready.
#[derive(Debug)]
pub(crate) struct EventFdWaker {
    efd: RawFd,
}

// The eventfd is only written from wake() and read from select(); both
// are single syscalls on a fd that lives as long as the waker.
unsafe impl Send for EventFdWaker {}
unsafe impl Sync for EventFdWaker {}

impl EventFdWaker {
    pub(crate) fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        let buf = one.to_ne_bytes();
        match check(unsafe {
            syscall6(
                nr::WRITE,
                self.efd as usize,
                buf.as_ptr() as usize,
                8,
                0,
                0,
                0,
            )
        }) {
            Ok(_) => Ok(()),
            // Counter saturated: the poll side is already pending wakeup.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}

impl Drop for EventFdWaker {
    fn drop(&mut self) {
        sys_close(self.efd);
    }
}

//! Portable readiness fallback: no OS selector, just a bounded scan
//! loop over cloned probe handles.
//!
//! Semantics (level-triggered, conservative):
//! - streams are read-ready when a nonblocking `peek` returns data or
//!   EOF; write readiness is reported optimistically (the caller's
//!   nonblocking write discovers the truth and gets `WouldBlock`);
//! - listeners are reported ready whenever the scan returns, since
//!   accepting is the only probe — callers must tolerate `WouldBlock`;
//! - wakers are shared `AtomicBool`s checked each pass, so wake latency
//!   is bounded by the 1 ms scan slice rather than being instantaneous.

use crate::{Event, Interest, Token};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use super::Probe;

/// How long the scan sleeps between passes when nothing is ready.
const SCAN_SLICE: Duration = Duration::from_millis(1);

#[derive(Debug)]
struct Entry {
    probe: Probe,
    interest: Interest,
}

#[derive(Debug, Default)]
struct State {
    sources: HashMap<usize, Entry>,
    wakers: Vec<(usize, Arc<AtomicBool>)>,
}

#[derive(Debug, Default)]
pub(crate) struct ScanSelector {
    state: Mutex<State>,
}

impl ScanSelector {
    pub(crate) fn new() -> ScanSelector {
        ScanSelector::default()
    }

    pub(crate) fn register(
        &self,
        probe: Probe,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        if st
            .sources
            .insert(token.0, Entry { probe, interest })
            .is_some()
        {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "token already registered",
            ));
        }
        Ok(())
    }

    pub(crate) fn reregister(&self, token: Token, interest: Interest) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        match st.sources.get_mut(&token.0) {
            Some(entry) => {
                entry.interest = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "token not registered",
            )),
        }
    }

    pub(crate) fn deregister(&self, token: Token) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        match st.sources.remove(&token.0) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "token not registered",
            )),
        }
    }

    pub(crate) fn make_waker(&self, token: Token) -> FlagWaker {
        let flag = Arc::new(AtomicBool::new(false));
        self.state
            .lock()
            .unwrap()
            .wakers
            .push((token.0, Arc::clone(&flag)));
        FlagWaker { flag }
    }

    pub(crate) fn select(
        &self,
        events: &mut Vec<Event>,
        cap: usize,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            let mut listener_tokens = Vec::new();
            {
                let st = self.state.lock().unwrap();
                for (&token, flag) in st.wakers.iter().map(|(t, f)| (t, f)) {
                    if flag.swap(false, Ordering::AcqRel) {
                        events.push(Event::new(Token(token), true, false, false, false));
                    }
                }
                for (&token, entry) in &st.sources {
                    if events.len() >= cap {
                        break;
                    }
                    match &entry.probe {
                        Probe::Stream(s) => {
                            let mut readable = false;
                            let mut closed = false;
                            let mut error = false;
                            if entry.interest.is_readable() {
                                let mut byte = [0u8; 1];
                                match s.peek(&mut byte) {
                                    Ok(0) => {
                                        readable = true;
                                        closed = true;
                                    }
                                    Ok(_) => readable = true,
                                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                                    Err(_) => {
                                        readable = true;
                                        error = true;
                                    }
                                }
                            }
                            let writable = entry.interest.is_writable();
                            if readable || writable {
                                events.push(Event::new(
                                    Token(token),
                                    readable,
                                    writable,
                                    closed,
                                    error,
                                ));
                            }
                        }
                        Probe::Listener => listener_tokens.push((token, entry.interest)),
                        Probe::Always => {
                            events.push(Event::new(
                                Token(token),
                                entry.interest.is_readable(),
                                entry.interest.is_writable(),
                                false,
                                false,
                            ));
                        }
                    }
                }
            }
            let expired = deadline.map(|d| Instant::now() >= d).unwrap_or(false);
            if !events.is_empty() || expired {
                // Listeners ride along on every delivery (and on pure
                // timeouts) so accepts are never starved; they never
                // keep the loop spinning on their own.
                for (token, interest) in listener_tokens {
                    if events.len() >= cap {
                        break;
                    }
                    if interest.is_readable() {
                        events.push(Event::new(Token(token), true, false, false, false));
                    }
                }
                return Ok(());
            }
            let nap = match deadline {
                Some(d) => SCAN_SLICE.min(d.saturating_duration_since(Instant::now())),
                None => SCAN_SLICE,
            };
            std::thread::sleep(nap);
        }
    }
}

/// An `AtomicBool` waker: `wake` sets the flag; the next scan pass
/// (≤ 1 ms away) observes and clears it.
#[derive(Debug)]
pub(crate) struct FlagWaker {
    flag: Arc<AtomicBool>,
}

impl FlagWaker {
    pub(crate) fn wake(&self) -> io::Result<()> {
        self.flag.store(true, Ordering::Release);
        Ok(())
    }
}

//! Nonblocking TCP wrappers registerable with [`crate::Poll`].
//!
//! Deviation from upstream mio: [`TcpStream::connect`] performs a
//! blocking `std` connect and then flips the socket nonblocking
//! (`std::net` exposes no in-progress connect without libc). Pocolo's
//! reactor only accepts — its clients connect from plain blocking
//! code — so nothing here waits on `is_writable` to finish a connect.

use crate::{sys::Probe, Source};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr};
use std::time::Duration;

/// A nonblocking listener; `accept` returns `WouldBlock` when no
/// connection is pending.
#[derive(Debug)]
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Binds and switches the listener nonblocking.
    pub fn bind(addr: SocketAddr) -> io::Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// Accepts one pending connection, returned already nonblocking.
    pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        let (stream, addr) = self.inner.accept()?;
        stream.set_nonblocking(true)?;
        Ok((TcpStream { inner: stream }, addr))
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

impl Source for TcpListener {
    #[cfg(unix)]
    fn raw_fd(&self) -> std::os::unix::io::RawFd {
        std::os::unix::io::AsRawFd::as_raw_fd(&self.inner)
    }

    fn probe(&self) -> io::Result<Probe> {
        Ok(Probe::Listener)
    }
}

/// A nonblocking stream; reads and writes return `WouldBlock` instead
/// of blocking.
#[derive(Debug)]
pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl TcpStream {
    /// Connects (blocking — see module docs) then switches nonblocking.
    pub fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
        Self::from_std(std::net::TcpStream::connect(addr)?)
    }

    /// Connects with a timeout, then switches nonblocking.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
        Self::from_std(std::net::TcpStream::connect_timeout(addr, timeout)?)
    }

    /// Wraps an already-connected std stream, switching it nonblocking.
    pub fn from_std(inner: std::net::TcpStream) -> io::Result<TcpStream> {
        inner.set_nonblocking(true)?;
        Ok(TcpStream { inner })
    }

    /// Disables (or re-enables) Nagle batching.
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    /// The peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// The local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Shuts down one or both halves.
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        self.inner.shutdown(how)
    }
}

impl Read for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Write for TcpStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Source for TcpStream {
    #[cfg(unix)]
    fn raw_fd(&self) -> std::os::unix::io::RawFd {
        std::os::unix::io::AsRawFd::as_raw_fd(&self.inner)
    }

    fn probe(&self) -> io::Result<Probe> {
        Ok(Probe::Stream(self.inner.try_clone()?))
    }
}

//! Offline stand-in for the `mio` crate.
//!
//! The build environment has no network access to crates.io, so this
//! crate vendors the slice of the mio 0.8 API that Pocolo's reactor
//! uses: [`Poll`] / [`Token`] / [`Interest`] / [`Events`] readiness
//! polling, a cross-thread [`Waker`], and nonblocking [`net::TcpListener`]
//! / [`net::TcpStream`] wrappers.
//!
//! Two backends, chosen at compile time:
//!
//! - **epoll** (Linux on x86_64/aarch64): level-triggered `epoll(7)`
//!   driven by raw syscalls (`core::arch::asm!`), since the workspace
//!   vendors no `libc`. The [`Waker`] is an `eventfd(2)`, drained
//!   automatically when its event is delivered. One syscall wakes the
//!   loop regardless of how many sources are registered — readiness
//!   multiplexing instead of one blocked reader per fd.
//! - **scan fallback** (everything else): a portable level-triggered
//!   emulation that probes each registered socket with a nonblocking
//!   `peek` on a 1 ms cadence. Listeners cannot be probed without
//!   accepting, so they are reported ready whenever the scan returns;
//!   callers must treat `WouldBlock` from `accept` as normal. The
//!   fallback trades syscalls-per-wakeup for portability — it is
//!   correct, just not fast.
//!
//! Deviations from upstream mio (documented, deliberate):
//! [`net::TcpStream::connect`] performs a *blocking* `std` connect and
//! then flips the socket nonblocking (std offers no nonblocking connect
//! without libc); registration takes `&self` sources; and event sources
//! are probed via [`Source`], which the fallback uses to clone a probe
//! handle.

#![warn(missing_docs)]

pub mod net;
mod sys;

use std::io;
use std::time::Duration;

/// Identifier tying a readiness event back to its registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combines two interests (const-friendly `|`).
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// True when read readiness is requested.
    pub const fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// True when write readiness is requested.
    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;

    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness event delivered by [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    closed: bool,
    error: bool,
}

impl Event {
    pub(crate) fn new(
        token: Token,
        readable: bool,
        writable: bool,
        closed: bool,
        error: bool,
    ) -> Event {
        Event {
            token,
            readable,
            writable,
            closed,
            error,
        }
    }

    /// The token the source was registered under.
    pub fn token(&self) -> Token {
        self.token
    }

    /// True when the source is read-ready (includes EOF and errors, which
    /// a read will surface).
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// True when the source is write-ready.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// True when the peer closed its write half (RDHUP/HUP).
    pub fn is_read_closed(&self) -> bool {
        self.closed
    }

    /// True when the source is in an error state.
    pub fn is_error(&self) -> bool {
        self.error
    }
}

/// A batch of events filled by one [`Poll::poll`] call.
#[derive(Debug)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// An empty batch that will deliver at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterates the delivered events.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// True when the last poll delivered nothing (pure timeout).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// A registerable event source. Implemented by the [`net`] wrappers.
pub trait Source {
    /// Raw OS handle, used by the epoll backend.
    #[cfg(unix)]
    fn raw_fd(&self) -> std::os::unix::io::RawFd;

    /// A cloned probe handle, used by the portable scan fallback.
    fn probe(&self) -> io::Result<sys::Probe>;
}

/// The readiness selector: register sources, then block in
/// [`Poll::poll`] until one is ready or the timeout passes.
#[derive(Debug)]
pub struct Poll {
    sys: sys::Selector,
}

impl Poll {
    /// A selector on the best backend for this platform.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            sys: sys::Selector::new()?,
        })
    }

    /// A selector forced onto the portable scan fallback. Exposed so the
    /// fallback stays tested on platforms whose default is epoll.
    pub fn new_fallback() -> io::Result<Poll> {
        Ok(Poll {
            sys: sys::Selector::new_fallback()?,
        })
    }

    /// Registers `source` for `interest`, delivering events as `token`.
    pub fn register<S: Source>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.sys.register(source, token, interest)
    }

    /// Changes the interest set of an already-registered source.
    pub fn reregister<S: Source>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.sys.reregister(source, token, interest)
    }

    /// Removes a source; no further events are delivered for it.
    pub fn deregister<S: Source>(&self, source: &S, token: Token) -> io::Result<()> {
        self.sys.deregister(source, token)
    }

    /// Blocks until at least one event is ready or `timeout` passes
    /// (`None` blocks indefinitely). Delivered events replace the
    /// previous contents of `events`.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.inner.clear();
        let cap = events.capacity;
        self.sys.select(&mut events.inner, cap, timeout)
    }
}

/// Cross-thread wakeup: calling [`Waker::wake`] makes the associated
/// [`Poll`] return promptly with an event carrying the waker's token.
#[derive(Debug)]
pub struct Waker {
    inner: sys::WakerImpl,
}

impl Waker {
    /// A waker delivering `token` through `poll`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        Ok(Waker {
            inner: poll.sys.make_waker(token)?,
        })
    }

    /// Wakes the poll loop. Cheap, non-blocking, callable from any thread.
    pub fn wake(&self) -> io::Result<()> {
        self.inner.wake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::sync::Arc;

    const LISTENER: Token = Token(0);
    const WAKER: Token = Token(1);
    const CONN: Token = Token(2);

    fn echo_roundtrip(mut poll: Poll) {
        let listener = net::TcpListener::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        poll.register(&listener, LISTENER, Interest::READABLE)
            .unwrap();
        let addr = listener.local_addr().unwrap();

        // A plain blocking std client on the far side.
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        client.write_all(b"ping").unwrap();

        let mut events = Events::with_capacity(8);
        let mut server_conn: Option<net::TcpStream> = None;
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.len() < 4 {
            assert!(std::time::Instant::now() < deadline, "echo timed out");
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            for ev in &events {
                match ev.token() {
                    LISTENER => {
                        // Accept until drained; the fallback backend
                        // reports listeners ready speculatively.
                        while let Ok((stream, _)) = listener.accept() {
                            poll.register(&stream, CONN, Interest::READABLE).unwrap();
                            server_conn = Some(stream);
                        }
                    }
                    CONN => {
                        let conn = server_conn.as_mut().unwrap();
                        let mut buf = [0u8; 16];
                        loop {
                            match conn.read(&mut buf) {
                                Ok(0) => break,
                                Ok(n) => got.extend_from_slice(&buf[..n]),
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                Err(e) => panic!("read: {e}"),
                            }
                        }
                    }
                    other => panic!("unexpected token {other:?}"),
                }
            }
        }
        assert_eq!(&got, b"ping");
    }

    #[test]
    fn readiness_echo_default_backend() {
        echo_roundtrip(Poll::new().unwrap());
    }

    #[test]
    fn readiness_echo_fallback_backend() {
        echo_roundtrip(Poll::new_fallback().unwrap());
    }

    fn waker_unblocks(mut poll: Poll) {
        let waker = Arc::new(Waker::new(&poll, WAKER).unwrap());
        let w = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake().unwrap();
        });
        let mut events = Events::with_capacity(4);
        let start = std::time::Instant::now();
        let mut woke = false;
        while start.elapsed() < Duration::from_secs(5) && !woke {
            poll.poll(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            woke = events.iter().any(|e| e.token() == WAKER);
        }
        assert!(woke, "waker event never arrived");
        t.join().unwrap();
        // A drained waker does not re-fire spuriously.
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(
            events.iter().all(|e| e.token() != WAKER),
            "waker re-fired without a wake()"
        );
    }

    #[test]
    fn waker_unblocks_default_backend() {
        waker_unblocks(Poll::new().unwrap());
    }

    #[test]
    fn waker_unblocks_fallback_backend() {
        waker_unblocks(Poll::new_fallback().unwrap());
    }

    #[test]
    fn write_interest_is_delivered() {
        let mut poll = Poll::new().unwrap();
        let listener = net::TcpListener::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = net::TcpStream::connect(addr).unwrap();
        poll.register(&client, CONN, Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(4);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            assert!(std::time::Instant::now() < deadline, "no writable event");
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token() == CONN && e.is_writable()) {
                break;
            }
        }
        // Dropping write interest stops writable events.
        poll.reregister(&client, CONN, Interest::READABLE).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events
            .iter()
            .all(|e| !(e.token() == CONN && e.is_writable())));
        poll.deregister(&client, CONN).unwrap();
    }

    #[test]
    fn interest_combinators() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
        assert_eq!(
            Interest::READABLE.add(Interest::WRITABLE),
            Interest::WRITABLE | Interest::READABLE
        );
    }

    #[test]
    fn timeout_returns_empty() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let start = std::time::Instant::now();
        poll.poll(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }
}

//! The simulated server: two tenant slots with isolation enforcement.

use pocolo_core::units::{Frequency, Watts};

use crate::error::SimError;
use crate::knobs::{CoreSet, TenantAllocation, TenantRole, WayMask};
use crate::machine::MachineSpec;

/// A server hosting one primary (latency-critical) tenant and at most one
/// secondary (best-effort) tenant, with a provisioned power cap.
///
/// Mirrors the paper's prototype: core pinning and CAT way partitioning
/// enforce isolation on direct resources; the power cap is the right-sized
/// provisioned capacity that both tenants must jointly respect.
///
/// ```
/// use pocolo_simserver::{SimServer, MachineSpec, TenantAllocation,
///                        TenantRole, CoreSet, WayMask};
/// use pocolo_core::units::{Frequency, Watts};
///
/// # fn main() -> Result<(), pocolo_simserver::SimError> {
/// let mut server = SimServer::new(MachineSpec::xeon_e5_2650(), Watts(132.0));
/// let lc = TenantAllocation::new(CoreSet::first_n(2), WayMask::first_n(4),
///                                Frequency(2.2));
/// server.install(TenantRole::Primary, lc)?;
/// let (cores, ways) = server.spare_capacity();
/// assert_eq!(cores.count(), 10);
/// assert_eq!(ways.count(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimServer {
    machine: MachineSpec,
    power_cap: Watts,
    primary: Option<TenantAllocation>,
    secondary: Option<TenantAllocation>,
}

impl SimServer {
    /// Creates a server with a provisioned power cap.
    pub fn new(machine: MachineSpec, power_cap: Watts) -> Self {
        SimServer {
            machine,
            power_cap,
            primary: None,
            secondary: None,
        }
    }

    /// The machine specification.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// The provisioned power capacity this server must stay under.
    pub fn power_cap(&self) -> Watts {
        self.power_cap
    }

    /// Re-provisions the power cap (used by TCO what-if analyses).
    pub fn set_power_cap(&mut self, cap: Watts) {
        self.power_cap = cap;
    }

    /// The allocation of the tenant in `role`, if installed.
    pub fn allocation(&self, role: TenantRole) -> Option<&TenantAllocation> {
        match role {
            TenantRole::Primary => self.primary.as_ref(),
            TenantRole::Secondary => self.secondary.as_ref(),
        }
    }

    /// Installs (or replaces) the tenant in `role` with `alloc`.
    ///
    /// # Errors
    ///
    /// - Knob validation errors from [`TenantAllocation::validate`].
    /// - [`SimError::OverlappingAllocation`] if the allocation shares a core
    ///   or way with the other tenant.
    pub fn install(&mut self, role: TenantRole, alloc: TenantAllocation) -> Result<(), SimError> {
        alloc.validate(&self.machine)?;
        let other = match role {
            TenantRole::Primary => self.secondary.as_ref(),
            TenantRole::Secondary => self.primary.as_ref(),
        };
        if let Some(other) = other {
            if !alloc.is_disjoint_from(other) {
                return Err(SimError::OverlappingAllocation(format!(
                    "{role} allocation {alloc} overlaps the other tenant's {other}"
                )));
            }
        }
        match role {
            TenantRole::Primary => self.primary = Some(alloc),
            TenantRole::Secondary => self.secondary = Some(alloc),
        }
        Ok(())
    }

    /// Removes the tenant in `role`, returning its allocation if present.
    pub fn evict(&mut self, role: TenantRole) -> Option<TenantAllocation> {
        match role {
            TenantRole::Primary => self.primary.take(),
            TenantRole::Secondary => self.secondary.take(),
        }
    }

    /// Cores and ways not reserved by any tenant.
    pub fn spare_capacity(&self) -> (CoreSet, WayMask) {
        let all_cores = CoreSet::first_n(self.machine.cores());
        let all_ways = WayMask::first_n(self.machine.llc_ways());
        let mut used_cores = 0u64;
        let mut used_ways = 0u32;
        for t in [&self.primary, &self.secondary].into_iter().flatten() {
            used_cores |= t.cores.bits();
            used_ways |= t.ways.bits();
        }
        let spare_cores = CoreSet::first_n(self.machine.cores());
        let spare_ways = WayMask::first_n(self.machine.llc_ways());
        // Mask out used bits while staying within hardware.
        let cores = spare_cores.bits() & all_cores.bits() & !used_cores;
        let ways = spare_ways.bits() & all_ways.bits() & !used_ways;
        (core_set_from_bits(cores), way_mask_from_bits(ways))
    }

    /// Changes the DVFS frequency of the tenant in `role`.
    ///
    /// The frequency is clamped into the machine's range, modelling the
    /// governor's behaviour when asked for an out-of-range value.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchTenant`] if the slot is empty.
    pub fn set_frequency(&mut self, role: TenantRole, freq: Frequency) -> Result<(), SimError> {
        let clamped = self.machine.clamp_frequency(freq);
        let slot = match role {
            TenantRole::Primary => self.primary.as_mut(),
            TenantRole::Secondary => self.secondary.as_mut(),
        };
        match slot {
            Some(t) => {
                t.frequency = clamped;
                Ok(())
            }
            None => Err(SimError::NoSuchTenant(role.as_str())),
        }
    }

    /// Changes the CPU-time quota of the tenant in `role`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidKnob`] for a quota outside `(0, 1]` and
    /// [`SimError::NoSuchTenant`] if the slot is empty.
    pub fn set_quota(&mut self, role: TenantRole, quota: f64) -> Result<(), SimError> {
        if !(quota > 0.0 && quota <= 1.0) {
            return Err(SimError::InvalidKnob(format!(
                "cpu quota {quota} outside (0, 1]"
            )));
        }
        let slot = match role {
            TenantRole::Primary => self.primary.as_mut(),
            TenantRole::Secondary => self.secondary.as_mut(),
        };
        match slot {
            Some(t) => {
                t.cpu_quota = quota;
                Ok(())
            }
            None => Err(SimError::NoSuchTenant(role.as_str())),
        }
    }
}

fn core_set_from_bits(bits: u64) -> CoreSet {
    CoreSet::from_bits(bits)
}

fn way_mask_from_bits(bits: u32) -> WayMask {
    // Spare ways may legitimately be non-contiguous (tenants can hold the
    // middle); spare masks are only queried, never installed, so contiguity
    // is re-validated at install time.
    WayMask::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> SimServer {
        SimServer::new(MachineSpec::xeon_e5_2650(), Watts(132.0))
    }

    fn alloc(core_start: u32, cores: u32, way_start: u32, ways: u32) -> TenantAllocation {
        TenantAllocation::new(
            CoreSet::range(core_start, cores),
            WayMask::range(way_start, ways),
            Frequency(2.2),
        )
    }

    #[test]
    fn install_and_query() {
        let mut s = server();
        assert!(s.allocation(TenantRole::Primary).is_none());
        s.install(TenantRole::Primary, alloc(0, 4, 0, 8)).unwrap();
        assert_eq!(s.allocation(TenantRole::Primary).unwrap().cores.count(), 4);
        assert_eq!(s.power_cap(), Watts(132.0));
    }

    #[test]
    fn overlap_rejected() {
        let mut s = server();
        s.install(TenantRole::Primary, alloc(0, 4, 0, 8)).unwrap();
        // Overlapping cores.
        assert!(matches!(
            s.install(TenantRole::Secondary, alloc(3, 4, 8, 8)),
            Err(SimError::OverlappingAllocation(_))
        ));
        // Overlapping ways.
        assert!(matches!(
            s.install(TenantRole::Secondary, alloc(4, 4, 7, 8)),
            Err(SimError::OverlappingAllocation(_))
        ));
        // Disjoint is fine.
        assert!(s.install(TenantRole::Secondary, alloc(4, 4, 8, 8)).is_ok());
    }

    #[test]
    fn replace_primary_checks_against_secondary() {
        let mut s = server();
        s.install(TenantRole::Primary, alloc(0, 4, 0, 8)).unwrap();
        s.install(TenantRole::Secondary, alloc(4, 4, 8, 8)).unwrap();
        // Growing the primary into the secondary's cores fails.
        assert!(s.install(TenantRole::Primary, alloc(0, 6, 0, 8)).is_err());
        // Growing within free space succeeds.
        assert!(s.install(TenantRole::Primary, alloc(0, 4, 0, 8)).is_ok());
    }

    #[test]
    fn spare_capacity_shrinks_with_tenants() {
        let mut s = server();
        let (c, w) = s.spare_capacity();
        assert_eq!(c.count(), 12);
        assert_eq!(w.count(), 20);
        s.install(TenantRole::Primary, alloc(0, 4, 0, 8)).unwrap();
        let (c, w) = s.spare_capacity();
        assert_eq!(c.count(), 8);
        assert_eq!(w.count(), 12);
        s.install(TenantRole::Secondary, alloc(4, 8, 8, 12))
            .unwrap();
        let (c, w) = s.spare_capacity();
        assert_eq!(c.count(), 0);
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn evict_frees_resources() {
        let mut s = server();
        s.install(TenantRole::Primary, alloc(0, 4, 0, 8)).unwrap();
        let evicted = s.evict(TenantRole::Primary).unwrap();
        assert_eq!(evicted.cores.count(), 4);
        assert!(s.evict(TenantRole::Primary).is_none());
        let (c, _) = s.spare_capacity();
        assert_eq!(c.count(), 12);
    }

    #[test]
    fn set_frequency_clamps() {
        let mut s = server();
        s.install(TenantRole::Primary, alloc(0, 4, 0, 8)).unwrap();
        s.set_frequency(TenantRole::Primary, Frequency(5.0))
            .unwrap();
        assert_eq!(
            s.allocation(TenantRole::Primary).unwrap().frequency,
            Frequency(2.2)
        );
        s.set_frequency(TenantRole::Primary, Frequency(0.1))
            .unwrap();
        assert_eq!(
            s.allocation(TenantRole::Primary).unwrap().frequency,
            Frequency(1.2)
        );
        assert!(matches!(
            s.set_frequency(TenantRole::Secondary, Frequency(2.0)),
            Err(SimError::NoSuchTenant(_))
        ));
    }

    #[test]
    fn set_quota_validates() {
        let mut s = server();
        s.install(TenantRole::Secondary, alloc(0, 4, 0, 8)).unwrap();
        s.set_quota(TenantRole::Secondary, 0.5).unwrap();
        assert_eq!(s.allocation(TenantRole::Secondary).unwrap().cpu_quota, 0.5);
        assert!(s.set_quota(TenantRole::Secondary, 0.0).is_err());
        assert!(s.set_quota(TenantRole::Secondary, 1.1).is_err());
        assert!(matches!(
            s.set_quota(TenantRole::Primary, 0.5),
            Err(SimError::NoSuchTenant(_))
        ));
    }

    #[test]
    fn power_cap_can_be_reprovisioned() {
        let mut s = server();
        s.set_power_cap(Watts(185.0));
        assert_eq!(s.power_cap(), Watts(185.0));
    }
}

//! Ground-truth power simulation and the (noisy) power meter.
//!
//! Server power is modelled as idle power plus each tenant's draw. A
//! tenant's draw depends on its allocation, its DVFS frequency, its CPU
//! quota, its utilization, and application-specific *power intensity*
//! coefficients — compute-bound trainers and cache-thrashing analytics pull
//! very different watts from the same allocation, which is exactly the
//! effect Pocolo exploits.
//!
//! The model is *approximately* linear in (cores, ways) — as the paper's
//! fitted linear power model assumes — but includes a superlinear DVFS term
//! (`(f/f_max)^γ`, γ ≈ 2.4) and a utilization-dependent cache term, so
//! fitted R² lands in the paper's 0.8–0.98 band rather than at 1.0.

use pocolo_core::units::Watts;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::knobs::TenantAllocation;
use crate::machine::MachineSpec;

/// Application-specific power coefficients: how hard this application
/// drives each resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerIntensity {
    /// Watts drawn by one fully-utilized core at maximum frequency.
    pub core_watts: f64,
    /// Watts drawn per actively-used LLC way.
    pub way_watts: f64,
    /// Additional uncore/DRAM watts while the application is active.
    pub uncore_watts: f64,
    /// DVFS exponent γ in `P_dyn ∝ (f/f_max)^γ`.
    pub freq_exponent: f64,
}

impl PowerIntensity {
    /// A balanced default: 6 W/core, 1.2 W/way, 4 W uncore, γ = 2.4.
    pub fn balanced() -> Self {
        PowerIntensity {
            core_watts: 6.0,
            way_watts: 1.2,
            uncore_watts: 4.0,
            freq_exponent: 2.4,
        }
    }

    /// Compute-heavy profile (deep-learning training, compression).
    pub fn compute_heavy() -> Self {
        PowerIntensity {
            core_watts: 7.5,
            way_watts: 0.8,
            uncore_watts: 3.0,
            freq_exponent: 2.6,
        }
    }

    /// Memory/cache-heavy profile (graph analytics, search leaf nodes).
    pub fn cache_heavy() -> Self {
        PowerIntensity {
            core_watts: 5.0,
            way_watts: 1.8,
            uncore_watts: 6.0,
            freq_exponent: 2.2,
        }
    }
}

/// Ground-truth model of a server's power draw.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerDrawModel {
    machine: MachineSpec,
}

impl PowerDrawModel {
    /// Creates the power model for a machine.
    pub fn new(machine: MachineSpec) -> Self {
        PowerDrawModel { machine }
    }

    /// The machine this model describes.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// Power drawn by one tenant given its allocation, utilization (fraction
    /// of its allocated capacity it is actually using, in `[0, 1]`) and
    /// power intensity.
    ///
    /// The CPU quota scales the effective busy time of the tenant's cores;
    /// frequency scales dynamic power superlinearly.
    pub fn tenant_power(
        &self,
        intensity: &PowerIntensity,
        alloc: &TenantAllocation,
        utilization: f64,
    ) -> Watts {
        let util = utilization.clamp(0.0, 1.0);
        let busy = util * alloc.cpu_quota.clamp(0.0, 1.0);
        let f_frac = alloc.frequency.fraction_of(self.machine.freq_max());
        let dvfs = f_frac.powf(intensity.freq_exponent);
        let core_p = intensity.core_watts * alloc.cores.count() as f64 * busy * dvfs;
        // Cache ways leak a little even when idle (0.25 of their active
        // power) and draw fully only when the tenant is busy.
        let way_p = intensity.way_watts * alloc.ways.count() as f64 * (0.25 + 0.75 * busy);
        let uncore_p = intensity.uncore_watts * busy;
        Watts(core_p + way_p + uncore_p)
    }

    /// Total server power: idle power plus each tenant's draw.
    pub fn server_power<I>(&self, tenant_draws: I) -> Watts
    where
        I: IntoIterator<Item = Watts>,
    {
        self.machine.idle_power() + tenant_draws.into_iter().sum()
    }

    /// Splits a measured server power among tenants in proportion to their
    /// dynamic draws, apportioning the static/idle power by core count — the
    /// "power containers" accounting of the paper's §IV-A (ref \[27\]).
    ///
    /// Returns one apportioned reading per entry of `tenants`, in order.
    pub fn apportion(&self, measured: Watts, tenants: &[(TenantAllocation, Watts)]) -> Vec<Watts> {
        if tenants.is_empty() {
            return Vec::new();
        }
        let dynamic_total: Watts = tenants.iter().map(|(_, d)| *d).sum();
        let static_power = (measured - dynamic_total).max(Watts::ZERO);
        let total_cores: u32 = tenants.iter().map(|(a, _)| a.cores.count()).sum();
        tenants
            .iter()
            .map(|(a, d)| {
                let share = if total_cores > 0 {
                    a.cores.count() as f64 / total_cores as f64
                } else {
                    1.0 / tenants.len() as f64
                };
                *d + static_power * share
            })
            .collect()
    }
}

/// A socket power meter with bounded multiplicative sampling noise,
/// standing in for the Xeon's socket/DRAM power meter.
#[derive(Debug)]
pub struct PowerMeter {
    rng: StdRng,
    noise: f64,
    last: Option<Watts>,
}

impl PowerMeter {
    /// Creates a meter with `noise` relative error (e.g. `0.02` = ±2 %),
    /// seeded deterministically for reproducible simulations.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is negative or ≥ 1.
    pub fn new(noise: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&noise), "noise must be in [0, 1)");
        PowerMeter {
            rng: StdRng::seed_from_u64(seed),
            noise,
            last: None,
        }
    }

    /// An ideal meter with no noise.
    pub fn ideal() -> Self {
        PowerMeter::new(0.0, 0)
    }

    /// Samples the meter against the true power, returning the noisy
    /// reading and remembering it.
    pub fn sample(&mut self, true_power: Watts) -> Watts {
        let eps = if self.noise > 0.0 {
            self.rng.gen_range(-self.noise..=self.noise)
        } else {
            0.0
        };
        let reading = Watts((true_power.0 * (1.0 + eps)).max(0.0));
        self.last = Some(reading);
        reading
    }

    /// The most recent reading, if the meter has ever been sampled.
    pub fn last_reading(&self) -> Option<Watts> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::{CoreSet, WayMask};
    use pocolo_core::units::Frequency;

    fn model() -> PowerDrawModel {
        PowerDrawModel::new(MachineSpec::xeon_e5_2650())
    }

    fn alloc(cores: u32, ways: u32, freq: f64) -> TenantAllocation {
        TenantAllocation::new(
            CoreSet::first_n(cores),
            WayMask::first_n(ways),
            Frequency(freq),
        )
    }

    #[test]
    fn idle_tenant_draws_only_way_leakage() {
        let m = model();
        let a = alloc(4, 8, 2.2);
        let p = m.tenant_power(&PowerIntensity::balanced(), &a, 0.0);
        // Only the 25 % way leakage: 1.2 * 8 * 0.25 = 2.4 W.
        assert!((p.0 - 2.4).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn full_utilization_at_max_freq() {
        let m = model();
        let a = alloc(12, 20, 2.2);
        let i = PowerIntensity::balanced();
        let p = m.tenant_power(&i, &a, 1.0);
        // cores 6*12 + ways 1.2*20 + uncore 4 = 100 W dynamic.
        assert!((p.0 - 100.0).abs() < 1e-9, "got {p}");
        // Full server ~ 150 W, in the ballpark of Table I's 135 W active.
        let total = m.server_power([p]);
        assert!(total.0 > 135.0 && total.0 < 160.0, "total {total}");
    }

    #[test]
    fn power_scales_superlinearly_with_frequency() {
        let m = model();
        let i = PowerIntensity::balanced();
        let hi = m.tenant_power(&i, &alloc(8, 1, 2.2), 1.0);
        let lo = m.tenant_power(&i, &alloc(8, 1, 1.2), 1.0);
        let core_hi = hi.0 - 1.2 - 4.0; // strip way + uncore
        let core_lo = lo.0 - 1.2 - 4.0;
        let ratio = core_hi / core_lo;
        let linear_ratio = 2.2 / 1.2;
        assert!(
            ratio > linear_ratio,
            "DVFS power should be superlinear: {ratio} <= {linear_ratio}"
        );
    }

    #[test]
    fn quota_throttles_power() {
        let m = model();
        let i = PowerIntensity::balanced();
        let mut a = alloc(8, 8, 2.2);
        let full = m.tenant_power(&i, &a, 1.0);
        a.cpu_quota = 0.5;
        let half = m.tenant_power(&i, &a, 1.0);
        assert!(half < full);
        assert!(half.0 > full.0 * 0.4, "ways still leak when throttled");
    }

    #[test]
    fn utilization_is_clamped() {
        let m = model();
        let i = PowerIntensity::balanced();
        let a = alloc(4, 4, 2.2);
        assert_eq!(m.tenant_power(&i, &a, 1.5), m.tenant_power(&i, &a, 1.0));
        assert_eq!(m.tenant_power(&i, &a, -0.5), m.tenant_power(&i, &a, 0.0));
    }

    #[test]
    fn server_power_adds_idle() {
        let m = model();
        let total = m.server_power([Watts(30.0), Watts(20.0)]);
        assert_eq!(total, Watts(100.0));
        assert_eq!(m.server_power([]), Watts(50.0));
    }

    #[test]
    fn intensities_differ_between_profiles() {
        let m = model();
        let a = alloc(8, 8, 2.2);
        let compute = m.tenant_power(&PowerIntensity::compute_heavy(), &a, 1.0);
        let cache = m.tenant_power(&PowerIntensity::cache_heavy(), &a, 1.0);
        assert_ne!(compute, cache);
    }

    #[test]
    fn apportion_splits_static_by_cores() {
        let m = model();
        let a = alloc(9, 10, 2.2);
        let b = alloc(3, 10, 2.2);
        let out = m.apportion(Watts(110.0), &[(a, Watts(40.0)), (b, Watts(20.0))]);
        // Static = 110 - 60 = 50; a gets 75 % (9/12 cores), b 25 %.
        assert!((out[0].0 - (40.0 + 37.5)).abs() < 1e-9);
        assert!((out[1].0 - (20.0 + 12.5)).abs() < 1e-9);
        // Conservation.
        assert!((out.iter().map(|w| w.0).sum::<f64>() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn apportion_handles_empty_and_overdraw() {
        let m = model();
        assert!(m.apportion(Watts(100.0), &[]).is_empty());
        // Measured below dynamic sum: static floors at zero.
        let a = alloc(6, 10, 2.2);
        let out = m.apportion(Watts(10.0), &[(a, Watts(40.0))]);
        assert_eq!(out[0], Watts(40.0));
    }

    #[test]
    fn meter_noise_is_bounded_and_deterministic() {
        let mut m1 = PowerMeter::new(0.02, 99);
        let mut m2 = PowerMeter::new(0.02, 99);
        for _ in 0..100 {
            let r1 = m1.sample(Watts(100.0));
            let r2 = m2.sample(Watts(100.0));
            assert_eq!(r1, r2, "same seed, same readings");
            assert!(r1.0 >= 98.0 && r1.0 <= 102.0, "reading {r1} out of band");
        }
        assert_eq!(m1.last_reading(), m2.last_reading());
    }

    #[test]
    fn ideal_meter_is_exact() {
        let mut m = PowerMeter::ideal();
        assert_eq!(m.sample(Watts(123.4)), Watts(123.4));
    }

    #[test]
    #[should_panic(expected = "noise must be in")]
    fn meter_rejects_bad_noise() {
        let _ = PowerMeter::new(1.5, 0);
    }
}

//! The P² (piecewise-parabolic) streaming quantile estimator
//! (Jain & Chlamtac, CACM 1985).
//!
//! Production telemetry systems track p95/p99 tail latency over unbounded
//! streams without storing samples. The P² algorithm maintains five markers
//! whose positions are nudged toward the ideal quantile positions with
//! parabolic interpolation — O(1) memory, O(1) per sample.

/// A streaming estimator for a single quantile `q ∈ (0, 1)`.
///
/// ```
/// use pocolo_simserver::p2::P2Quantile;
/// let mut est = P2Quantile::new(0.5);
/// for i in 1..=1000 {
///     est.observe(i as f64);
/// }
/// let median = est.estimate().unwrap();
/// assert!((median - 500.0).abs() < 25.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimated values).
    heights: [f64; 5],
    /// Marker positions (1-based sample ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Samples seen so far.
    count: usize,
    /// Initial buffer until five samples arrive.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The tracked quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of samples observed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return; // telemetry is best-effort; skip garbage
        }
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                for (h, &v) in self.heights.iter_mut().zip(&self.initial) {
                    *h = v;
                }
            }
            return;
        }

        // Find the cell k containing x and clamp the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let sign = d.signum();
                let candidate = self.parabolic(i, sign);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, sign)
                    };
                self.heights[i] = new_height;
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate, or `None` before any sample arrives. With five or
    /// fewer samples the exact sorted-sample quantile is returned — the
    /// marker heights are only initial positions until the first P²
    /// adjustment runs, so reporting the middle marker at exactly five
    /// samples would answer every `q` with the median.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count <= 5 {
            let mut sorted = self.initial.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            return Some(crate::telemetry::percentile_of_sorted(&sorted, self.q));
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn exact_quantile(samples: &mut [f64], q: f64) -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        crate::telemetry::percentile_of_sorted(samples, q)
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut est = P2Quantile::new(0.5);
        let mut all = Vec::new();
        for _ in 0..20_000 {
            let x: f64 = rng.gen_range(0.0..100.0);
            est.observe(x);
            all.push(x);
        }
        let exact = exact_quantile(&mut all, 0.5);
        let got = est.estimate().unwrap();
        assert!(
            (got - exact).abs() < 2.0,
            "p50 estimate {got} vs exact {exact}"
        );
    }

    #[test]
    fn p99_of_skewed_stream() {
        // Latency-like: lognormal-ish via exp of normal approximated by sum
        // of uniforms.
        let mut rng = StdRng::seed_from_u64(2);
        let mut est = P2Quantile::new(0.99);
        let mut all = Vec::new();
        for _ in 0..50_000 {
            let z: f64 = (0..6).map(|_| rng.gen_range(-1.0..1.0)).sum::<f64>() / 2.0;
            let x = z.exp() * 10.0;
            est.observe(x);
            all.push(x);
        }
        let exact = exact_quantile(&mut all, 0.99);
        let got = est.estimate().unwrap();
        assert!(
            (got - exact).abs() / exact < 0.15,
            "p99 estimate {got} vs exact {exact}"
        );
    }

    #[test]
    fn small_sample_is_exact() {
        let mut est = P2Quantile::new(0.5);
        assert!(est.estimate().is_none());
        est.observe(3.0);
        assert_eq!(est.estimate(), Some(3.0));
        est.observe(1.0);
        est.observe(2.0);
        assert_eq!(est.estimate(), Some(2.0));
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn small_sample_matches_exact_quantiles() {
        // Regression for the n < 5-marker regime: before the P² markers
        // exist, every estimate must equal the exact quantile of the
        // sorted samples seen so far — across the whole q range, for
        // every prefix length, regardless of arrival order.
        let stream = [7.5, -2.0, 31.0, 0.25];
        for q in [0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let mut est = P2Quantile::new(q);
            assert_eq!(est.estimate(), None);
            for n in 1..=stream.len() {
                est.observe(stream[n - 1]);
                let mut prefix = stream[..n].to_vec();
                let exact = exact_quantile(&mut prefix, q);
                let got = est.estimate().unwrap();
                assert!(
                    (got - exact).abs() < 1e-12,
                    "q={q} n={n}: estimate {got} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn fifth_sample_stays_exact() {
        // Regression: at exactly five samples the estimator used to
        // report its middle marker — the median — for every quantile. The
        // exact path must hold until a sixth sample lets P² adjust.
        let stream = [10.0, 20.0, 30.0, 40.0, 50.0];
        for q in [0.05, 0.5, 0.99] {
            let mut est = P2Quantile::new(q);
            for x in stream {
                est.observe(x);
            }
            let mut all = stream.to_vec();
            let exact = exact_quantile(&mut all, q);
            let got = est.estimate().unwrap();
            assert!(
                (got - exact).abs() < 1e-12,
                "q={q} at n=5: estimate {got} vs exact {exact}"
            );
        }
        // In particular p99 of five samples is near the max, not the
        // median.
        let mut est = P2Quantile::new(0.99);
        for x in stream {
            est.observe(x);
        }
        assert!(est.estimate().unwrap() > 49.0);
    }

    #[test]
    fn non_finite_samples_do_not_pad_the_small_sample_window() {
        // NaN/inf are skipped entirely: they must not advance the count
        // toward the P² regime nor perturb the exact estimates.
        let mut est = P2Quantile::new(0.5);
        est.observe(f64::NAN);
        est.observe(1.0);
        est.observe(f64::INFINITY);
        est.observe(3.0);
        assert_eq!(est.count(), 2);
        assert_eq!(est.estimate(), Some(2.0));
    }

    #[test]
    fn monotone_stream_tracks_quantile() {
        let mut est = P2Quantile::new(0.9);
        for i in 1..=10_000 {
            est.observe(i as f64);
        }
        let got = est.estimate().unwrap();
        assert!(
            (got - 9000.0).abs() < 300.0,
            "p90 of 1..10000 should be ~9000, got {got}"
        );
    }

    #[test]
    fn non_finite_samples_ignored() {
        let mut est = P2Quantile::new(0.5);
        for i in 0..100 {
            est.observe(i as f64);
            est.observe(f64::NAN);
            est.observe(f64::INFINITY);
        }
        let got = est.estimate().unwrap();
        assert!(got.is_finite());
        assert!((got - 49.5).abs() < 10.0);
    }

    #[test]
    fn constant_stream() {
        let mut est = P2Quantile::new(0.95);
        for _ in 0..1000 {
            est.observe(42.0);
        }
        assert!((est.estimate().unwrap() - 42.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn invalid_quantile_panics() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn accuracy_across_quantiles() {
        let mut rng = StdRng::seed_from_u64(5);
        for q in [0.1, 0.25, 0.75, 0.95] {
            let mut est = P2Quantile::new(q);
            let mut all = Vec::new();
            for _ in 0..20_000 {
                let x: f64 = rng.gen_range(0.0..1.0);
                let x = x * x; // skew
                est.observe(x);
                all.push(x);
            }
            let exact = exact_quantile(&mut all, q);
            let got = est.estimate().unwrap();
            assert!(
                (got - exact).abs() < 0.05,
                "q={q}: estimate {got} vs exact {exact}"
            );
        }
    }
}

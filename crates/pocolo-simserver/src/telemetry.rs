//! Telemetry: bounded time series and windowed statistics.
//!
//! The paper's server manager watches load and the p99 tail-latency slack
//! over one-second windows, and the power capper samples the meter every
//! 100 ms (§IV-C). This module provides the ring-buffer time series and
//! percentile machinery those loops need.

use std::collections::VecDeque;

/// Summary statistics over a telemetry window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Number of samples in the window.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl WindowStats {
    /// Computes stats from raw samples. Non-finite samples (NaN, ±inf —
    /// a glitched sensor) are ignored; returns `None` if no finite sample
    /// remains.
    pub fn from_samples(samples: &[f64]) -> Option<WindowStats> {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        Some(WindowStats {
            count,
            mean,
            min: sorted[0],
            max: sorted[count - 1],
            p50: percentile_of_sorted(&sorted, 0.50),
            p95: percentile_of_sorted(&sorted, 0.95),
            p99: percentile_of_sorted(&sorted, 0.99),
        })
    }
}

/// Nearest-rank percentile with linear interpolation on a sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A bounded time series of `(timestamp_seconds, value)` samples.
///
/// Old samples are evicted once capacity is reached, so memory stays
/// constant over long simulations.
///
/// ```
/// use pocolo_simserver::TimeSeries;
/// let mut ts = TimeSeries::with_capacity(128);
/// for i in 0..10 {
///     ts.push(i as f64 * 0.1, 100.0 + i as f64);
/// }
/// let stats = ts.window_stats(0.45).unwrap(); // last 0.45 s
/// assert_eq!(stats.count, 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    capacity: usize,
    samples: VecDeque<(f64, f64)>,
    /// While set, new samples are dropped until this absolute time: the
    /// series replays its last reading — a stuck telemetry exporter.
    frozen_until: Option<f64>,
}

impl TimeSeries {
    /// Creates a series holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "time series capacity must be positive");
        TimeSeries {
            capacity,
            samples: VecDeque::with_capacity(capacity),
            frozen_until: None,
        }
    }

    /// Freezes the series until the absolute time `until_s`: pushes are
    /// dropped while frozen, so readers keep seeing the stale last sample
    /// (a telemetry dropout, not a dead series).
    pub fn freeze_until(&mut self, until_s: f64) {
        assert!(until_s.is_finite(), "freeze deadline must be finite");
        self.frozen_until = Some(until_s);
    }

    /// Lifts a freeze immediately, whatever its deadline.
    pub fn thaw(&mut self) {
        self.frozen_until = None;
    }

    /// True if the series is frozen (stale) at time `now_s`.
    pub fn is_frozen(&self, now_s: f64) -> bool {
        matches!(self.frozen_until, Some(until) if now_s < until)
    }

    /// Appends a sample. Timestamps must be non-decreasing; out-of-order
    /// samples are silently dropped (telemetry is best-effort), as are
    /// samples pushed while the series is frozen.
    pub fn push(&mut self, t: f64, value: f64) {
        if self.is_frozen(t) {
            return;
        }
        if let Some(&(last_t, _)) = self.samples.back() {
            if t < last_t {
                return;
            }
        }
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back((t, value));
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.samples.back().copied()
    }

    /// Iterates over `(t, value)` pairs oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// Values within the trailing window of `duration` seconds (relative to
    /// the newest timestamp), oldest-first.
    pub fn window_values(&self, duration: f64) -> Vec<f64> {
        match self.samples.back() {
            None => Vec::new(),
            Some(&(now, _)) => self
                .samples
                .iter()
                .filter(|&&(t, _)| t >= now - duration)
                .map(|&(_, v)| v)
                .collect(),
        }
    }

    /// Stats over the trailing `duration` seconds, or `None` if empty.
    pub fn window_stats(&self, duration: f64) -> Option<WindowStats> {
        WindowStats::from_samples(&self.window_values(duration))
    }

    /// Drops all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_stats_percentiles() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = WindowStats::from_samples(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p95 - 95.05).abs() < 1e-9);
        assert!((s.p99 - 99.01).abs() < 1e-9);
    }

    #[test]
    fn window_stats_ignores_non_finite_samples() {
        // Regression: the old comparator `expect`ed finite samples and
        // panicked on NaN.
        let s = WindowStats::from_samples(&[3.0, f64::NAN, 1.0, f64::INFINITY, 2.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(WindowStats::from_samples(&[f64::NAN, f64::NEG_INFINITY]).is_none());
    }

    #[test]
    fn window_stats_empty_and_single() {
        assert!(WindowStats::from_samples(&[]).is_none());
        let s = WindowStats::from_samples(&[42.0]).unwrap();
        assert_eq!(s.p99, 42.0);
        assert_eq!(s.mean, 42.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert!((percentile_of_sorted(&sorted, 0.5) - 5.0).abs() < 1e-12);
        assert_eq!(percentile_of_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_of_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile_of_sorted(&[], 0.5);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut ts = TimeSeries::with_capacity(3);
        for i in 0..5 {
            ts.push(i as f64, i as f64 * 10.0);
        }
        assert_eq!(ts.len(), 3);
        let vals: Vec<f64> = ts.iter().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![20.0, 30.0, 40.0]);
        assert_eq!(ts.last(), Some((4.0, 40.0)));
    }

    #[test]
    fn out_of_order_samples_dropped() {
        let mut ts = TimeSeries::with_capacity(10);
        ts.push(1.0, 1.0);
        ts.push(0.5, 99.0);
        ts.push(2.0, 2.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn trailing_window_selects_by_time() {
        let mut ts = TimeSeries::with_capacity(100);
        for i in 0..20 {
            ts.push(i as f64 * 0.1, i as f64);
        }
        // Newest t = 1.9; window of 0.5 s keeps t >= 1.4 -> samples 14..=19.
        let vals = ts.window_values(0.5);
        assert_eq!(vals.len(), 6);
        assert_eq!(vals[0], 14.0);
        let stats = ts.window_stats(0.5).unwrap();
        assert_eq!(stats.max, 19.0);
    }

    #[test]
    fn window_on_empty_series() {
        let ts = TimeSeries::with_capacity(4);
        assert!(ts.window_values(1.0).is_empty());
        assert!(ts.window_stats(1.0).is_none());
        assert!(ts.is_empty());
        assert_eq!(ts.last(), None);
    }

    #[test]
    fn clear_empties() {
        let mut ts = TimeSeries::with_capacity(4);
        ts.push(0.0, 1.0);
        ts.clear();
        assert!(ts.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TimeSeries::with_capacity(0);
    }

    #[test]
    fn frozen_series_drops_pushes_until_deadline() {
        let mut ts = TimeSeries::with_capacity(10);
        ts.push(1.0, 10.0);
        ts.freeze_until(3.0);
        assert!(ts.is_frozen(2.0));
        ts.push(2.0, 20.0); // dropped: frozen
        assert_eq!(ts.last(), Some((1.0, 10.0)));
        assert!(!ts.is_frozen(3.0));
        ts.push(3.5, 30.0); // deadline passed: accepted
        assert_eq!(ts.last(), Some((3.5, 30.0)));
    }

    #[test]
    fn thaw_lifts_freeze_early() {
        let mut ts = TimeSeries::with_capacity(4);
        ts.freeze_until(100.0);
        ts.thaw();
        assert!(!ts.is_frozen(0.0));
        ts.push(0.5, 1.0);
        assert_eq!(ts.len(), 1);
    }
}

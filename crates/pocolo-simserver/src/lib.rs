//! # pocolo-simserver
//!
//! A simulated power-constrained server, standing in for the Xeon E5-2650
//! testbed of the Pocolo paper (IISWC 2020, Table I).
//!
//! The real prototype relied on four hardware facilities; this crate
//! reproduces each as a software substrate with the same interface
//! semantics:
//!
//! | Hardware facility | Simulated equivalent |
//! |---|---|
//! | `taskset` core pinning | [`knobs::CoreSet`] bitmask allocations |
//! | Intel CAT LLC way partitioning | [`knobs::WayMask`] bitmask allocations |
//! | `cpupowerutils` per-core DVFS | [`knobs::TenantAllocation::frequency`] |
//! | cgroup CPU-time throttling | [`knobs::TenantAllocation::cpu_quota`] |
//! | Socket/DRAM power meter | [`power::PowerMeter`] with sampling noise |
//!
//! A [`server::SimServer`] hosts up to two tenants (the primary
//! latency-critical application and one best-effort co-runner, as in the
//! paper) and validates that their core and way allocations never overlap —
//! the isolation property the real system gets from `taskset` + CAT.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod knobs;
pub mod machine;
pub mod multi;
pub mod p2;
pub mod power;
pub mod server;
pub mod telemetry;

pub use error::SimError;
pub use knobs::{CoreSet, TenantAllocation, TenantRole, WayMask};
pub use machine::MachineSpec;
pub use multi::{MultiPowerCapper, MultiTenantServer, SecondaryId};
pub use p2::P2Quantile;
pub use power::{PowerDrawModel, PowerMeter};
pub use server::SimServer;
pub use telemetry::{TimeSeries, WindowStats};

//! A multi-tenant server: one primary plus *several* best-effort
//! secondaries sharing the spare box spatially (§V-G future work,
//! simulated end to end).
//!
//! Unlike [`crate::SimServer`]'s fixed two slots, a [`MultiTenantServer`]
//! hosts an ordered list of secondaries. Order encodes throttling
//! priority: when the power capper must shed watts it throttles the
//! *last* secondary first.

use pocolo_core::units::{Frequency, Watts};

use crate::error::SimError;
use crate::knobs::{CoreSet, TenantAllocation, WayMask};
use crate::machine::MachineSpec;

/// Identifier of a secondary tenant on a multi-tenant server.
pub type SecondaryId = u64;

/// A server hosting one primary and any number of spatially-isolated
/// secondaries.
///
/// ```
/// use pocolo_simserver::{MultiTenantServer, MachineSpec, TenantAllocation,
///                        CoreSet, WayMask};
/// use pocolo_core::units::{Frequency, Watts};
///
/// # fn main() -> Result<(), pocolo_simserver::SimError> {
/// let mut server = MultiTenantServer::new(MachineSpec::xeon_e5_2650(), Watts(154.0));
/// server.install_primary(TenantAllocation::new(
///     CoreSet::range(0, 4), WayMask::range(0, 8), Frequency(2.2)))?;
/// server.add_secondary(1, TenantAllocation::new(
///     CoreSet::range(4, 5), WayMask::range(8, 6), Frequency(2.2)))?;
/// server.add_secondary(2, TenantAllocation::new(
///     CoreSet::range(9, 3), WayMask::range(14, 6), Frequency(2.2)))?;
/// let (spare_cores, _) = server.spare_capacity();
/// assert_eq!(spare_cores.count(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTenantServer {
    machine: MachineSpec,
    power_cap: Watts,
    primary: Option<TenantAllocation>,
    secondaries: Vec<(SecondaryId, TenantAllocation)>,
}

impl MultiTenantServer {
    /// Creates an empty server with a provisioned power cap.
    pub fn new(machine: MachineSpec, power_cap: Watts) -> Self {
        MultiTenantServer {
            machine,
            power_cap,
            primary: None,
            secondaries: Vec::new(),
        }
    }

    /// The machine specification.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// The provisioned power capacity.
    pub fn power_cap(&self) -> Watts {
        self.power_cap
    }

    /// The primary's allocation, if installed.
    pub fn primary(&self) -> Option<&TenantAllocation> {
        self.primary.as_ref()
    }

    /// The secondaries in priority order (first = throttled last).
    pub fn secondaries(&self) -> &[(SecondaryId, TenantAllocation)] {
        &self.secondaries
    }

    /// A secondary's allocation by id.
    pub fn secondary(&self, id: SecondaryId) -> Option<&TenantAllocation> {
        self.secondaries
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, a)| a)
    }

    fn disjoint_from_all(
        &self,
        alloc: &TenantAllocation,
        skip_primary: bool,
        skip_id: Option<SecondaryId>,
    ) -> Result<(), SimError> {
        if !skip_primary {
            if let Some(p) = &self.primary {
                if !alloc.is_disjoint_from(p) {
                    return Err(SimError::OverlappingAllocation(format!(
                        "{alloc} overlaps the primary's {p}"
                    )));
                }
            }
        }
        for (id, other) in &self.secondaries {
            if Some(*id) == skip_id {
                continue;
            }
            if !alloc.is_disjoint_from(other) {
                return Err(SimError::OverlappingAllocation(format!(
                    "{alloc} overlaps secondary {id}'s {other}"
                )));
            }
        }
        Ok(())
    }

    /// Installs or replaces the primary.
    ///
    /// # Errors
    ///
    /// Knob validation errors, or overlap with any secondary.
    pub fn install_primary(&mut self, alloc: TenantAllocation) -> Result<(), SimError> {
        alloc.validate(&self.machine)?;
        self.disjoint_from_all(&alloc, true, None)?;
        self.primary = Some(alloc);
        Ok(())
    }

    /// Appends a secondary with the given priority-ordered id.
    ///
    /// # Errors
    ///
    /// Validation/overlap errors, or [`SimError::InvalidKnob`] for a
    /// duplicate id.
    pub fn add_secondary(
        &mut self,
        id: SecondaryId,
        alloc: TenantAllocation,
    ) -> Result<(), SimError> {
        if self.secondary(id).is_some() {
            return Err(SimError::InvalidKnob(format!(
                "secondary id {id} already installed"
            )));
        }
        alloc.validate(&self.machine)?;
        self.disjoint_from_all(&alloc, false, None)?;
        self.secondaries.push((id, alloc));
        Ok(())
    }

    /// Removes a secondary, returning its allocation.
    pub fn remove_secondary(&mut self, id: SecondaryId) -> Option<TenantAllocation> {
        let idx = self.secondaries.iter().position(|(i, _)| *i == id)?;
        Some(self.secondaries.remove(idx).1)
    }

    /// Removes every secondary (e.g. before re-planning the split).
    pub fn clear_secondaries(&mut self) {
        self.secondaries.clear();
    }

    /// Cores and ways not reserved by anyone.
    pub fn spare_capacity(&self) -> (CoreSet, WayMask) {
        let mut used_c = 0u64;
        let mut used_w = 0u32;
        if let Some(p) = &self.primary {
            used_c |= p.cores.bits();
            used_w |= p.ways.bits();
        }
        for (_, s) in &self.secondaries {
            used_c |= s.cores.bits();
            used_w |= s.ways.bits();
        }
        let all_c = CoreSet::first_n(self.machine.cores()).bits();
        let all_w = WayMask::first_n(self.machine.llc_ways()).bits();
        (
            CoreSet::from_bits(all_c & !used_c),
            WayMask::from_bits(all_w & !used_w),
        )
    }

    /// Sets a secondary's DVFS frequency (clamped into range).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchTenant`] for an unknown id.
    pub fn set_secondary_frequency(
        &mut self,
        id: SecondaryId,
        freq: Frequency,
    ) -> Result<(), SimError> {
        let clamped = self.machine.clamp_frequency(freq);
        match self.secondaries.iter_mut().find(|(i, _)| *i == id) {
            Some((_, a)) => {
                a.frequency = clamped;
                Ok(())
            }
            None => Err(SimError::NoSuchTenant("secondary")),
        }
    }

    /// Sets a secondary's CPU quota.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidKnob`] outside `(0, 1]`;
    /// [`SimError::NoSuchTenant`] for an unknown id.
    pub fn set_secondary_quota(&mut self, id: SecondaryId, quota: f64) -> Result<(), SimError> {
        if !(quota > 0.0 && quota <= 1.0) {
            return Err(SimError::InvalidKnob(format!(
                "cpu quota {quota} outside (0, 1]"
            )));
        }
        match self.secondaries.iter_mut().find(|(i, _)| *i == id) {
            Some((_, a)) => {
                a.cpu_quota = quota;
                Ok(())
            }
            None => Err(SimError::NoSuchTenant("secondary")),
        }
    }
}

/// Hysteretic power capper for multi-tenant servers: sheds watts from the
/// **lowest-priority** (last) secondary first, frequency before quota;
/// recovers in the opposite order.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPowerCapper {
    /// Throttle above `cap × guard`.
    pub guard: f64,
    /// Recover below `cap × release`.
    pub release: f64,
    /// DVFS step in GHz.
    pub freq_step: f64,
    /// Quota step (additive).
    pub quota_step: f64,
    /// Quota floor.
    pub quota_floor: f64,
}

impl Default for MultiPowerCapper {
    fn default() -> Self {
        MultiPowerCapper {
            guard: 1.0,
            release: 0.94,
            freq_step: 0.1,
            quota_step: 0.10,
            quota_floor: 0.05,
        }
    }
}

impl MultiPowerCapper {
    /// One control step against a measured power. Returns `true` if any
    /// throttling action was taken.
    ///
    /// # Errors
    ///
    /// Propagates knob errors (not expected with in-range steps).
    pub fn step(&self, server: &mut MultiTenantServer, measured: Watts) -> Result<bool, SimError> {
        let cap = server.power_cap();
        let fmin = server.machine().freq_min();
        let fmax = server.machine().freq_max();
        if measured > cap * self.guard {
            // Shed from the lowest-priority (last) secondary that still has
            // headroom to give.
            let ids: Vec<SecondaryId> =
                server.secondaries().iter().rev().map(|(i, _)| *i).collect();
            for id in ids {
                let alloc = *server.secondary(id).expect("listed above");
                if alloc.frequency > fmin + Frequency(1e-9) {
                    server.set_secondary_frequency(
                        id,
                        Frequency(alloc.frequency.0 - self.freq_step),
                    )?;
                    return Ok(true);
                }
                if alloc.cpu_quota > self.quota_floor + 1e-9 {
                    server.set_secondary_quota(
                        id,
                        (alloc.cpu_quota - self.quota_step).max(self.quota_floor),
                    )?;
                    return Ok(true);
                }
            }
            Ok(false) // everything already at the floor
        } else if measured < cap * self.release {
            // Recover the highest-priority throttled secondary first.
            let ids: Vec<SecondaryId> = server.secondaries().iter().map(|(i, _)| *i).collect();
            for id in ids {
                let alloc = *server.secondary(id).expect("listed above");
                if alloc.cpu_quota < 1.0 - 1e-9 {
                    server.set_secondary_quota(id, (alloc.cpu_quota + self.quota_step).min(1.0))?;
                    return Ok(false);
                }
                if alloc.frequency < fmax - Frequency(1e-9) {
                    server.set_secondary_frequency(
                        id,
                        Frequency(alloc.frequency.0 + self.freq_step),
                    )?;
                    return Ok(false);
                }
            }
            Ok(false)
        } else {
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> MultiTenantServer {
        MultiTenantServer::new(MachineSpec::xeon_e5_2650(), Watts(154.0))
    }

    fn alloc(cs: u32, cn: u32, ws: u32, wn: u32) -> TenantAllocation {
        TenantAllocation::new(
            CoreSet::range(cs, cn),
            WayMask::range(ws, wn),
            Frequency(2.2),
        )
    }

    #[test]
    fn hosts_primary_and_two_secondaries() {
        let mut s = server();
        s.install_primary(alloc(0, 2, 0, 4)).unwrap();
        s.add_secondary(1, alloc(2, 6, 4, 10)).unwrap();
        s.add_secondary(2, alloc(8, 4, 14, 6)).unwrap();
        assert_eq!(s.secondaries().len(), 2);
        let (c, w) = s.spare_capacity();
        assert_eq!(c.count(), 0);
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn overlap_rejected_across_all_tenants() {
        let mut s = server();
        s.install_primary(alloc(0, 2, 0, 4)).unwrap();
        s.add_secondary(1, alloc(2, 6, 4, 10)).unwrap();
        // Overlaps the primary.
        assert!(s.add_secondary(2, alloc(1, 2, 14, 4)).is_err());
        // Overlaps secondary 1.
        assert!(s.add_secondary(2, alloc(7, 2, 14, 4)).is_err());
        // Primary cannot grow into a secondary.
        assert!(s.install_primary(alloc(0, 3, 0, 4)).is_err());
        // Duplicate id.
        assert!(s.add_secondary(1, alloc(8, 2, 14, 4)).is_err());
    }

    #[test]
    fn remove_and_clear() {
        let mut s = server();
        s.add_secondary(7, alloc(0, 4, 0, 6)).unwrap();
        s.add_secondary(8, alloc(4, 4, 6, 6)).unwrap();
        let removed = s.remove_secondary(7).unwrap();
        assert_eq!(removed.cores.count(), 4);
        assert!(s.remove_secondary(7).is_none());
        s.clear_secondaries();
        assert!(s.secondaries().is_empty());
    }

    #[test]
    fn capper_sheds_from_lowest_priority_first() {
        let mut s = server();
        s.add_secondary(1, alloc(0, 4, 0, 6)).unwrap(); // high priority
        s.add_secondary(2, alloc(4, 4, 6, 6)).unwrap(); // low priority
        let capper = MultiPowerCapper::default();
        let acted = capper.step(&mut s, Watts(170.0)).unwrap();
        assert!(acted);
        // Secondary 2 throttled; secondary 1 untouched.
        assert!(s.secondary(2).unwrap().frequency < Frequency(2.2));
        assert_eq!(s.secondary(1).unwrap().frequency, Frequency(2.2));
    }

    #[test]
    fn capper_moves_to_next_tenant_once_floored() {
        let mut s = server();
        s.add_secondary(1, alloc(0, 4, 0, 6)).unwrap();
        s.add_secondary(2, alloc(4, 4, 6, 6)).unwrap();
        let capper = MultiPowerCapper::default();
        // Drive secondary 2 to both floors (10 freq steps + 10 quota steps).
        for _ in 0..25 {
            capper.step(&mut s, Watts(200.0)).unwrap();
        }
        assert!((s.secondary(2).unwrap().cpu_quota - capper.quota_floor).abs() < 1e-9);
        // Next shed hits secondary 1.
        capper.step(&mut s, Watts(200.0)).unwrap();
        assert!(s.secondary(1).unwrap().frequency < Frequency(2.2));
    }

    #[test]
    fn capper_recovers_high_priority_first() {
        let mut s = server();
        s.add_secondary(1, alloc(0, 4, 0, 6)).unwrap();
        s.add_secondary(2, alloc(4, 4, 6, 6)).unwrap();
        let capper = MultiPowerCapper::default();
        for _ in 0..40 {
            capper.step(&mut s, Watts(200.0)).unwrap();
        }
        // Both are floored; recovery raises secondary 1's quota first.
        let q2_before = s.secondary(2).unwrap().cpu_quota;
        capper.step(&mut s, Watts(100.0)).unwrap();
        assert!(s.secondary(1).unwrap().cpu_quota > capper.quota_floor);
        assert!((s.secondary(2).unwrap().cpu_quota - q2_before).abs() < 1e-9);
    }

    #[test]
    fn saturated_returns_false() {
        let mut s = server();
        s.add_secondary(1, alloc(0, 4, 0, 6)).unwrap();
        let capper = MultiPowerCapper::default();
        for _ in 0..30 {
            capper.step(&mut s, Watts(250.0)).unwrap();
        }
        assert!(!capper.step(&mut s, Watts(250.0)).unwrap());
    }

    #[test]
    fn quota_and_frequency_validation() {
        let mut s = server();
        s.add_secondary(1, alloc(0, 4, 0, 6)).unwrap();
        assert!(s.set_secondary_quota(1, 0.0).is_err());
        assert!(s.set_secondary_quota(99, 0.5).is_err());
        assert!(s.set_secondary_frequency(99, Frequency(2.0)).is_err());
        s.set_secondary_frequency(1, Frequency(99.0)).unwrap();
        assert_eq!(s.secondary(1).unwrap().frequency, Frequency(2.2));
    }
}

//! Error types for the simulated server.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the simulated server substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A knob value referenced hardware the machine does not have
    /// (e.g. core 14 on a 12-core machine).
    OutOfRange(String),
    /// Two tenants' core sets or way masks overlap — isolation would be
    /// violated.
    OverlappingAllocation(String),
    /// A tenant-facing operation referenced a role with no tenant installed.
    NoSuchTenant(&'static str),
    /// A knob value was structurally invalid (empty core set, quota outside
    /// `(0, 1]`, frequency outside the machine's range, …).
    InvalidKnob(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfRange(msg) => write!(f, "out of hardware range: {msg}"),
            SimError::OverlappingAllocation(msg) => {
                write!(f, "overlapping tenant allocation: {msg}")
            }
            SimError::NoSuchTenant(role) => write!(f, "no tenant installed in role {role}"),
            SimError::InvalidKnob(msg) => write!(f, "invalid knob setting: {msg}"),
        }
    }
}

impl StdError for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SimError::OutOfRange("core 14".into())
            .to_string()
            .contains("core 14"));
        assert!(SimError::NoSuchTenant("secondary")
            .to_string()
            .contains("secondary"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: StdError + Send + Sync + 'static>() {}
        check::<SimError>();
    }
}

//! Machine specifications (Table I of the paper).

use pocolo_core::fleet::ServerClass;
use pocolo_core::resources::{ResourceDescriptor, ResourceSpace};
use pocolo_core::units::{Frequency, Watts};

use crate::error::SimError;

/// Static description of a server platform.
///
/// The default reproduces Table I: an Intel Xeon E5-2650 with 12 cores at
/// 1.2–2.2 GHz, a 30 MB LLC with 20 ways, idle power 50 W and active power
/// 135 W.
///
/// ```
/// use pocolo_simserver::MachineSpec;
/// let spec = MachineSpec::xeon_e5_2650();
/// assert_eq!(spec.cores(), 12);
/// assert_eq!(spec.llc_ways(), 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    name: String,
    cores: u32,
    freq_min: Frequency,
    freq_max: Frequency,
    llc_ways: u32,
    llc_mb: f64,
    memory_gb: u32,
    idle_power: Watts,
    active_power: Watts,
}

impl MachineSpec {
    /// The paper's evaluation platform (Table I).
    pub fn xeon_e5_2650() -> Self {
        MachineSpec {
            name: "Intel Xeon E5-2650".to_string(),
            cores: 12,
            freq_min: Frequency(1.2),
            freq_max: Frequency(2.2),
            llc_ways: 20,
            llc_mb: 30.0,
            memory_gb: 256,
            idle_power: Watts(50.0),
            active_power: Watts(135.0),
        }
    }

    /// Builds a custom machine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidKnob`] if any field is degenerate
    /// (zero cores/ways, inverted frequency range, inverted power range).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        cores: u32,
        freq_min: Frequency,
        freq_max: Frequency,
        llc_ways: u32,
        llc_mb: f64,
        memory_gb: u32,
        idle_power: Watts,
        active_power: Watts,
    ) -> Result<Self, SimError> {
        if cores == 0 || cores > 64 {
            return Err(SimError::InvalidKnob(format!(
                "cores must be in 1..=64, got {cores}"
            )));
        }
        if llc_ways == 0 || llc_ways > 32 {
            return Err(SimError::InvalidKnob(format!(
                "llc ways must be in 1..=32, got {llc_ways}"
            )));
        }
        if freq_min.0 <= 0.0 || freq_min > freq_max {
            return Err(SimError::InvalidKnob(format!(
                "frequency range [{freq_min}, {freq_max}] is invalid"
            )));
        }
        if !idle_power.is_valid() || !active_power.is_valid() || idle_power > active_power {
            return Err(SimError::InvalidKnob(format!(
                "power range [{idle_power}, {active_power}] is invalid"
            )));
        }
        Ok(MachineSpec {
            name: name.into(),
            cores,
            freq_min,
            freq_max,
            llc_ways,
            llc_mb,
            memory_gb,
            idle_power,
            active_power,
        })
    }

    /// Builds the simulated machine for a fleet [`ServerClass`].
    ///
    /// Geometry, frequency range, and idle/peak watts carry over directly.
    /// LLC capacity follows the Xeon's 1.5 MB-per-way ratio and DRAM is
    /// fixed at 256 GB — neither feeds the performance or power models,
    /// they only describe the platform. `from_class` of the `xeon` catalog
    /// class reproduces [`MachineSpec::xeon_e5_2650`]'s knobs exactly.
    pub fn from_class(class: &ServerClass) -> Self {
        MachineSpec::new(
            class.name().to_string(),
            class.cores(),
            class.freq_min(),
            class.freq_max(),
            class.llc_ways(),
            1.5 * class.llc_ways() as f64,
            256,
            class.idle_watts(),
            class.peak_watts(),
        )
        .expect("server classes are validated at construction")
    }

    /// Human-readable platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical cores.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Minimum per-core frequency.
    pub fn freq_min(&self) -> Frequency {
        self.freq_min
    }

    /// Maximum (non-turbo) per-core frequency.
    pub fn freq_max(&self) -> Frequency {
        self.freq_max
    }

    /// Number of LLC ways available to CAT.
    pub fn llc_ways(&self) -> u32 {
        self.llc_ways
    }

    /// LLC capacity in megabytes.
    pub fn llc_mb(&self) -> f64 {
        self.llc_mb
    }

    /// Installed DRAM in gigabytes.
    pub fn memory_gb(&self) -> u32 {
        self.memory_gb
    }

    /// Idle (all cores parked) power draw.
    pub fn idle_power(&self) -> Watts {
        self.idle_power
    }

    /// Nominal all-cores-active power draw at max frequency.
    pub fn active_power(&self) -> Watts {
        self.active_power
    }

    /// The direct-resource space this machine exposes to the economics
    /// framework: `cores ∈ [1, n]`, `llc_ways ∈ [1, w]`.
    pub fn resource_space(&self) -> ResourceSpace {
        ResourceSpace::builder()
            .resource(ResourceDescriptor::integral(
                "cores",
                1.0,
                self.cores as f64,
            ))
            .resource(ResourceDescriptor::integral(
                "llc_ways",
                1.0,
                self.llc_ways as f64,
            ))
            .build()
            .expect("machine fields validated at construction")
    }

    /// Clamps a frequency into the machine's DVFS range.
    pub fn clamp_frequency(&self, f: Frequency) -> Frequency {
        Frequency(f.0.clamp(self.freq_min.0, self.freq_max.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_constants() {
        let m = MachineSpec::xeon_e5_2650();
        assert_eq!(m.cores(), 12);
        assert_eq!(m.llc_ways(), 20);
        assert_eq!(m.freq_min(), Frequency(1.2));
        assert_eq!(m.freq_max(), Frequency(2.2));
        assert_eq!(m.idle_power(), Watts(50.0));
        assert_eq!(m.active_power(), Watts(135.0));
        assert_eq!(m.memory_gb(), 256);
        assert!((m.llc_mb() - 30.0).abs() < 1e-9);
        assert!(m.name().contains("2650"));
    }

    #[test]
    fn custom_machine_validation() {
        let ok = MachineSpec::new(
            "test",
            4,
            Frequency(1.0),
            Frequency(2.0),
            8,
            10.0,
            64,
            Watts(20.0),
            Watts(80.0),
        );
        assert!(ok.is_ok());
        assert!(MachineSpec::new(
            "t",
            0,
            Frequency(1.0),
            Frequency(2.0),
            8,
            10.0,
            64,
            Watts(20.0),
            Watts(80.0)
        )
        .is_err());
        assert!(MachineSpec::new(
            "t",
            4,
            Frequency(2.5),
            Frequency(2.0),
            8,
            10.0,
            64,
            Watts(20.0),
            Watts(80.0)
        )
        .is_err());
        assert!(MachineSpec::new(
            "t",
            4,
            Frequency(1.0),
            Frequency(2.0),
            0,
            10.0,
            64,
            Watts(20.0),
            Watts(80.0)
        )
        .is_err());
        assert!(MachineSpec::new(
            "t",
            4,
            Frequency(1.0),
            Frequency(2.0),
            8,
            10.0,
            64,
            Watts(90.0),
            Watts(80.0)
        )
        .is_err());
    }

    #[test]
    fn from_class_matches_xeon_knobs() {
        let m = MachineSpec::from_class(&ServerClass::xeon_e5_2650());
        let x = MachineSpec::xeon_e5_2650();
        // Every knob that feeds a model matches the Table I machine;
        // only the display name differs.
        assert_eq!(m.cores(), x.cores());
        assert_eq!(m.llc_ways(), x.llc_ways());
        assert_eq!(m.freq_min(), x.freq_min());
        assert_eq!(m.freq_max(), x.freq_max());
        assert_eq!(m.idle_power(), x.idle_power());
        assert_eq!(m.active_power(), x.active_power());
        assert_eq!(m.memory_gb(), x.memory_gb());
        assert!((m.llc_mb() - x.llc_mb()).abs() < 1e-9);
        assert_eq!(m.resource_space(), x.resource_space());
    }

    #[test]
    fn from_class_carries_sku_geometry() {
        let m = MachineSpec::from_class(&ServerClass::turbo());
        assert_eq!(m.cores(), 16);
        assert_eq!(m.llc_ways(), 16);
        assert_eq!(m.freq_max(), Frequency(3.0));
        assert_eq!(m.active_power(), Watts(180.0));
    }

    #[test]
    fn resource_space_matches_machine() {
        let m = MachineSpec::xeon_e5_2650();
        let s = m.resource_space();
        assert_eq!(s.len(), 2);
        assert_eq!(s.descriptor(0).max(), 12.0);
        assert_eq!(s.descriptor(1).max(), 20.0);
    }

    #[test]
    fn clamp_frequency() {
        let m = MachineSpec::xeon_e5_2650();
        assert_eq!(m.clamp_frequency(Frequency(3.0)), Frequency(2.2));
        assert_eq!(m.clamp_frequency(Frequency(0.5)), Frequency(1.2));
        assert_eq!(m.clamp_frequency(Frequency(1.8)), Frequency(1.8));
    }
}

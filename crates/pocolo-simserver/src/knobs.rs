//! Resource-allocation knobs: the simulated equivalents of `taskset`,
//! Intel CAT, per-core DVFS and cgroup CPU quotas.

use std::fmt;

use pocolo_core::units::Frequency;

use crate::error::SimError;
use crate::machine::MachineSpec;

/// Which slot a tenant occupies on a server. The paper's platform hosts
/// exactly one latency-critical primary and at most one best-effort
/// secondary per server (§V-G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TenantRole {
    /// The latency-critical application the cluster is provisioned for.
    Primary,
    /// The best-effort co-runner harvesting spare resources.
    Secondary,
}

impl TenantRole {
    /// Static name for error messages.
    pub fn as_str(self) -> &'static str {
        match self {
            TenantRole::Primary => "primary",
            TenantRole::Secondary => "secondary",
        }
    }
}

impl fmt::Display for TenantRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A set of physical cores, as a bitmask (simulated `taskset` cpuset).
///
/// ```
/// use pocolo_simserver::CoreSet;
/// let set = CoreSet::first_n(4);
/// assert_eq!(set.count(), 4);
/// assert!(set.contains(3));
/// assert!(!set.contains(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CoreSet(u64);

impl CoreSet {
    /// The empty core set.
    pub const EMPTY: CoreSet = CoreSet(0);

    /// The set `{0, 1, …, n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn first_n(n: u32) -> Self {
        assert!(n <= 64, "core sets support at most 64 cores");
        if n == 64 {
            CoreSet(u64::MAX)
        } else {
            CoreSet((1u64 << n) - 1)
        }
    }

    /// The set `{start, …, start+len-1}`.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past core 63.
    pub fn range(start: u32, len: u32) -> Self {
        assert!(start + len <= 64, "core range out of bounds");
        let mut s = CoreSet::EMPTY;
        for c in start..start + len {
            s = s.with(c);
        }
        s
    }

    /// Returns this set with core `c` added.
    ///
    /// # Panics
    ///
    /// Panics if `c >= 64`.
    #[must_use]
    pub fn with(self, c: u32) -> Self {
        assert!(c < 64, "core index out of bounds");
        CoreSet(self.0 | (1u64 << c))
    }

    /// Whether core `c` is in the set.
    pub fn contains(self, c: u32) -> bool {
        c < 64 && self.0 & (1u64 << c) != 0
    }

    /// Number of cores in the set.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True if no cores are in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if the two sets share any core.
    pub fn intersects(self, other: CoreSet) -> bool {
        self.0 & other.0 != 0
    }

    /// The raw bitmask.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Reconstructs a set from a raw bitmask (e.g. spare-capacity queries).
    pub fn from_bits(bits: u64) -> Self {
        CoreSet(bits)
    }

    /// Index of the highest core in the set, if non-empty.
    pub fn highest(self) -> Option<u32> {
        if self.is_empty() {
            None
        } else {
            Some(63 - self.0.leading_zeros())
        }
    }
}

impl fmt::Display for CoreSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cores[{:#x}]", self.0)
    }
}

/// A set of LLC ways, as a bitmask (simulated Intel CAT class-of-service).
///
/// Real CAT masks must be contiguous; we enforce the same restriction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WayMask(u32);

impl WayMask {
    /// The empty way mask.
    pub const EMPTY: WayMask = WayMask(0);

    /// Ways `{0, …, n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn first_n(n: u32) -> Self {
        assert!(n <= 32, "way masks support at most 32 ways");
        if n == 32 {
            WayMask(u32::MAX)
        } else {
            WayMask((1u32 << n) - 1)
        }
    }

    /// Ways `{start, …, start+len-1}` (contiguous, as CAT requires).
    ///
    /// # Panics
    ///
    /// Panics if the range extends past way 31.
    pub fn range(start: u32, len: u32) -> Self {
        assert!(start + len <= 32, "way range out of bounds");
        if len == 0 {
            return WayMask::EMPTY;
        }
        let block = if len == 32 {
            u32::MAX
        } else {
            (1u32 << len) - 1
        };
        WayMask(block << start)
    }

    /// Number of ways in the mask.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True if no ways are in the mask.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if the mask is a single contiguous run of bits (CAT rule).
    pub fn is_contiguous(self) -> bool {
        if self.0 == 0 {
            return true;
        }
        let shifted = self.0 >> self.0.trailing_zeros();
        (shifted & (shifted + 1)) == 0
    }

    /// True if the two masks share any way.
    pub fn intersects(self, other: WayMask) -> bool {
        self.0 & other.0 != 0
    }

    /// The raw bitmask.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Reconstructs a mask from a raw bitmask. The result may be
    /// non-contiguous; tenant installation re-validates contiguity.
    pub fn from_bits(bits: u32) -> Self {
        WayMask(bits)
    }

    /// Index of the highest way in the mask, if non-empty.
    pub fn highest(self) -> Option<u32> {
        if self.is_empty() {
            None
        } else {
            Some(31 - self.0.leading_zeros())
        }
    }
}

impl fmt::Display for WayMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ways[{:#x}]", self.0)
    }
}

/// Everything a tenant is allocated on a server: its cores, LLC ways, the
/// DVFS frequency of its cores, and a CPU-time quota.
///
/// The quota models cgroup `cpu.cfs_quota_us / cpu.cfs_period_us`: `1.0`
/// means the tenant's cores run whenever it has work; `0.5` means they are
/// throttled to half time. The paper's power capper uses frequency first,
/// then quota (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantAllocation {
    /// Cores pinned to this tenant.
    pub cores: CoreSet,
    /// LLC ways reserved for this tenant.
    pub ways: WayMask,
    /// Operating frequency of the tenant's cores.
    pub frequency: Frequency,
    /// Fraction of CPU time the tenant's cores may run, in `(0, 1]`.
    pub cpu_quota: f64,
}

impl TenantAllocation {
    /// A full-speed allocation of the given cores and ways at `frequency`.
    pub fn new(cores: CoreSet, ways: WayMask, frequency: Frequency) -> Self {
        TenantAllocation {
            cores,
            ways,
            frequency,
            cpu_quota: 1.0,
        }
    }

    /// Convenience: the first `cores` cores and first `ways` ways of a
    /// machine at its maximum frequency — the shape the economics layer's
    /// (cores, ways) counts map onto.
    ///
    /// ```
    /// use pocolo_simserver::{MachineSpec, TenantAllocation};
    /// let machine = MachineSpec::xeon_e5_2650();
    /// let alloc = TenantAllocation::from_counts(&machine, 4, 10);
    /// assert_eq!(alloc.cores.count(), 4);
    /// assert_eq!(alloc.ways.count(), 10);
    /// assert_eq!(alloc.frequency, machine.freq_max());
    /// ```
    ///
    /// Counts are clamped into `[1, capacity]`.
    pub fn from_counts(machine: &MachineSpec, cores: u32, ways: u32) -> Self {
        TenantAllocation::new(
            CoreSet::first_n(cores.clamp(1, machine.cores())),
            WayMask::first_n(ways.clamp(1, machine.llc_ways())),
            machine.freq_max(),
        )
    }

    /// Validates the allocation against a machine.
    ///
    /// # Errors
    ///
    /// - [`SimError::InvalidKnob`] for an empty core set/way mask, a
    ///   non-contiguous way mask, or a quota outside `(0, 1]`.
    /// - [`SimError::OutOfRange`] if a core/way index or the frequency falls
    ///   outside the machine's hardware.
    pub fn validate(&self, machine: &MachineSpec) -> Result<(), SimError> {
        if self.cores.is_empty() {
            return Err(SimError::InvalidKnob("core set is empty".into()));
        }
        if self.ways.is_empty() {
            return Err(SimError::InvalidKnob("way mask is empty".into()));
        }
        if !self.ways.is_contiguous() {
            return Err(SimError::InvalidKnob(format!(
                "{} is not contiguous (CAT requires contiguous masks)",
                self.ways
            )));
        }
        if let Some(hi) = self.cores.highest() {
            if hi >= machine.cores() {
                return Err(SimError::OutOfRange(format!(
                    "core {hi} on a {}-core machine",
                    machine.cores()
                )));
            }
        }
        if let Some(hi) = self.ways.highest() {
            if hi >= machine.llc_ways() {
                return Err(SimError::OutOfRange(format!(
                    "way {hi} on a {}-way LLC",
                    machine.llc_ways()
                )));
            }
        }
        if self.frequency < machine.freq_min() - Frequency(1e-9)
            || self.frequency > machine.freq_max() + Frequency(1e-9)
        {
            return Err(SimError::OutOfRange(format!(
                "frequency {} outside [{}, {}]",
                self.frequency,
                machine.freq_min(),
                machine.freq_max()
            )));
        }
        if !(self.cpu_quota > 0.0 && self.cpu_quota <= 1.0) {
            return Err(SimError::InvalidKnob(format!(
                "cpu quota {} outside (0, 1]",
                self.cpu_quota
            )));
        }
        Ok(())
    }

    /// True if this allocation shares no core or way with `other`.
    pub fn is_disjoint_from(&self, other: &TenantAllocation) -> bool {
        !self.cores.intersects(other.cores) && !self.ways.intersects(other.ways)
    }
}

impl fmt::Display for TenantAllocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}c/{}w @ {} q={:.2}",
            self.cores.count(),
            self.ways.count(),
            self.frequency,
            self.cpu_quota
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_set_basics() {
        let s = CoreSet::first_n(4);
        assert_eq!(s.count(), 4);
        assert!(s.contains(0) && s.contains(3));
        assert!(!s.contains(4));
        assert!(!s.contains(99));
        assert_eq!(s.highest(), Some(3));
        assert!(CoreSet::EMPTY.is_empty());
        assert_eq!(CoreSet::EMPTY.highest(), None);
    }

    #[test]
    fn core_set_range_and_with() {
        let s = CoreSet::range(4, 3);
        assert_eq!(s.count(), 3);
        assert!(s.contains(4) && s.contains(6));
        assert!(!s.contains(3) && !s.contains(7));
        let t = s.with(10);
        assert_eq!(t.count(), 4);
        assert!(t.contains(10));
    }

    #[test]
    fn core_set_intersection() {
        let a = CoreSet::range(0, 4);
        let b = CoreSet::range(4, 4);
        let c = CoreSet::range(2, 4);
        assert!(!a.intersects(b));
        assert!(a.intersects(c));
        assert!(c.intersects(b));
    }

    #[test]
    fn core_set_full_64() {
        let s = CoreSet::first_n(64);
        assert_eq!(s.count(), 64);
        assert_eq!(s.highest(), Some(63));
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn core_set_too_big_panics() {
        let _ = CoreSet::first_n(65);
    }

    #[test]
    fn way_mask_basics() {
        let m = WayMask::first_n(5);
        assert_eq!(m.count(), 5);
        assert!(m.is_contiguous());
        assert_eq!(m.highest(), Some(4));
        assert_eq!(WayMask::range(10, 0), WayMask::EMPTY);
        assert_eq!(WayMask::first_n(32).count(), 32);
        assert_eq!(WayMask::range(0, 32).count(), 32);
    }

    #[test]
    fn way_mask_contiguity() {
        assert!(WayMask::range(3, 4).is_contiguous());
        assert!(WayMask::EMPTY.is_contiguous());
        // Hand-construct a non-contiguous mask.
        let gap = WayMask(0b1010);
        assert!(!gap.is_contiguous());
    }

    #[test]
    fn way_mask_intersection() {
        assert!(!WayMask::range(0, 5).intersects(WayMask::range(5, 5)));
        assert!(WayMask::range(0, 6).intersects(WayMask::range(5, 5)));
    }

    #[test]
    fn allocation_validation_against_machine() {
        let m = MachineSpec::xeon_e5_2650();
        let ok = TenantAllocation::new(CoreSet::first_n(4), WayMask::first_n(5), Frequency(2.2));
        assert!(ok.validate(&m).is_ok());

        let empty_cores =
            TenantAllocation::new(CoreSet::EMPTY, WayMask::first_n(5), Frequency(2.2));
        assert!(matches!(
            empty_cores.validate(&m),
            Err(SimError::InvalidKnob(_))
        ));

        let too_many_cores =
            TenantAllocation::new(CoreSet::first_n(13), WayMask::first_n(5), Frequency(2.2));
        assert!(matches!(
            too_many_cores.validate(&m),
            Err(SimError::OutOfRange(_))
        ));

        let too_many_ways =
            TenantAllocation::new(CoreSet::first_n(4), WayMask::first_n(21), Frequency(2.2));
        assert!(matches!(
            too_many_ways.validate(&m),
            Err(SimError::OutOfRange(_))
        ));

        let bad_freq =
            TenantAllocation::new(CoreSet::first_n(4), WayMask::first_n(5), Frequency(3.0));
        assert!(matches!(
            bad_freq.validate(&m),
            Err(SimError::OutOfRange(_))
        ));

        let mut bad_quota =
            TenantAllocation::new(CoreSet::first_n(4), WayMask::first_n(5), Frequency(2.2));
        bad_quota.cpu_quota = 0.0;
        assert!(matches!(
            bad_quota.validate(&m),
            Err(SimError::InvalidKnob(_))
        ));
        bad_quota.cpu_quota = 1.5;
        assert!(bad_quota.validate(&m).is_err());
    }

    #[test]
    fn noncontiguous_ways_rejected() {
        let m = MachineSpec::xeon_e5_2650();
        let alloc = TenantAllocation::new(CoreSet::first_n(2), WayMask(0b101), Frequency(2.2));
        assert!(matches!(alloc.validate(&m), Err(SimError::InvalidKnob(_))));
    }

    #[test]
    fn from_counts_clamps() {
        let m = MachineSpec::xeon_e5_2650();
        let a = TenantAllocation::from_counts(&m, 0, 99);
        assert_eq!(a.cores.count(), 1);
        assert_eq!(a.ways.count(), 20);
        assert!(a.validate(&m).is_ok());
    }

    #[test]
    fn disjointness() {
        let a = TenantAllocation::new(CoreSet::range(0, 4), WayMask::range(0, 8), Frequency(2.2));
        let b = TenantAllocation::new(CoreSet::range(4, 8), WayMask::range(8, 12), Frequency(2.2));
        assert!(a.is_disjoint_from(&b));
        let c = TenantAllocation::new(CoreSet::range(3, 2), WayMask::range(8, 4), Frequency(2.2));
        assert!(!a.is_disjoint_from(&c));
    }

    #[test]
    fn display_formats() {
        let a = TenantAllocation::new(CoreSet::first_n(4), WayMask::first_n(5), Frequency(2.2));
        assert_eq!(format!("{a}"), "4c/5w @ 2.20 GHz q=1.00");
        assert_eq!(format!("{}", TenantRole::Primary), "primary");
        assert!(format!("{}", CoreSet::first_n(2)).contains("0x3"));
        assert!(format!("{}", WayMask::first_n(2)).contains("0x3"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Ranges have the length they claim and only the claimed members.
        #[test]
        fn core_range_identities(start in 0u32..60, len in 0u32..4) {
            prop_assume!(start + len <= 64);
            let s = CoreSet::range(start, len);
            prop_assert_eq!(s.count(), len);
            for c in 0..64 {
                prop_assert_eq!(s.contains(c), c >= start && c < start + len);
            }
            if len > 0 {
                prop_assert_eq!(s.highest(), Some(start + len - 1));
            } else {
                prop_assert_eq!(s.highest(), None);
            }
        }

        /// Way ranges are always contiguous and disjoint ranges never
        /// intersect.
        #[test]
        fn way_range_identities(a in 0u32..16, la in 1u32..8, gap in 0u32..4, lb in 1u32..8) {
            prop_assume!(a + la + gap + lb <= 32);
            let r1 = WayMask::range(a, la);
            let r2 = WayMask::range(a + la + gap, lb);
            prop_assert!(r1.is_contiguous());
            prop_assert!(r2.is_contiguous());
            prop_assert!(!r1.intersects(r2));
            prop_assert!(!r2.intersects(r1));
            // Adjacent-with-zero-gap masks cover exactly la + lb ways.
            if gap == 0 {
                let union = WayMask::from_bits(r1.bits() | r2.bits());
                prop_assert_eq!(union.count(), la + lb);
                prop_assert!(union.is_contiguous());
            }
        }

        /// Bit round-trips are lossless.
        #[test]
        fn from_bits_round_trip(bits in any::<u64>()) {
            prop_assert_eq!(CoreSet::from_bits(bits).bits(), bits);
        }
    }
}
